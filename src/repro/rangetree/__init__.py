"""Range tree with temporal leaves — D_R for exact l-inf (Appendix B.1)."""

from .range_tree import Box, RangeTree, Side, StabArray, box_intersect, closed_box

__all__ = ["Box", "RangeTree", "Side", "StabArray", "box_intersect", "closed_box"]
