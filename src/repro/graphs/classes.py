"""Graph classes with natural proximity representations.

Section 1.2 notes the approach "extends naturally to other classes of
graphs including interval graphs, permutation graphs, and grid graphs".
This module provides point-set realisations for the classes with exact
unit-ball representations, plus explicit generators for validation:

* grid graphs: integer grid points under ``ℓ1``/``ℓ∞`` threshold 1;
* unit-interval graphs: interval midpoints on the line (two unit
  intervals overlap iff their centers are within 1);
* ring/path graphs: points on a circle/line with nearest-neighbour
  threshold.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ValidationError
from ..types import TemporalPointSet

__all__ = [
    "grid_graph_points",
    "unit_interval_graph_points",
    "ring_graph_points",
    "as_temporal",
]


def grid_graph_points(rows: int, cols: int) -> np.ndarray:
    """The ``rows × cols`` grid graph: integer points; under the ``ℓ1``
    metric with threshold 1 the proximity graph is exactly the grid."""
    if rows <= 0 or cols <= 0:
        raise ValidationError("rows and cols must be positive")
    ys, xs = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    return np.stack([ys.ravel(), xs.ravel()], axis=1).astype(float)


def unit_interval_graph_points(
    centers: Sequence[float],
) -> np.ndarray:
    """A unit-interval graph: vertex ``i`` is the unit interval centered
    at ``centers[i]``; two overlap iff ``|c_i − c_j| ≤ 1`` — a 1-d
    proximity graph."""
    arr = np.asarray(centers, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("centers must be a non-empty 1-d sequence")
    return arr[:, None]


def ring_graph_points(n: int, neighbor_hops: int = 1) -> np.ndarray:
    """``n`` points on a circle whose unit-threshold proximity graph is
    the ring with edges to ``neighbor_hops`` nearest neighbours."""
    if n < 3:
        raise ValidationError("a ring needs at least 3 points")
    # Chord length between k-hop neighbours is 2R sin(πk/n); choose R so
    # the neighbor_hops-chord is exactly 1 and the next chord exceeds 1.
    # A hair of negative slack keeps the intended chords at ≤ 1 under
    # floating-point rounding of cos/sin.
    radius = (1.0 - 1e-9) / (2.0 * np.sin(np.pi * neighbor_hops / n))
    theta = 2.0 * np.pi * np.arange(n) / n
    return np.stack([radius * np.cos(theta), radius * np.sin(theta)], axis=1)


def as_temporal(
    points: np.ndarray,
    starts: Optional[Sequence[float]] = None,
    ends: Optional[Sequence[float]] = None,
    metric: str = "l2",
    horizon: float = 10.0,
) -> TemporalPointSet:
    """Wrap bare class points as an (optionally trivially-timed) input."""
    n = len(points)
    if starts is None:
        starts = np.zeros(n)
    if ends is None:
        ends = np.full(n, horizon, dtype=float)
    return TemporalPointSet(points, starts, ends, metric=metric)
