"""E4 — Theorem 5.2: AggDurablePair-UNION, linear dependence on κ.

The bound is ``Õ(κ·ε^{-O(ρ)}·(n + OUT))``: doubling the witness budget
should roughly double the per-pair greedy cost (modulo early success
exits), while the reported set grows monotonically with κ.
"""

import pytest

from repro.baselines import brute_union_pairs

from helpers import union_index, workload

N = 600
TAU = 8.0


@pytest.mark.parametrize("kappa", [1, 2, 4, 8])
def test_union_kappa_sweep(benchmark, kappa):
    idx = union_index(N)
    result = benchmark.pedantic(
        idx.query, args=(TAU, kappa), rounds=3, iterations=1
    )
    benchmark.extra_info["kappa"] = kappa
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E4 UNION pairs: kappa sweep (n=600)"


@pytest.mark.parametrize("n", [300, 600, 1200])
def test_union_n_sweep(benchmark, n):
    idx = union_index(n)
    result = benchmark.pedantic(idx.query, args=(TAU, 3), rounds=3, iterations=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E4 UNION pairs: n sweep (kappa=3)"


def test_union_vs_brute(benchmark):
    tps = workload(300)
    result = benchmark.pedantic(
        brute_union_pairs, args=(tps, TAU, 3), rounds=2, iterations=1
    )
    benchmark.extra_info["algorithm"] = "brute-DP"
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E4 UNION pairs vs brute (n=300)"


def test_union_ours_at_brute_size(benchmark):
    idx = union_index(300)
    result = benchmark.pedantic(idx.query, args=(TAU, 3), rounds=3, iterations=1)
    benchmark.extra_info["algorithm"] = "ours"
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E4 UNION pairs vs brute (n=300)"
