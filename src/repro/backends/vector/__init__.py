"""The ``vector`` backend: structure-of-arrays numpy kernels.

Registered on the backend registry as ``backend="vector"`` (see
:func:`repro.backends.builtin.register_builtin_backends`).  Serves all
four shared-index families under ``ℓ_α`` metrics with record sets
identical to the ``grid`` backend, from flat-array structures instead of
per-point object graphs:

* :mod:`.soa` — the SoA snapshot + CSR grid-cell layout (cached per
  dataset fingerprint) and the blocked distance kernels;
* :mod:`.structure` — the array-backed durable-ball structure ``D``;
* :mod:`.indexes` — the four query-family indexes, every one
  maintainable across ingestion epoch bumps.
"""

from .indexes import (
    VectorPatternIndex,
    VectorSumPairIndex,
    VectorTriangleIndex,
    VectorUnionPairIndex,
)
from .soa import SoALayout, VectorGridDecomposition, layout_for
from .structure import VectorBallStructure

__all__ = [
    "SoALayout",
    "layout_for",
    "VectorGridDecomposition",
    "VectorBallStructure",
    "VectorTriangleIndex",
    "VectorSumPairIndex",
    "VectorUnionPairIndex",
    "VectorPatternIndex",
]
