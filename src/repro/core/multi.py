"""Multi-interval lifespans (footnote 1 of the paper).

The paper's temporal model extends to lifespans made of several disjoint
intervals "with the complexities … increased by a factor equal to the
maximum number of intervals per lifespan".  This module implements that
extension by *piece expansion*: each lifespan piece becomes a pseudo
point co-located with its owner, the single-interval machinery runs on
the expanded set, and piece-level results are folded back to owners.

Two durability semantics exist for interval sets and the library
supports both:

* **window** (this module's indexed path): the pattern members must be
  simultaneously alive for ``τ`` *contiguously* — i.e. the longest
  window of the three-way intersection is ≥ τ.  A contiguous window
  lies inside exactly one piece per member, so piece expansion is
  lossless: the guarantee is the usual sandwich with durabilities
  measured per window.
* **total** (the paper's ``|I|`` for interval sets — length of the
  union of the intersection): available through the brute-force
  reference :func:`repro.baselines.brute_multi.brute_multi_triangles`;
  the indexed anchor discipline does not extend to it directly because
  a triple's total durability is not witnessed by any single piece.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

from ..errors import ValidationError
from ..geometry.metrics import MetricSpec
from ..temporal.interval import Interval
from ..temporal.interval_set import IntervalSet
from ..types import TemporalPointSet
from .triangles import DurableTriangleIndex

__all__ = ["MultiTriangleRecord", "MultiIntervalTriangleFinder", "as_interval_sets"]

LifespanLike = Union[IntervalSet, Sequence[Tuple[float, float]]]


def as_interval_sets(lifespans: Iterable[LifespanLike]) -> List[IntervalSet]:
    """Normalise lifespan inputs to :class:`IntervalSet` objects."""
    out: List[IntervalSet] = []
    for ls in lifespans:
        out.append(ls if isinstance(ls, IntervalSet) else IntervalSet(ls))
    return out


@dataclass(frozen=True, slots=True)
class MultiTriangleRecord:
    """A window-durable triangle over multi-interval lifespans.

    ``window`` is the longest contiguous interval during which all three
    members are simultaneously alive (≥ τ by construction).
    """

    members: Tuple[int, int, int]
    window: Interval

    @property
    def durability(self) -> float:
        return self.window.length

    @property
    def key(self) -> Tuple[int, int, int]:
        return self.members


class MultiIntervalTriangleFinder:
    """Window-durable triangles for multi-interval lifespans.

    Parameters
    ----------
    points:
        ``(n, d)`` coordinates.
    lifespans:
        One :class:`IntervalSet` (or span list) per point.
    epsilon, backend, metric:
        As for :class:`~repro.core.triangles.DurableTriangleIndex`.

    The expansion has one pseudo-point per lifespan piece, so build and
    query costs grow by the maximum piece count — the factor footnote 1
    predicts.
    """

    def __init__(
        self,
        points: np.ndarray,
        lifespans: Iterable[LifespanLike],
        epsilon: float = 0.5,
        backend: str = "auto",
        metric: MetricSpec = "l2",
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[:, None]
        sets = as_interval_sets(lifespans)
        if len(sets) != len(pts):
            raise ValidationError(
                f"{len(sets)} lifespans for {len(pts)} points"
            )
        if any(s.is_empty for s in sets):
            raise ValidationError("every point needs a non-empty lifespan")
        self.lifespans = sets
        self.n = len(pts)
        owner: List[int] = []
        rows: List[int] = []
        starts: List[float] = []
        ends: List[float] = []
        for i, s in enumerate(sets):
            for lo, hi in s.spans:
                owner.append(i)
                rows.append(i)
                starts.append(lo)
                ends.append(hi)
        self.owner = np.asarray(owner, dtype=np.int64)
        self.max_pieces = max(len(s) for s in sets)
        self.expanded = TemporalPointSet(pts[rows], starts, ends, metric=metric)
        self.index = DurableTriangleIndex(self.expanded, epsilon=epsilon, backend=backend)

    # ------------------------------------------------------------------
    def query(self, tau: float) -> List[MultiTriangleRecord]:
        """All window-τ-durable triangles (plus some ε-triangles).

        Each owner triple is reported once, with the most durable window
        found among its piece combinations.
        """
        best: Dict[Tuple[int, int, int], Interval] = {}
        for rec in self.index.query(tau):
            o = (
                int(self.owner[rec.anchor]),
                int(self.owner[rec.q]),
                int(self.owner[rec.s]),
            )
            if o[0] == o[1] or o[0] == o[2] or o[1] == o[2]:
                continue  # pieces of the same point are not a triangle
            key = tuple(sorted(o))
            cur = best.get(key)
            if cur is None or rec.lifespan.length > cur.length:
                best[key] = rec.lifespan
        return [
            MultiTriangleRecord(members=key, window=window)
            for key, window in sorted(best.items())
        ]

    def window_durability(self, a: int, b: int, c: int) -> float:
        """Longest simultaneous-availability window of a triple."""
        inter = self.lifespans[a].intersect(self.lifespans[b]).intersect(
            self.lifespans[c]
        )
        return inter.max_window

    def total_durability(self, a: int, b: int, c: int) -> float:
        """The paper's total (union-length) durability of a triple."""
        inter = self.lifespans[a].intersect(self.lifespans[b]).intersect(
            self.lifespans[c]
        )
        return inter.measure
