"""Delay-guaranteed enumeration of durable triangles (Section 3, Remark 2).

After preprocessing, the enumerator yields triangles with bounded work
between consecutive yields: anchors that cannot contribute a triangle
are filtered out *during preprocessing* (each with one
``O(ε^{-O(ρ)} log n)`` existence test), so iteration never scans dead
anchors.  Within an active anchor, Algorithm 1 examines only ball pairs,
each either yielding output or costing one constant-size linkage test.

The enumerator instruments its own work counter (`'ops'` = distance
checks + run accesses) and records the maximum number of operations
between consecutive yields, so the delay guarantee is *measurable*
(benchmark E13) rather than merely asserted.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Optional

from ..structures.durable_ball import BallSubset, DurableBallStructure
from ..types import TriangleRecord
from .triangles import DurableTriangleIndex, _record

__all__ = ["DelayGuaranteedEnumerator", "anchor_has_triangle"]


def anchor_has_triangle(
    structure: DurableBallStructure, anchor: int, tau: float
) -> bool:
    """Existence test: does ``anchor`` anchor any τ-durable (ε-)triangle?

    Mirrors ``DetectTriangle`` (Algorithm 3) with ``τ₂ = ∞``: the anchor
    needs either one canonical ball holding two partners, or two linked
    balls each holding one.  Costs ``O(ε^{-O(ρ)} log n)`` — no partner
    enumeration.
    """
    if structure.tps.duration(anchor) < tau:
        return False
    subsets = structure.query(anchor, tau)
    nonempty = [s for s in subsets if s.count > 0]
    for s in nonempty:
        if s.count >= 2:
            return True
    for i in range(len(nonempty)):
        for j in range(i + 1, len(nonempty)):
            if structure.linked(nonempty[i].group, nonempty[j].group):
                return True
    return False


class DelayGuaranteedEnumerator:
    """Iterable over the τ-durable triangles with bounded inter-yield work.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.triangles.DurableTriangleIndex`.
    tau:
        Durability threshold.

    Attributes
    ----------
    max_delay_ops:
        After a full iteration, the maximum number of counted operations
        between two consecutive yields (and before the first / after the
        last).  The paper's bound is ``O(ε^{-O(ρ)} log n)`` per yield;
        experiment E13 tracks this number as ``n`` grows.
    """

    def __init__(self, index: DurableTriangleIndex, tau: float) -> None:
        index._check_tau(tau)
        self.index = index
        self.tau = float(tau)
        self.max_delay_ops: Optional[int] = None
        self._ops = 0
        # Preprocessing: keep only anchors that will certainly yield.
        structure = index.structure
        self.active: List[int] = [
            p
            for p in index._eligible_anchors(tau)
            if anchor_has_triangle(structure, p, tau)
        ]

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TriangleRecord]:
        structure = self.index.structure
        tps = self.index.tps
        self._ops = 0
        max_gap = 0
        since_last = 0

        def tick(cost: int = 1) -> None:
            nonlocal since_last
            since_last += cost

        for p in self.active:
            tick()
            subsets: List[BallSubset] = structure.query(p, self.tau)
            tick(len(subsets) + 1)
            materialised = [s.ids() for s in subsets]
            for ids in materialised:
                for a, b in combinations(ids, 2):
                    max_gap = max(max_gap, since_last)
                    since_last = 0
                    yield _record(tps, p, a, b)
            for i in range(len(subsets)):
                if not materialised[i]:
                    continue
                for j in range(i + 1, len(subsets)):
                    if not materialised[j]:
                        continue
                    tick()
                    if structure.linked(subsets[i].group, subsets[j].group):
                        for a in materialised[i]:
                            for b in materialised[j]:
                                max_gap = max(max_gap, since_last)
                                since_last = 0
                                yield _record(tps, p, a, b)
        max_gap = max(max_gap, since_last)
        self.max_delay_ops = max_gap
