"""Grid/quadtree decomposition for ``ℓ_α`` norms (Remark 1, Appendix D.1).

For ``ℓ_α`` metrics the cover tree of Appendix A can be replaced by a
quadtree: the canonical balls become the cells of a uniform grid whose
side is chosen so every cell fits in a metric ball of radius
``resolution`` around the cell center.  Only the single canonical level
is needed at query time, so the decomposition stores exactly that level
and answers :meth:`candidate_groups` with one vectorised distance pass
over the (at most ``n``) non-empty cell centers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import BackendError, ValidationError
from ..geometry.metrics import Metric, MetricSpec, get_metric
from ..structures.decomposition import (
    GEOMETRY_SLACK,
    CanonicalGroup,
    SpatialDecomposition,
)

__all__ = ["GridDecomposition"]


class GridDecomposition(SpatialDecomposition):
    """Canonical balls from a one-level quadtree grid.

    Parameters
    ----------
    points:
        ``(n, d)`` coordinate array.
    metric:
        Must be an ``ℓ_α`` or ``ℓ_∞`` metric (``supports_grid``).
    resolution:
        Maximum canonical-ball radius (cell center to any cell point).
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: MetricSpec,
        resolution: float,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or len(pts) == 0:
            raise ValidationError("points must be a non-empty (n, d) array")
        m = get_metric(metric)
        if not m.supports_grid:
            raise BackendError(
                f"grid decomposition requires an lp metric, got {m.name!r}"
            )
        if resolution <= 0:
            raise ValidationError(f"resolution must be positive, got {resolution!r}")
        self.points = pts
        self.metric: Metric = m
        self.resolution = float(resolution)
        dim = pts.shape[1]
        # Cell of side s has center-to-corner distance (s/2)·d^{1/α};
        # cell_side_for_diameter(2·resolution) yields exactly that bound.
        self.side = m.cell_side_for_diameter(2.0 * resolution, dim)

        cells: Dict[Tuple[int, ...], List[int]] = {}
        coords = np.floor(pts / self.side).astype(np.int64)
        for idx, key in enumerate(map(tuple, coords)):
            cells.setdefault(key, []).append(idx)

        self.groups: List[CanonicalGroup] = []
        self.group_of = np.empty(len(pts), dtype=np.int64)
        for key in sorted(cells):
            center = (np.asarray(key, dtype=float) + 0.5) * self.side
            g = CanonicalGroup(
                index=len(self.groups),
                rep=center,
                radius_bound=self.resolution,
                member_ids=sorted(cells[key]),
            )
            for pid in g.member_ids:
                self.group_of[pid] = g.index
            self.groups.append(g)
        self._centers = np.vstack([g.rep for g in self.groups])

    # ------------------------------------------------------------------
    def candidate_groups(self, point: np.ndarray, radius: float) -> List[int]:
        """Cells whose center is within ``radius + resolution`` of ``point``."""
        d = self.metric.dists(self._centers, np.asarray(point, dtype=float))
        keep = d <= radius + self.resolution + GEOMETRY_SLACK
        return [int(i) for i in np.nonzero(keep)[0]]
