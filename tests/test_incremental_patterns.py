"""Tests for incremental durable-clique reporting (Appendix D.2 claim)."""

import numpy as np
import pytest

from repro import IncrementalTriangleSession, TemporalPointSet, ValidationError
from repro.baselines.brute_patterns import brute_cliques
from repro.core.incremental_patterns import IncrementalCliqueSession

from conftest import random_tps


def clique_keys_between(tps, m, tau, tau_prec, threshold=1.0):
    """Exact m-cliques with durability in [tau, tau_prec)."""
    out = set()
    for key in brute_cliques(tps, m, tau, threshold):
        d = tps.pattern_lifespan(key).length
        if d < tau_prec:
            out.add(key)
    return out


class TestTriangleEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_m3_matches_triangle_session(self, seed):
        tps = random_tps(n=45, seed=seed)
        tri = IncrementalTriangleSession(tps, epsilon=0.5)
        cli = IncrementalCliqueSession(tps, m=3, epsilon=0.5)
        for tau in (6.0, 3.0, 1.0):
            tri_delta = {r.key for r in tri.query(tau)}
            cli_delta = {r.key for r in cli.query(tau)}
            assert tri_delta == cli_delta


class TestCliqueDeltas:
    @pytest.mark.parametrize("seed", range(4))
    def test_descending_sandwich(self, seed):
        eps = 0.5
        tps = random_tps(n=40, seed=seed + 10, box=2.5)
        session = IncrementalCliqueSession(tps, m=4, epsilon=eps)
        prev = float("inf")
        seen = set()
        for tau in (7.0, 4.0, 2.0):
            delta = {r.key for r in session.query(tau)}
            assert not (delta & seen), "clique re-reported"
            must = clique_keys_between(tps, 4, tau, prev)
            may = clique_keys_between(tps, 4, tau, prev, threshold=1 + eps + 1e-6)
            assert must <= delta <= may
            seen |= delta
            prev = tau

    @pytest.mark.parametrize("seed", range(3))
    def test_cumulative_matches_offline(self, seed):
        from repro import find_durable_cliques

        eps = 0.5
        tps = random_tps(n=35, seed=seed + 20, box=2.5)
        session = IncrementalCliqueSession(tps, m=4, epsilon=eps)
        for tau in (6.0, 3.0):
            session.query(tau)
            got = {r.key for r in session.current_results()}
            offline = {r.key for r in find_durable_cliques(tps, 4, tau, epsilon=eps)}
            assert got == offline

    def test_mixed_sequence(self):
        tps = random_tps(n=35, seed=31, box=2.5)
        session = IncrementalCliqueSession(tps, m=4, epsilon=0.5)
        for tau in (5.0, 2.0, 7.0, 3.0):
            session.query(tau)
            got = {r.key for r in session.current_results()}
            must = brute_cliques(tps, 4, tau)
            may = brute_cliques(tps, 4, tau, threshold=1.5 + 1e-6)
            assert must <= got <= may

    def test_upward_is_empty_and_trims(self):
        tps = random_tps(n=30, seed=41, box=2.5)
        session = IncrementalCliqueSession(tps, m=4, epsilon=0.5)
        session.query(2.0)
        assert session.query(5.0) == []
        assert all(r.durability >= 5.0 for r in session.current_results())


class TestValidation:
    def test_m_too_small(self):
        tps = random_tps(n=10, seed=0)
        with pytest.raises(ValidationError):
            IncrementalCliqueSession(tps, m=2)

    def test_bad_tau(self):
        tps = random_tps(n=10, seed=0)
        session = IncrementalCliqueSession(tps, m=3)
        with pytest.raises(ValidationError):
            session.query(-1.0)

    def test_missing_branch_for_cliques(self):
        """Anchor dies inside [τ, τ≺): 4-clique must still surface."""
        pts = np.zeros((4, 2))
        tps = TemporalPointSet(pts, [2, 0, 0, 0], [8, 100, 100, 100])
        session = IncrementalCliqueSession(tps, m=4, epsilon=0.5)
        assert session.query(10.0) == []
        delta = session.query(5.0)
        assert len(delta) == 1 and delta[0].durability == pytest.approx(6.0)
