"""End-to-end distributed tracing (ISSUE 10 tentpole).

Unit layers (traceparent codec, recorder/span trees, the ring-buffer
:class:`~repro.obs.tracestore.TraceStore` with its retention rules) are
pure and fast.  The integration classes drive real servers: span-tree
integrity under concurrent batches on one worker, and router↔worker
stitching over real sockets — including a worker SIGKILLed mid-stream,
where the router's root span must still close with an error status and
``GET /debug/traces/<id>`` must answer without hanging.
"""

import io
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.obs.trace import (
    TraceContext,
    TraceRecorder,
    format_traceparent,
    format_waterfall,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    span_tree,
)
from repro.obs.tracestore import TraceStore
from repro.router import start_router_thread
from repro.serve import start_server_thread
from repro.serve.client import connect, fetch_trace, fetch_traces, request

SOCIAL_SPEC = {"workload": "social", "n": 90, "seed": 5}


# ----------------------------------------------------------------------
# traceparent codec
# ----------------------------------------------------------------------
class TestTraceparent:
    def test_roundtrip(self):
        tid, sid = new_trace_id(), new_span_id()
        ctx = parse_traceparent(format_traceparent(tid, sid))
        assert ctx == TraceContext(trace_id=tid, span_id=sid, sampled=True)

    def test_unsampled_flag_roundtrips(self):
        header = format_traceparent(new_trace_id(), new_span_id(), sampled=False)
        assert header.endswith("-00")
        assert parse_traceparent(header).sampled is False

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "garbage",
            "00-short-0123456789abcdef-01",
            "00-" + "0" * 32 + "-0123456789abcdef-01",  # all-zero trace id
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
            "00-" + "g" * 32 + "-0123456789abcdef-01",  # non-hex
            "00-" + "a" * 32 + "-0123456789abcdef",  # missing flags
        ],
    )
    def test_malformed_headers_are_dropped_not_fatal(self, header):
        assert parse_traceparent(header) is None

    def test_ids_are_unique_and_well_formed(self):
        tids = {new_trace_id() for _ in range(64)}
        assert len(tids) == 64
        assert all(len(t) == 32 and int(t, 16) for t in tids)


# ----------------------------------------------------------------------
# recorder + span trees
# ----------------------------------------------------------------------
class TestRecorder:
    def test_span_tree_nests_by_parent_id(self):
        rec = TraceRecorder()
        root = rec.start_span("root")
        child = rec.start_span("child", parent_id=root.span_id)
        rec.start_span("grandchild", parent_id=child.span_id).finish()
        child.finish()
        root.finish()
        tree = span_tree([s.to_dict() for s in rec.spans()])
        assert [(d, s["name"]) for d, s in tree] == [
            (0, "root"), (1, "child"), (2, "grandchild"),
        ]

    def test_context_manager_marks_error(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            with rec.start_span("boom"):
                raise ValueError("exploded")
        (span,) = rec.spans()
        assert span.status == "error" and "exploded" in span.attrs["error"]

    def test_continues_remote_context(self):
        ctx = parse_traceparent(format_traceparent(new_trace_id(), new_span_id()))
        rec = TraceRecorder(trace_id=ctx.trace_id, parent_id=ctx.span_id)
        rec.start_span("local-root", parent_id=ctx.span_id).finish()
        (span,) = rec.spans()
        assert span.trace_id == ctx.trace_id
        assert span.parent_id == ctx.span_id

    def test_waterfall_renders_every_span(self):
        rec = TraceRecorder()
        root = rec.start_span("serve.request", attrs={"route": "/query"})
        rec.start_span("cache.get", parent_id=root.span_id).finish()
        root.finish()
        text = format_waterfall(
            {"trace_id": rec.trace_id, "spans": [s.to_dict() for s in rec.spans()]}
        )
        assert "serve.request" in text and "cache.get" in text
        assert "route=/query" in text


# ----------------------------------------------------------------------
# TraceStore retention
# ----------------------------------------------------------------------
def _offer(store, duration_ms=1.0, status="ok", route="/query", attrs=None):
    rec = TraceRecorder()
    rec.start_span("serve.request").finish(
        status="error" if status != "ok" else None
    )
    return store.offer(
        rec, route=route, status=status, duration_ms=duration_ms, attrs=attrs
    )


class TestTraceStore:
    def test_ring_eviction_bounds_memory(self):
        store = TraceStore(capacity=8, sample=1.0, slow_ms=1e9)
        for _ in range(50):
            assert _offer(store)
        assert len(store) == 8
        stats = store.stats()
        assert stats["stored"] == 50
        assert stats["evicted"] == 42
        # Newest-first listing, and everything listed is still gettable.
        summaries = store.recent(limit=100)
        assert len(summaries) == 8
        assert all(store.get(s["trace_id"]) is not None for s in summaries)

    def test_sample_zero_keeps_slow_and_error_only(self):
        store = TraceStore(capacity=64, sample=0.0, slow_ms=100.0)
        assert not _offer(store, duration_ms=1.0)  # fast + ok: sampled out
        assert _offer(store, duration_ms=250.0)  # slow: always kept
        assert _offer(store, duration_ms=1.0, status="error")  # always kept
        assert len(store) == 2
        kept = {r["status"] for r in store.recent()}
        assert kept == {"ok", "error"}
        assert all(r["slow"] or r["status"] == "error" for r in store.recent())
        assert store.stats()["sampled_out"] == 1

    def test_sample_one_keeps_everything(self):
        store = TraceStore(capacity=64, sample=1.0, slow_ms=1e9)
        for _ in range(10):
            assert _offer(store)
        assert len(store) == 10

    def test_slow_query_log_emits_ndjson_with_breakdown(self):
        log = io.StringIO()
        store = TraceStore(capacity=8, sample=1.0, slow_ms=50.0, slow_log=log)
        _offer(
            store, duration_ms=80.0,
            attrs={"dataset": "forum", "tenant": "acme", "template": "triangles"},
        )
        _offer(store, duration_ms=1.0, attrs={"dataset": "forum"})  # not slow
        lines = [json.loads(line) for line in log.getvalue().splitlines()]
        assert len(lines) == 1
        (entry,) = lines
        assert entry["slow_query"] is True
        assert entry["dataset"] == "forum"
        assert entry["tenant"] == "acme"
        assert entry["template"] == "triangles"
        assert entry["duration_ms"] >= 50.0
        assert "serve.request" in entry["breakdown_ms"]
        assert store.stats()["slow_queries"] == 1

    def test_filters_on_recent(self):
        store = TraceStore(capacity=16, sample=1.0, slow_ms=1e9)
        _offer(store, duration_ms=5.0, attrs={"dataset": "a"})
        _offer(store, duration_ms=50.0, attrs={"dataset": "b"})
        _offer(store, duration_ms=500.0, route="/stats")
        assert len(store.recent(min_duration_ms=40.0)) == 2
        assert len(store.recent(dataset="a")) == 1
        assert len(store.recent(route="/query")) == 2


# ----------------------------------------------------------------------
# one worker: envelope ids, error paths, concurrent integrity
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def server():
    handle = start_server_thread(slow_query_ms=1e9)
    conn = connect(handle.host, handle.port)
    status, _ = request(
        conn, "POST", "/datasets", {"name": "forum", "dataset": SOCIAL_SPEC}
    )
    assert status == 201
    conn.close()
    yield handle
    handle.stop()


def _query_lines(conn, dataset, queries, **extra):
    status, data = request(
        conn, "POST", "/query",
        {"dataset": dataset, "queries": queries, "include_records": False, **extra},
    )
    if status != 200:
        return status, json.loads(data)
    return status, [json.loads(line) for line in data.decode().strip().split("\n")]


class TestWorkerTracing:
    def test_envelope_lines_and_store_share_one_trace_id(self, server):
        conn = connect(server.host, server.port)
        try:
            status, lines = _query_lines(
                conn, "forum", [{"kind": "triangles", "taus": [1.0, 2.0]}]
            )
            assert status == 200
            ids = {line.get("trace_id") for line in lines}
            assert len(ids) == 1 and None not in ids
            (trace_id,) = ids
            status, doc = fetch_trace(conn, trace_id)
            assert status == 200
            names = {s["name"] for s in doc["spans"]}
            assert {
                "serve.request", "serve.plan", "queue.wait",
                "engine.query", "cache.get",
            } <= names
            assert {s["trace_id"] for s in doc["spans"]} == {trace_id}
            # Exactly one root, and it carries the query envelope attrs.
            roots = [s for s in doc["spans"] if not s.get("parent_id")]
            assert len(roots) == 1
            assert roots[0]["name"] == "serve.request"
            assert roots[0]["attrs"]["dataset"] == "forum"
        finally:
            conn.close()

    def test_client_traceparent_is_continued(self, server):
        trace_id, span_id = new_trace_id(), new_span_id()
        conn = connect(server.host, server.port)
        try:
            conn.request(
                "POST", "/query",
                body=json.dumps({
                    "dataset": "forum",
                    "queries": [{"kind": "pairs-sum", "tau": 2.0}],
                    "include_records": False,
                }),
                headers={
                    "Content-Type": "application/json",
                    "traceparent": format_traceparent(trace_id, span_id),
                },
            )
            resp = conn.getresponse()
            lines = [json.loads(line) for line in resp.read().decode().strip().split("\n")]
            assert resp.status == 200
            assert lines[-1]["trace_id"] == trace_id  # not a fresh id
            status, doc = fetch_trace(conn, trace_id)
            assert status == 200
            (root,) = [s for s in doc["spans"] if s["name"] == "serve.request"]
            assert root["parent_id"] == span_id  # continues the remote span
        finally:
            conn.close()

    def test_validation_400_body_carries_trace_id_and_error_trace(self, server):
        conn = connect(server.host, server.port)
        try:
            status, doc = _query_lines(
                conn, "forum", [{"kind": "nonsense", "tau": 2.0}]
            )
            assert status == 400
            assert "query #0" in doc["error"]
            trace_id = doc["trace_id"]
            assert trace_id
            status, trace = fetch_trace(conn, trace_id)
            assert status == 200
            (root,) = [s for s in trace["spans"] if s["name"] == "serve.request"]
            assert root["status"] == "error"
            assert trace["status"] == "error"
        finally:
            conn.close()

    def test_unknown_dataset_404_carries_trace_id(self, server):
        conn = connect(server.host, server.port)
        try:
            status, doc = _query_lines(conn, "nope", [{"kind": "triangles", "tau": 2}])
            assert status == 404
            assert doc["trace_id"]
        finally:
            conn.close()

    def test_execution_error_line_carries_trace_id_and_marks_root(self, server):
        # kappa on pairs-union is validated at plan time; an epsilon no
        # backend serves is not reachable, so poison at the runner level
        # instead: a pattern whose stage sweep explodes is simulated by
        # the poisoned-query serve test.  Here the per-query error line
        # contract is what matters: ok=false lines still carry the id.
        conn = connect(server.host, server.port)
        try:
            status, lines = _query_lines(
                conn, "forum",
                [
                    {"kind": "triangles", "tau": 2.0},
                    {"kind": "pairs-union", "tau": 2.0, "kappa": 10 ** 9},
                ],
            )
            # Either the batch validates to 400 (body has the id) or the
            # bad query fails in execution (its line has the id).
            if status == 400:
                assert lines["trace_id"]
            else:
                results = [line for line in lines if line.get("type") == "result"]
                assert all(line.get("trace_id") for line in results)
        finally:
            conn.close()

    def test_concurrent_batches_do_not_leak_spans_across_traces(self, server):
        """Per-request recorders must stay disjoint even though all
        requests share the shard's thread pool."""
        n_threads, per_batch = 6, 3
        outcomes = [None] * n_threads

        def run(i):
            conn = connect(server.host, server.port)
            try:
                status, lines = _query_lines(
                    conn, "forum",
                    [
                        {"kind": "triangles", "taus": [1.0 + 0.1 * j]}
                        for j in range(per_batch)
                    ],
                )
                outcomes[i] = (status, lines[-1]["trace_id"])
            finally:
                conn.close()

        threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert all(o is not None and o[0] == 200 for o in outcomes)
        trace_ids = [o[1] for o in outcomes]
        assert len(set(trace_ids)) == n_threads  # distinct traces

        conn = connect(server.host, server.port)
        try:
            for trace_id in trace_ids:
                status, doc = fetch_trace(conn, trace_id)
                assert status == 200
                spans = doc["spans"]
                assert {s["trace_id"] for s in spans} == {trace_id}
                # Exactly this batch's engine work, nobody else's.
                engine = [s for s in spans if s["name"] == "engine.query"]
                waits = [s for s in spans if s["name"] == "queue.wait"]
                assert len(engine) == per_batch
                assert len(waits) == per_batch
                assert sorted(s["attrs"]["query"] for s in engine) == list(
                    range(per_batch)
                )
                # Every span hangs off this trace's own tree.
                by_id = {s["span_id"] for s in spans}
                roots = [s for s in spans if not s.get("parent_id")]
                assert len(roots) == 1
                assert all(
                    s.get("parent_id") in by_id
                    for s in spans
                    if s.get("parent_id")
                )
        finally:
            conn.close()

    def test_listing_filters(self, server):
        conn = connect(server.host, server.port)
        try:
            status, lines = _query_lines(
                conn, "forum", [{"kind": "triangles", "tau": 2.0}]
            )
            assert status == 200
            status, doc = fetch_traces(conn, dataset="forum", limit=5)
            assert status == 200
            assert 0 < len(doc["traces"]) <= 5
            assert all(t["dataset"] == "forum" for t in doc["traces"])
            status, doc = fetch_traces(conn, min_duration_ms=1e9)
            assert status == 200 and doc["traces"] == []
        finally:
            conn.close()

    def test_health_and_metrics_are_untraced(self, server):
        conn = connect(server.host, server.port)
        try:
            request(conn, "GET", "/health")
            request(conn, "GET", "/metrics")
            status, doc = fetch_traces(conn, limit=500)
            assert status == 200
            routes = {t["route"] for t in doc["traces"]}
            assert "/health" not in routes and "/metrics" not in routes
        finally:
            conn.close()


class TestTracingDisabled:
    def test_disabled_tracing_omits_ids_and_404s_debug(self):
        handle = start_server_thread(tracing=False)
        conn = connect(handle.host, handle.port)
        try:
            status, _ = request(
                conn, "POST", "/datasets",
                {"name": "forum", "dataset": SOCIAL_SPEC},
            )
            assert status == 201
            status, lines = _query_lines(
                conn, "forum", [{"kind": "triangles", "tau": 2.0}]
            )
            assert status == 200
            assert all("trace_id" not in line for line in lines)
            status, doc = fetch_traces(conn)
            assert status == 503  # tracing disabled on this process
        finally:
            conn.close()
            handle.stop()

    def test_sampled_out_trace_is_a_404_not_an_error(self):
        handle = start_server_thread(trace_sample=0.0, slow_query_ms=1e9)
        conn = connect(handle.host, handle.port)
        try:
            status, _ = request(
                conn, "POST", "/datasets",
                {"name": "forum", "dataset": SOCIAL_SPEC},
            )
            assert status == 201
            status, lines = _query_lines(
                conn, "forum", [{"kind": "triangles", "tau": 2.0}]
            )
            assert status == 200
            trace_id = lines[-1]["trace_id"]
            assert trace_id  # the id is still echoed …
            status, doc = fetch_trace(conn, trace_id)
            assert status == 404  # … but the trace was sampled out
        finally:
            conn.close()
            handle.stop()


# ----------------------------------------------------------------------
# router ↔ worker stitching over real sockets
# ----------------------------------------------------------------------
class TestRouterStitching:
    def test_stitched_tree_spans_both_processes(self):
        handle = start_router_thread(workers=2, probe_interval=0.2)
        conn = None
        try:
            conn = connect(handle.host, handle.port)
            status, _ = request(
                conn, "POST", "/datasets",
                {"name": "social", "dataset": SOCIAL_SPEC},
            )
            assert status == 201
            status, lines = _query_lines(
                conn, "social",
                [{
                    "kind": "pattern-dsl",
                    "pattern": "seq(pairs(agg=sum), pairs(agg=sum), gap=[0, 5])",
                    "taus": [2.0],
                }],
            )
            assert status == 200 and lines[-1]["ok"] is not None
            trace_id = lines[-1]["trace_id"]
            assert all(line["trace_id"] == trace_id for line in lines)

            status, doc = fetch_trace(conn, trace_id)
            assert status == 200
            assert doc["stitched"] is True
            assert doc["workers"]  # at least the owning worker answered
            spans = doc["spans"]
            assert {s["trace_id"] for s in spans} == {trace_id}
            names = {s["name"] for s in spans}
            assert {
                "router.request", "router.proxy", "serve.request",
                "serve.plan", "engine.query", "cache.get", "dsl.eval",
            } <= names
            # The worker half is labelled with its slot; the router half
            # is not.
            worker_spans = [s for s in spans if s["name"] == "serve.request"]
            assert all(s["attrs"].get("worker") for s in worker_spans)
            # The tree is connected end to end: the worker's root hangs
            # off the router's proxy span, which hangs off the router
            # root — one request, one tree, two processes.
            by_id = {s["span_id"]: s for s in spans}
            (serve_root,) = worker_spans
            proxy = by_id[serve_root["parent_id"]]
            assert proxy["name"] == "router.proxy"
            router_root = by_id[proxy["parent_id"]]
            assert router_root["name"] == "router.request"
            assert router_root.get("parent_id") in (None, "")
            # Per-stage cache spans survived the hop with their outcomes.
            stage_gets = [
                s for s in spans
                if s["name"] == "cache.get" and s["attrs"].get("stage")
            ]
            assert stage_gets
            assert all(
                s["attrs"]["outcome"] in ("hit", "build", "wait")
                for s in stage_gets
            )
        finally:
            if conn is not None:
                conn.close()
            handle.stop()

    def test_sigkill_mid_stream_closes_root_span_with_error(self):
        handle = start_router_thread(workers=2, probe_interval=0.2)
        try:
            conn = connect(handle.host, handle.port)
            status, _ = request(
                conn, "POST", "/datasets",
                {"name": "social", "dataset": {"workload": "social", "n": 300, "seed": 7}},
            )
            assert status == 201
            status, data = request(conn, "GET", "/stats")
            doc = json.loads(data)
            owner = doc["router"]["placement"]["datasets"]["social"]
            victim_pid = doc["workers"][owner]["pid"]
            conn.close()

            # A long sweep with records: enough stream left to kill into.
            taus = [round(0.5 + 0.05 * i, 2) for i in range(50)]
            body = json.dumps({
                "dataset": "social",
                "queries": [{"kind": "triangles", "taus": taus}],
                "include_records": True,
            }).encode()
            sock = socket.create_connection((handle.host, handle.port), timeout=60)
            try:
                sock.sendall(
                    b"POST /query HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\n\r\n" % len(body) + body
                )
                buf = b""
                while b"batch-start" not in buf:
                    chunk = sock.recv(4096)
                    assert chunk, f"stream ended before batch-start: {buf!r}"
                    buf += chunk
                first_line = buf.split(b"\r\n\r\n", 1)[1]
                # trace id from the batch-start envelope, pre-kill.
                start = json.loads(
                    next(
                        ln for ln in first_line.split(b"\r\n") if b"batch-start" in ln
                    )
                )
                trace_id = start["trace_id"]
                os.kill(victim_pid, signal.SIGKILL)
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    buf += chunk
            finally:
                sock.close()
            assert b"batch-end" not in buf  # truncated, as designed

            # The router must answer the trace fetch promptly (no hang
            # on the dead worker) and its root span must be an error:
            # error traces are always retained regardless of sampling.
            conn = connect(handle.host, handle.port)
            try:
                t0 = time.monotonic()
                status, doc = fetch_trace(conn, trace_id)
                elapsed = time.monotonic() - t0
                assert elapsed < 15, f"trace fetch took {elapsed:.1f}s"
                assert status == 200
                spans = doc["spans"]
                (root,) = [s for s in spans if s["name"] == "router.request"]
                assert root["status"] == "error"
                (proxy,) = [s for s in spans if s["name"] == "router.proxy"]
                assert proxy["status"] == "error"
            finally:
                conn.close()
        finally:
            handle.stop()
