"""Versioned datasets end to end (ISSUE 7 tentpole + satellites).

Covers: epoch-bearing :class:`~repro.types.TemporalPointSet`
fingerprints and the ``with_events`` append path; epoch-aware
:meth:`~repro.engine.cache.IndexCache.advance` (untouched families keep
hitting, affected families rebuild exactly once, stale-epoch waiters
never see a pre-append index); shard-level ``append_events`` semantics
(per-line rejection, rebuild-on-threshold, single-writer epoch bumps);
the append-then-query ≡ fresh-registration identity, hypothesis-tested
across all four query families; the manifest event log and
restart-with-replay of appended state; the serve and router HTTP
endpoints; and the ``repro append`` CLI.
"""

from __future__ import annotations

import io
import json
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import TemporalPointSet
from repro.cli import main as cli_main
from repro.engine import QuerySpec, plan_batch
from repro.engine.cache import IndexCache, IndexKey
from repro.engine.executor import execute_plans
from repro.errors import ValidationError
from repro.router.manifest import ManifestEntry, PlacementManifest
from repro.serve.registry import (
    MAX_EVENT_ERRORS,
    REBUILD_FRACTION,
    DatasetShard,
)

from conftest import random_tps


def _event_line(tps: TemporalPointSet, i: int) -> str:
    return json.dumps(
        {
            "point": tps.points[i].tolist(),
            "start": float(tps.starts[i]),
            "end": float(tps.ends[i]),
        }
    )


def _ndjson(tps: TemporalPointSet, lo: int, hi: int) -> str:
    return "\n".join(_event_line(tps, i) for i in range(lo, hi))


def _prefix(tps: TemporalPointSet, k: int) -> TemporalPointSet:
    return TemporalPointSet(
        tps.points[:k], tps.starts[:k], tps.ends[:k], metric=tps.metric.name
    )


def _sorted_keys(records) -> list:
    return sorted(r.key for r in records)


# ----------------------------------------------------------------------
# TemporalPointSet: epoch + with_events
# ----------------------------------------------------------------------
class TestEpochedPointSet:
    def test_epoch_defaults_to_zero(self):
        assert random_tps(n=8).epoch == 0

    @pytest.mark.parametrize("bad", [-1, 1.5, "2", True, None])
    def test_epoch_validation(self, bad):
        tps = random_tps(n=8)
        with pytest.raises(ValidationError):
            TemporalPointSet(
                tps.points, tps.starts, tps.ends, epoch=bad
            )

    def test_with_events_merges_and_bumps_epoch(self):
        tps = random_tps(n=10)
        merged = tps.with_events(
            [[0.5, 0.5], [1.0, 1.0]], [0.0, 1.0], [5.0, 6.0]
        )
        assert merged.epoch == 1
        assert merged.n == 12
        # Appended points take ids n, n+1, … — the merged arrays are the
        # concatenation, so a fresh build over them is the union.
        np.testing.assert_array_equal(merged.points[:10], tps.points)
        np.testing.assert_array_equal(merged.points[10], [0.5, 0.5])
        assert float(merged.starts[11]) == 1.0
        assert float(merged.ends[11]) == 6.0
        # Chaining keeps counting.
        again = merged.with_events([[2.0, 2.0]], [0.0], [1.0])
        assert again.epoch == 2
        # The original is untouched (copy-on-append).
        assert tps.epoch == 0 and tps.n == 10

    def test_with_events_validation(self):
        tps = random_tps(n=6)
        with pytest.raises(ValidationError):
            tps.with_events(np.empty((0, 2)), [], [])
        with pytest.raises(ValidationError):  # dim mismatch
            tps.with_events([[1.0, 2.0, 3.0]], [0.0], [1.0])
        with pytest.raises(ValidationError):  # length mismatch
            tps.with_events([[1.0, 2.0]], [0.0, 1.0], [1.0])

    def test_epoch_zero_fingerprint_is_unversioned(self):
        # Epoch 0 must hash exactly as the pre-versioning format did:
        # an explicit epoch=0 construction and a default one agree.
        tps = random_tps(n=8)
        explicit = TemporalPointSet(
            tps.points, tps.starts, tps.ends, epoch=0
        )
        assert explicit.fingerprint() == tps.fingerprint()

    def test_epoch_distinguishes_identical_data(self):
        # Same points, different epoch → different identity: a cache
        # must never serve a pre-append index to a post-append query
        # even if the arrays happen to coincide.
        tps = random_tps(n=8)
        merged = tps.with_events([[0.1, 0.1]], [0.0], [1.0])
        rebuilt = TemporalPointSet(
            merged.points, merged.starts, merged.ends
        )
        assert merged.fingerprint() != rebuilt.fingerprint()
        assert "epoch=1" in repr(merged)
        assert "epoch" not in repr(tps)


# ----------------------------------------------------------------------
# IndexCache.advance — satellite 3
# ----------------------------------------------------------------------
def _key(family: str, fp: str) -> IndexKey:
    return IndexKey(family=family, fingerprint=fp, epsilon=0.5, backend="grid")


class TestCacheAdvance:
    def test_same_fingerprint_rejected(self):
        with pytest.raises(ValueError):
            IndexCache().advance("fp", "fp")

    def test_untouched_family_hits_affected_rebuilds_exactly_once(self):
        cache = IndexCache()
        cache.get_or_build(_key("triangles", "old"), lambda: "tri-old")
        cache.get_or_build(_key("pairs-sum", "old"), lambda: "sum-old")

        def maintainer(key, index):
            return "tri-new" if key.family == "triangles" else None

        moved = cache.advance("old", "new", maintainer)
        assert [k.family for k in moved["migrated"]] == ["triangles"]
        assert [k.family for k in moved["invalidated"]] == ["pairs-sum"]
        assert cache.stats.migrated == 1 and cache.stats.invalidated == 1

        # Untouched (maintained) family still hits — no rebuild.
        before = cache.stats.snapshot()
        outcome = cache.get_or_build(
            _key("triangles", "new"), lambda: pytest.fail("must not build")
        )
        assert outcome.hit and outcome.index == "tri-new"
        assert cache.stats.builds == before.builds

        # Affected family rebuilds exactly once under concurrency
        # (single-flight preserved through the invalidation).
        builds = []

        def builder():
            builds.append(1)
            time.sleep(0.05)
            return "sum-new"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_build(_key("pairs-sum", "new"), builder)
                )
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        assert all(r.index == "sum-new" for r in results)
        # Nothing remains under the old fingerprint.
        assert cache.peek(_key("triangles", "old")) is None
        assert cache.peek(_key("pairs-sum", "old")) is None

    def test_stale_epoch_waiters_never_receive_preappend_index(self):
        # A build in flight when the epoch bumps stays under its old
        # key: its waiters planned against the old epoch and get the
        # old-epoch index; post-append queries mint new-fingerprint
        # keys, so they can never join that flight or see its result.
        cache = IndexCache()
        release = threading.Event()
        old_key, new_key = _key("triangles", "old"), _key("triangles", "new")

        def slow_build():
            release.wait(5.0)
            return "old-index"

        waiter_result = []
        owner = threading.Thread(
            target=lambda: cache.get_or_build(old_key, slow_build)
        )
        owner.start()
        time.sleep(0.05)  # owner holds the in-flight slot
        waiter = threading.Thread(
            target=lambda: waiter_result.append(
                cache.get_or_build(old_key, lambda: "never")
            )
        )
        waiter.start()

        # Epoch bump while the old build is in flight: nothing ready
        # under the old fingerprint, so nothing migrates or dies.
        moved = cache.advance("old", "new", lambda k, i: i)
        assert moved == {"migrated": [], "invalidated": []}

        # A post-append query builds fresh under the new key.
        outcome = cache.get_or_build(new_key, lambda: "new-index")
        assert not outcome.hit and outcome.index == "new-index"

        release.set()
        owner.join(5.0)
        waiter.join(5.0)
        # The stale-epoch waiter got the old-epoch index (correct for
        # its plan), and the new key still holds the new index.
        assert waiter_result[0].index == "old-index"
        assert cache.peek(new_key) == "new-index"

    def test_racing_new_epoch_build_wins_over_migration(self):
        cache = IndexCache()
        cache.get_or_build(_key("triangles", "old"), lambda: "maintained-src")
        # A query on the new epoch already built before advance() got
        # to this entry: the single-flight winner stands, the migration
        # result is discarded.
        cache.get_or_build(_key("triangles", "new"), lambda: "racer")
        moved = cache.advance("old", "new", lambda k, i: "maintained")
        assert moved["migrated"] == []
        assert len(moved["invalidated"]) == 1
        assert cache.peek(_key("triangles", "new")) == "racer"


# ----------------------------------------------------------------------
# DatasetShard.append_events
# ----------------------------------------------------------------------
class TestShardAppend:
    def test_append_bumps_epoch_and_reports(self):
        shard = DatasetShard("d", random_tps(n=20))
        try:
            report = shard.append_events(
                '{"point": [0.5, 0.5], "start": 0.0, "end": 4.0}\n'
                '{"point": [1.5, 0.5], "start": 1.0, "end": 5.0}\n'
            )
            assert report["epoch"] == 1
            assert report["n"] == 22
            assert report["accepted"] == 2 and report["rejected"] == 0
            assert report["fingerprint"] == shard.tps.fingerprint()
            assert shard.describe()["epoch"] == 1
            events = shard.stats()["events"]
            assert events["accepted_total"] == 2
            assert events["batches_total"] == 1
        finally:
            shard.close()

    def test_malformed_lines_rejected_individually(self):
        shard = DatasetShard("d", random_tps(n=20))
        try:
            report = shard.append_events(
                "\n".join(
                    [
                        '{"point": [0.5, 0.5], "start": 0.0, "end": 4.0}',
                        "not json",
                        '{"point": [0.5], "start": 0.0, "end": 4.0}',
                        '{"point": [0.5, 0.5], "start": 5.0, "end": 4.0}',
                        '{"point": [0.5, 0.5], "start": 0.0}',
                        '{"point": [0.5, "x"], "start": 0.0, "end": 1.0}',
                        '{"point": [0.5, 0.5], "start": 0.0, "end": 1e999}',
                        "[1, 2, 3]",
                    ]
                )
            )
            assert report["accepted"] == 1
            assert report["rejected"] == 7
            assert len(report["errors"]) == 7
            assert any("line 2" in e for e in report["errors"])
            assert shard.tps.epoch == 1 and shard.tps.n == 21
        finally:
            shard.close()

    def test_all_rejected_batch_does_not_bump_epoch(self):
        shard = DatasetShard("d", random_tps(n=20))
        try:
            fp = shard.tps.fingerprint()
            report = shard.append_events("garbage\nmore garbage\n")
            assert report["accepted"] == 0 and report["rejected"] == 2
            assert report["epoch"] == 0
            assert shard.tps.fingerprint() == fp
        finally:
            shard.close()

    def test_error_report_is_capped(self):
        shard = DatasetShard("d", random_tps(n=20))
        try:
            report = shard.append_events("bad\n" * (MAX_EVENT_ERRORS + 5))
            assert report["rejected"] == MAX_EVENT_ERRORS + 5
            assert len(report["errors"]) == MAX_EVENT_ERRORS
        finally:
            shard.close()

    def test_parsed_sequence_and_bytes_bodies(self):
        shard = DatasetShard("d", random_tps(n=20))
        try:
            shard.append_events(
                [{"point": [0.5, 0.5], "start": 0.0, "end": 2.0}]
            )
            report = shard.append_events(
                b'{"point": [1.0, 1.0], "start": 0.0, "end": 2.0}'
            )
            assert report["epoch"] == 2 and report["n"] == 22
        finally:
            shard.close()

    def _warm(self, shard, specs):
        plans = plan_batch(specs, shard.tps)
        return execute_plans(plans, shard.cache, parallel=False)

    def test_small_append_maintains_triangles_invalidates_rest(self):
        # The acceptance assertion: after an append, the maintainable
        # families (triangles and SUM pairs over the grid) still hit the
        # cache while affected families rebuild — exactly once — on
        # their next use.
        shard = DatasetShard("d", random_tps(n=40))
        specs = [
            QuerySpec(kind="triangles", taus=2.0, backend="grid"),
            QuerySpec(kind="pairs-sum", taus=2.0, backend="grid"),
            QuerySpec(kind="pairs-union", taus=2.0, kappa=4, backend="grid"),
        ]
        try:
            self._warm(shard, specs)
            assert shard.cache.stats.builds == 3
            report = shard.append_events(
                '{"point": [0.5, 0.5], "start": 0.0, "end": 4.0}'
            )
            assert report["maintained_families"] == ["pairs-sum", "triangles"]
            assert report["invalidated_families"] == ["pairs-union"]
            before = shard.cache.stats.snapshot()
            results = self._warm(shard, specs)
            after = shard.cache.stats.since(before)
            # Triangles and SUM pairs hit their migrated entries;
            # UNION pairs paid one build.
            assert results[0].cache_hit and results[1].cache_hit
            assert not results[2].cache_hit
            assert after.hits == 2 and after.builds == 1
        finally:
            shard.close()

    def test_small_append_maintains_all_four_vector_families(self):
        # The vector backend implements maintained() for every family —
        # a small append migrates all four entries instead of dropping
        # any, and the next use of each is a cache hit.
        shard = DatasetShard("d", random_tps(n=40))
        specs = [
            QuerySpec(kind="triangles", taus=2.0, backend="vector"),
            QuerySpec(kind="pairs-sum", taus=2.0, backend="vector"),
            QuerySpec(kind="pairs-union", taus=2.0, kappa=4, backend="vector"),
            QuerySpec(kind="cliques", taus=2.0, m=3, backend="vector"),
        ]
        try:
            self._warm(shard, specs)
            assert shard.cache.stats.builds == 4
            report = shard.append_events(
                '{"point": [0.5, 0.5], "start": 0.0, "end": 4.0}'
            )
            assert report["maintained_families"] == [
                "pairs-sum", "pairs-union", "patterns", "triangles",
            ]
            assert report["invalidated_families"] == []
            before = shard.cache.stats.snapshot()
            results = self._warm(shard, specs)
            after = shard.cache.stats.since(before)
            assert all(r.cache_hit for r in results)
            assert after.hits == 4 and after.builds == 0
        finally:
            shard.close()

    def test_large_batch_skips_maintenance_rebuild_on_threshold(self):
        shard = DatasetShard("d", random_tps(n=10))
        spec = QuerySpec(kind="triangles", taus=2.0, backend="grid")
        try:
            self._warm(shard, [spec])
            batch = "\n".join(
                json.dumps(
                    {"point": [0.1 * i, 0.1], "start": 0.0, "end": 3.0}
                )
                for i in range(int(REBUILD_FRACTION * 10) + 1)
            )
            report = shard.append_events(batch)
            assert report["maintained_families"] == []
            assert report["invalidated_families"] == ["triangles"]
            result = self._warm(shard, [spec])[0]
            assert not result.cache_hit  # rebuilt over the merged set
        finally:
            shard.close()

    def test_concurrent_appends_are_serialised(self):
        shard = DatasetShard("d", random_tps(n=30))
        try:
            reports = []

            def append(i):
                reports.append(
                    shard.append_events(
                        json.dumps(
                            {
                                "point": [0.1 * i, 0.2],
                                "start": 0.0,
                                "end": 2.0,
                            }
                        )
                    )
                )

            threads = [
                threading.Thread(target=append, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # Single-writer: every append got its own epoch, and each
            # report's identity is self-consistent (epoch matches the
            # fingerprint/n captured under the same lock).
            assert sorted(r["epoch"] for r in reports) == [1, 2, 3, 4, 5, 6]
            assert sorted(r["n"] for r in reports) == list(range(31, 37))
            assert shard.tps.epoch == 6 and shard.tps.n == 36
        finally:
            shard.close()


# ----------------------------------------------------------------------
# Acceptance: append-then-query ≡ fresh registration of the merged set
# ----------------------------------------------------------------------
ALL_FAMILY_SPECS = [
    QuerySpec(kind="triangles", taus=(1.0, 2.0, 3.0), backend="grid"),
    QuerySpec(kind="triangles", taus=(2.0,), backend="cover-tree"),
    QuerySpec(kind="pairs-sum", taus=(2.0, 4.0), backend="grid"),
    QuerySpec(kind="pairs-union", taus=(2.0,), kappa=64, backend="grid"),
    QuerySpec(kind="cliques", taus=(2.0,), m=3, backend="grid"),
    # The SoA vector backend rides the same IndexCache.advance path —
    # every family must survive chained appends with identical answers.
    QuerySpec(kind="triangles", taus=(1.0, 2.0, 3.0), backend="vector"),
    QuerySpec(kind="pairs-sum", taus=(2.0, 4.0), backend="vector"),
    QuerySpec(kind="pairs-union", taus=(2.0,), kappa=64, backend="vector"),
    QuerySpec(kind="cliques", taus=(2.0,), m=3, backend="vector"),
]


def _record_sets(shard) -> list:
    plans = plan_batch(ALL_FAMILY_SPECS, shard.tps)
    results = execute_plans(plans, shard.cache, parallel=False)
    out = []
    for result in results:
        for tau, records in result.records_by_tau.items():
            out.append((result.spec.kind, tau, _sorted_keys(records)))
    return out


def _pair_scores(shard) -> dict:
    plans = plan_batch(
        [QuerySpec(kind="pairs-sum", taus=(2.0,), backend="grid")], shard.tps
    )
    result = execute_plans(plans, shard.cache, parallel=False)[0]
    return {r.key: r.score for r in result.records_by_tau[2.0]}


class TestAppendQueryIdentity:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(16, 40),
        split_fraction=st.floats(0.3, 0.9),
        batches=st.integers(1, 3),
    )
    def test_all_four_families_identical_to_fresh_registration(
        self, seed, n, split_fraction, batches
    ):
        full = random_tps(n=n, seed=seed)
        k = max(4, int(n * split_fraction))
        appended = DatasetShard("appended", _prefix(full, k))
        fresh = DatasetShard("fresh", full)
        try:
            # Warm every family on the seed so appends exercise the
            # maintenance/invalidation path, not just cold rebuilds.
            _record_sets(appended)
            edges = np.linspace(k, n, batches + 1).astype(int)
            for lo, hi in zip(edges[:-1], edges[1:]):
                if lo == hi:
                    continue
                report = appended.append_events(_ndjson(full, lo, hi))
                assert report["rejected"] == 0, report["errors"]
            assert appended.tps.n == n
            np.testing.assert_array_equal(appended.tps.points, full.points)
            np.testing.assert_array_equal(appended.tps.starts, full.starts)
            np.testing.assert_array_equal(appended.tps.ends, full.ends)

            assert _record_sets(appended) == _record_sets(fresh)
            # SUM scores too, not just membership.
            assert _pair_scores(appended) == pytest.approx(
                _pair_scores(fresh)
            )
        finally:
            appended.close()
            fresh.close()

    def test_maintained_index_chain_matches_fresh(self):
        # Deterministic anchor: three successive appends, each epoch's
        # triangle answers checked against a cold build — the grid
        # extension path must stay identical arbitrarily deep.
        from repro.core.triangles import DurableTriangleIndex

        full = random_tps(n=48, seed=3)
        idx = DurableTriangleIndex(_prefix(full, 24), 0.5, backend="grid")
        current = idx.tps
        for hi in (32, 40, 48):
            current = current.with_events(
                full.points[current.n: hi],
                full.starts[current.n: hi],
                full.ends[current.n: hi],
            )
            idx = idx.maintained(current)
            assert idx is not None
            cold = DurableTriangleIndex(current, 0.5, backend="grid")
            for tau in (1.0, 2.0, 4.0):
                assert _sorted_keys(idx.query(tau)) == _sorted_keys(
                    cold.query(tau)
                )
                assert idx.count(tau) == cold.count(tau)

    def test_cover_tree_cannot_extend_and_says_so(self):
        from repro.core.triangles import DurableTriangleIndex

        full = random_tps(n=20, seed=5)
        idx = DurableTriangleIndex(_prefix(full, 10), 0.5, backend="cover-tree")
        merged = idx.tps.with_events(
            full.points[10:], full.starts[10:], full.ends[10:]
        )
        assert idx.maintained(merged) is None

    @pytest.mark.parametrize("sum_backend", ["profile", "tree"])
    def test_sum_pair_maintained_chain_matches_fresh(self, sum_backend):
        # Same contract for the SUM pair family: successive appends
        # through `maintained` must answer identically (membership AND
        # witness scores) to a cold build at every epoch, for both SUM
        # structures.
        from repro.core.aggregate import SumPairIndex

        full = random_tps(n=48, seed=7)
        idx = SumPairIndex(
            _prefix(full, 24), 0.5, backend="grid", sum_backend=sum_backend
        )
        current = idx.tps
        for hi in (32, 40, 48):
            current = current.with_events(
                full.points[current.n: hi],
                full.starts[current.n: hi],
                full.ends[current.n: hi],
            )
            idx = idx.maintained(current)
            assert idx is not None
            cold = SumPairIndex(
                current, 0.5, backend="grid", sum_backend=sum_backend
            )
            for tau in (0.5, 1.0, 2.0):
                hot = sorted((r.key, r.score) for r in idx.query(tau))
                ref = sorted((r.key, r.score) for r in cold.query(tau))
                assert [k for k, _ in hot] == [k for k, _ in ref]
                assert [s for _, s in hot] == pytest.approx(
                    [s for _, s in ref]
                )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(24, 48))
    def test_vector_maintained_chain_matches_fresh(self, seed, n):
        # The vector backend's maintained() must stay identical to a
        # cold SoA build arbitrarily deep into an append chain, for all
        # four families (record sets AND SUM scores).
        from repro.backends.vector import (
            VectorPatternIndex,
            VectorSumPairIndex,
            VectorTriangleIndex,
            VectorUnionPairIndex,
        )

        full = random_tps(n=n, seed=seed)
        k = n // 2
        build = {
            "triangles": lambda tps: VectorTriangleIndex(tps, 0.5),
            "pairs-sum": lambda tps: VectorSumPairIndex(tps, 0.5),
            "pairs-union": lambda tps: VectorUnionPairIndex(tps, 0.5),
            "patterns": lambda tps: VectorPatternIndex(tps, 0.5),
        }
        answer = {
            "triangles": lambda ix: _sorted_keys(ix.query(2.0)),
            "pairs-sum": lambda ix: sorted(
                (r.key, r.score) for r in ix.query(2.0)
            ),
            "pairs-union": lambda ix: _sorted_keys(ix.query(2.0, 64)),
            "patterns": lambda ix: _sorted_keys(ix.iter_cliques(3, 2.0)),
        }
        hot = {fam: make(_prefix(full, k)) for fam, make in build.items()}
        current = hot["triangles"].tps
        for hi in sorted({(k + n) // 2, n}):
            if hi <= current.n:
                continue
            current = current.with_events(
                full.points[current.n: hi],
                full.starts[current.n: hi],
                full.ends[current.n: hi],
            )
            for fam, make in build.items():
                hot[fam] = hot[fam].maintained(current)
                assert hot[fam] is not None, fam
                assert answer[fam](hot[fam]) == answer[fam](
                    make(current)
                ), fam

    def test_sum_pair_cover_tree_cannot_extend(self):
        from repro.core.aggregate import SumPairIndex

        full = random_tps(n=20, seed=9)
        idx = SumPairIndex(_prefix(full, 10), 0.5, backend="cover-tree")
        merged = idx.tps.with_events(
            full.points[10:], full.starts[10:], full.ends[10:]
        )
        assert idx.maintained(merged) is None


# ----------------------------------------------------------------------
# Manifest event log
# ----------------------------------------------------------------------
class TestManifestEvents:
    PAYLOAD = {"name": "d", "dataset": {"workload": "uniform", "n": 16}}

    def test_record_events_appends_in_order(self):
        manifest = PlacementManifest()
        manifest.record("d", "worker-0", self.PAYLOAD)
        assert manifest.record_events("d", "batch-1\n") is not None
        entry = manifest.record_events("d", "batch-2\n")
        assert entry.events == ("batch-1\n", "batch-2\n")

    def test_record_events_unknown_dataset_returns_none(self):
        assert PlacementManifest().record_events("ghost", "batch") is None

    def test_re_registration_resets_the_log(self):
        manifest = PlacementManifest()
        manifest.record("d", "worker-0", self.PAYLOAD)
        manifest.record_events("d", "batch-1\n")
        manifest.record("d", "worker-0", self.PAYLOAD)
        assert manifest.get("d").events == ()

    def test_record_can_preserve_events_for_moves(self):
        manifest = PlacementManifest()
        manifest.record("d", "worker-0", self.PAYLOAD)
        manifest.record_events("d", "batch-1\n")
        entry = manifest.get("d")
        manifest.record("d", "worker-1", self.PAYLOAD, events=entry.events)
        moved = manifest.get("d")
        assert moved.worker == "worker-1"
        assert moved.events == ("batch-1\n",)

    def test_events_persist_and_reload(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = PlacementManifest(path)
        manifest.record("d", "worker-0", self.PAYLOAD)
        manifest.record_events("d", '{"point": [1, 2]}\n')
        reloaded = PlacementManifest(path)
        assert reloaded.get("d").events == ('{"point": [1, 2]}\n',)
        # Entries without an events key (pre-versioning manifests)
        # load as empty logs.
        doc = json.loads(open(path).read())
        del doc["datasets"][0]["events"]
        open(path, "w").write(json.dumps(doc))
        legacy = PlacementManifest(path)
        assert legacy.get("d").events == ()

    def test_malformed_events_rejected_at_load(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        open(path, "w").write(
            json.dumps(
                {
                    "datasets": [
                        {
                            "name": "d",
                            "worker": "w",
                            "payload": {},
                            "events": [1, 2],
                        }
                    ]
                }
            )
        )
        with pytest.raises(ValidationError):
            PlacementManifest(path)


# ----------------------------------------------------------------------
# Serve HTTP endpoint
# ----------------------------------------------------------------------
from test_serve import request, request_json, start_server_thread  # noqa: E402


@pytest.fixture(scope="module")
def ingest_server():
    handle = start_server_thread(queue_limit=8)
    status, doc = request_json(
        handle, "POST", "/datasets",
        {"name": "live", "dataset": {"workload": "social", "n": 60, "seed": 5}},
    )
    assert status == 201, doc
    yield handle
    handle.stop()


def raw_request(handle, method, path, body=b""):
    import http.client

    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
    try:
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/x-ndjson"},
        )
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


class TestServeEventsEndpoint:
    def test_append_bumps_epoch_and_describes(self, ingest_server):
        status, body = raw_request(
            ingest_server, "POST", "/datasets/live/events",
            b'{"point": [0.5, 0.5], "start": 0.0, "end": 9.0}\nnot json\n',
        )
        assert status == 200
        report = json.loads(body)["appended"]
        assert report["epoch"] >= 1
        assert report["accepted"] == 1 and report["rejected"] == 1
        status, doc = request_json(ingest_server, "GET", "/datasets")
        live = next(d for d in doc["datasets"] if d["name"] == "live")
        assert live["epoch"] == report["epoch"]

    def test_epoch_gauge_exported(self, ingest_server):
        status, _headers, data = request(ingest_server, "GET", "/metrics")
        assert status == 200
        lines = [
            l for l in data.decode().splitlines()
            if l.startswith("serve_dataset_epoch{")
        ]
        assert any('dataset="live"' in l for l in lines)

    def test_wrong_method_is_405(self, ingest_server):
        assert raw_request(
            ingest_server, "GET", "/datasets/live/events"
        )[0] == 405
        assert raw_request(
            ingest_server, "DELETE", "/datasets/live/events"
        )[0] == 405

    def test_unknown_dataset_is_404(self, ingest_server):
        status, body = raw_request(
            ingest_server, "POST", "/datasets/ghost/events",
            b'{"point": [0, 0], "start": 0, "end": 1}',
        )
        assert status == 404

    def test_empty_body_is_400(self, ingest_server):
        assert raw_request(
            ingest_server, "POST", "/datasets/live/events", b""
        )[0] == 400

    def test_delete_still_works_alongside_events_route(self, ingest_server):
        status, doc = request_json(
            ingest_server, "POST", "/datasets",
            {"name": "tmp", "dataset": {"workload": "uniform", "n": 16}},
        )
        assert status == 201
        status, _doc = request_json(ingest_server, "DELETE", "/datasets/tmp")
        assert status == 200


# ----------------------------------------------------------------------
# Router: forwarded appends + manifest replay after SIGKILL
# ----------------------------------------------------------------------
import os  # noqa: E402
import signal  # noqa: E402

from repro.datasets import workload_from_spec  # noqa: E402
from repro.router import start_router_thread  # noqa: E402

from test_router import (  # noqa: E402
    request as router_request,
    request_json as router_request_json,
    wait_for_recovery,
)

INGEST_SPEC = {"workload": "social", "n": 90, "seed": 5}
EVENTS = [
    {"point": [0.21, 0.34], "start": 0.0, "end": 40.0},
    {"point": [0.23, 0.36], "start": 1.0, "end": 41.0},
    {"point": [0.25, 0.32], "start": 0.5, "end": 39.5},
]
EVENT_BODY = "\n".join(json.dumps(e) for e in EVENTS).encode()


def _router_triangle_keys(handle, dataset, tau=2.0):
    status, data = router_request(
        handle, "POST", "/query",
        {
            "dataset": dataset,
            "queries": [{"kind": "triangles", "tau": tau, "backend": "grid"}],
            "include_records": True,
        },
    )
    assert status == 200, data
    keys = set()
    for line in data.decode().strip().split("\n"):
        doc = json.loads(line)
        if doc["type"] == "records":
            keys.update(tuple(sorted(r["ids"])) for r in doc["records"])
        elif doc["type"] == "result":
            assert doc["ok"], doc
    return keys


def _raw_router(handle, method, path, body=b""):
    import http.client

    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=60)
    try:
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/x-ndjson"},
        )
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


class TestRouterIngestion:
    def test_append_forwarded_recorded_and_survives_sigkill(self, tmp_path):
        """The acceptance path: an appended batch is forwarded to the
        owning worker, logged in the manifest, and survives a SIGKILL
        of that worker — replay restores the merged point set, so the
        post-recovery answers are identical to the post-append ones."""
        manifest_path = str(tmp_path / "manifest.json")
        handle = start_router_thread(
            workers=2, probe_interval=0.2, manifest_path=manifest_path
        )
        try:
            status, doc = router_request_json(
                handle, "POST", "/datasets",
                {"name": "social", "dataset": INGEST_SPEC},
            )
            assert status == 201, doc

            status, body = _raw_router(
                handle, "POST", "/datasets/social/events", EVENT_BODY
            )
            assert status == 200, body
            doc = json.loads(body)
            report = doc["appended"]
            assert report["epoch"] == 1
            assert report["accepted"] == 3 and report["rejected"] == 0
            assert doc["worker"].startswith("worker-")

            # The re-query reflects the append, and matches a local
            # fresh build over the merged point set exactly.
            merged = workload_from_spec(INGEST_SPEC).with_events(
                [e["point"] for e in EVENTS],
                [e["start"] for e in EVENTS],
                [e["end"] for e in EVENTS],
            )
            expected = DatasetShard("expected", merged)
            try:
                plans = plan_batch(
                    [QuerySpec(kind="triangles", taus=2.0, backend="grid")],
                    merged,
                )
                result = execute_plans(plans, expected.cache, parallel=False)[0]
                want = {tuple(sorted(r.key)) for r in result.records}
            finally:
                expected.close()
            assert _router_triangle_keys(handle, "social") == want

            # The manifest durably logs the batch verbatim.
            saved = json.loads(open(manifest_path).read())
            entry = next(
                d for d in saved["datasets"] if d["name"] == "social"
            )
            assert entry["events"] == [EVENT_BODY.decode()]

            # SIGKILL the owning worker; the supervisor re-registers the
            # seed and replays the event log.
            status, doc = router_request_json(handle, "GET", "/stats")
            owner = doc["router"]["placement"]["datasets"]["social"]
            os.kill(doc["workers"][owner]["pid"], signal.SIGKILL)
            wait_for_recovery(handle, "social")

            assert _router_triangle_keys(handle, "social") == want
            status, doc = router_request_json(handle, "GET", "/datasets")
            social = next(
                d for d in doc["datasets"] if d["name"] == "social"
            )
            assert social["event_batches"] == 1

            status, doc = router_request_json(handle, "GET", "/stats")
            assert doc["router"]["proxy"]["appends"] == 1
            assert doc["router"]["proxy"]["replayed_event_batches"] >= 1
            # The recovered worker's shard carries the replayed epoch.
            owner = doc["router"]["placement"]["datasets"]["social"]
            shard = doc["workers"][owner]["stats"]["shards"]["social"]
            assert shard["dataset"]["epoch"] == 1
            assert shard["dataset"]["n"] == merged.n

            status, data = router_request(handle, "GET", "/metrics")
            text = data.decode()
            assert "router_forwarded_appends_total 1" in text
            assert "router_replayed_event_batches_total" in text
            assert 'serve_dataset_epoch{dataset="social"' in text
        finally:
            handle.stop()

    def test_append_error_paths_and_rejected_batches_not_logged(
        self, tmp_path
    ):
        manifest_path = str(tmp_path / "manifest.json")
        handle = start_router_thread(
            workers=1, probe_interval=0.3, manifest_path=manifest_path
        )
        try:
            status, _body = _raw_router(
                handle, "POST", "/datasets/ghost/events", b'{"point": []}'
            )
            assert status == 404
            status, _body = _raw_router(
                handle, "GET", "/datasets/ghost/events"
            )
            assert status == 405
            status, doc = router_request_json(
                handle, "POST", "/datasets",
                {"name": "d", "dataset": {"workload": "uniform", "n": 20}},
            )
            assert status == 201, doc
            status, _body = _raw_router(
                handle, "POST", "/datasets/d/events", b""
            )
            assert status == 400
            # A batch with zero accepted events must not be replayed
            # after a failure — it is not recorded.
            status, body = _raw_router(
                handle, "POST", "/datasets/d/events", b"junk\nmore junk"
            )
            assert status == 200
            assert json.loads(body)["appended"]["accepted"] == 0
            saved = json.loads(open(manifest_path).read())
            entry = next(d for d in saved["datasets"] if d["name"] == "d")
            assert entry.get("events", []) == []
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# CLI: repro append
# ----------------------------------------------------------------------
class TestAppendCli:
    def test_append_from_file(self, ingest_server, tmp_path):
        path = tmp_path / "events.ndjson"
        path.write_text(
            '{"point": [0.5, 0.5], "start": 0.0, "end": 9.0}\n'
            '{"point": [0.25, 0.75], "start": 1.0, "end": 4.0}\n'
        )
        out = io.StringIO()
        rc = cli_main(
            [
                "append", "live", str(path),
                "--host", ingest_server.host,
                "--port", str(ingest_server.port),
            ],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "accepted 2" in text and "epoch" in text

    def test_append_unknown_dataset_fails(self, ingest_server, tmp_path):
        path = tmp_path / "events.ndjson"
        path.write_text('{"point": [0.5, 0.5], "start": 0.0, "end": 9.0}\n')
        out = io.StringIO()
        rc = cli_main(
            [
                "append", "ghost", str(path),
                "--host", ingest_server.host,
                "--port", str(ingest_server.port),
            ],
            out=out,
        )
        assert rc == 1

    def test_append_no_server_is_a_clean_error(self, tmp_path):
        path = tmp_path / "events.ndjson"
        path.write_text('{"point": [0.5, 0.5], "start": 0.0, "end": 9.0}\n')
        out = io.StringIO()
        rc = cli_main(
            ["append", "x", str(path), "--port", "1"], out=out
        )
        assert rc == 2  # ValidationError exit path
