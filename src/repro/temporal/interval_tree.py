"""Classic interval tree (Section 2.1).

A balanced, static interval tree over closed intervals supporting
stabbing and overlap queries.  Reporting is output-sensitive
(``O(log n + OUT)``); counting uses the complement trick over two global
sorted endpoint arrays (``O(log n)``), since for ``a ≤ b``::

    #{I : I ∩ [a,b] ≠ ∅} = n − #{I : I⁺ < a} − #{I : I⁻ > b}

and the two discarded sets are disjoint.

The tree is the foundation of the SUM-annotated variant ``ITΣ``
(:mod:`repro.temporal.sum_index`).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from ..errors import ValidationError

__all__ = ["IntervalTree"]


class _Node:
    __slots__ = ("center", "starts", "ids_by_start", "ends_desc", "ids_by_end", "left", "right")

    def __init__(self, center: float) -> None:
        self.center = center
        # Intervals stored at this node (they all contain ``center``),
        # viewed twice: sorted by start ascending and by end descending.
        self.starts: List[float] = []
        self.ids_by_start: List[int] = []
        self.ends_desc: List[float] = []
        self.ids_by_end: List[int] = []
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


def _build(items: List[Tuple[float, float, int]]) -> Optional[_Node]:
    if not items:
        return None
    endpoints = sorted(x for iv in items for x in (iv[0], iv[1]))
    center = endpoints[len(endpoints) // 2]
    node = _Node(center)
    here: List[Tuple[float, float, int]] = []
    left_items: List[Tuple[float, float, int]] = []
    right_items: List[Tuple[float, float, int]] = []
    for lo, hi, pid in items:
        if hi < center:
            left_items.append((lo, hi, pid))
        elif lo > center:
            right_items.append((lo, hi, pid))
        else:
            here.append((lo, hi, pid))
    here_by_start = sorted(here, key=lambda t: (t[0], t[2]))
    node.starts = [t[0] for t in here_by_start]
    node.ids_by_start = [t[2] for t in here_by_start]
    here_by_end = sorted(here, key=lambda t: (-t[1], t[2]))
    node.ends_desc = [t[1] for t in here_by_end]
    node.ids_by_end = [t[2] for t in here_by_end]
    node.left = _build(left_items)
    node.right = _build(right_items)
    return node


class IntervalTree:
    """Static interval tree over closed intervals.

    Parameters
    ----------
    intervals:
        ``(start, end)`` pairs; ``end >= start`` is required.
    ids:
        Optional identifiers reported by queries; defaults to positions.
    """

    def __init__(
        self,
        intervals: Sequence[Tuple[float, float]],
        ids: Optional[Sequence[int]] = None,
    ) -> None:
        if ids is None:
            ids = range(len(intervals))
        items: List[Tuple[float, float, int]] = []
        for (lo, hi), pid in zip(intervals, ids):
            if hi < lo:
                raise ValidationError(f"interval end ({hi!r}) precedes start ({lo!r})")
            items.append((float(lo), float(hi), int(pid)))
        self._n = len(items)
        self._root = _build(items)
        self._all_starts = sorted(t[0] for t in items)
        self._all_ends = sorted(t[1] for t in items)

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # Stabbing
    # ------------------------------------------------------------------
    def stab(self, t: float) -> List[int]:
        """Ids of all intervals containing time ``t`` (output-sensitive)."""
        out: List[int] = []
        node = self._root
        while node is not None:
            if t < node.center:
                k = bisect.bisect_right(node.starts, t)
                out.extend(node.ids_by_start[:k])
                node = node.left
            elif t > node.center:
                k = self._count_ge(node.ends_desc, t)
                out.extend(node.ids_by_end[:k])
                node = node.right
            else:
                out.extend(node.ids_by_start)
                break
        return out

    def count_stab(self, t: float) -> int:
        """Number of intervals containing ``t`` (``O(log n)``)."""
        below = bisect.bisect_left(self._all_ends, t)
        above = self._n - bisect.bisect_right(self._all_starts, t)
        return self._n - below - above

    # ------------------------------------------------------------------
    # Overlap with a query interval
    # ------------------------------------------------------------------
    def report_overlapping(self, a: float, b: float) -> List[int]:
        """Ids of all intervals intersecting ``[a, b]`` (output-sensitive)."""
        if b < a:
            return []
        out: List[int] = []
        self._collect(self._root, a, b, out)
        return out

    def count_overlapping(self, a: float, b: float) -> int:
        """Number of intervals intersecting ``[a, b]`` (``O(log n)``)."""
        if b < a:
            return 0
        below = bisect.bisect_left(self._all_ends, a)
        above = self._n - bisect.bisect_right(self._all_starts, b)
        return self._n - below - above

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _count_ge(desc: List[float], t: float) -> int:
        """Entries ≥ t in a descending-sorted list (they form a prefix)."""
        lo, hi = 0, len(desc)
        while lo < hi:
            mid = (lo + hi) // 2
            if desc[mid] >= t:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _collect(self, node: Optional[_Node], a: float, b: float, out: List[int]) -> None:
        while node is not None:
            if b < node.center:
                k = bisect.bisect_right(node.starts, b)
                out.extend(node.ids_by_start[:k])
                node = node.left
            elif a > node.center:
                k = self._count_ge(node.ends_desc, a)
                out.extend(node.ids_by_end[:k])
                node = node.right
            else:
                out.extend(node.ids_by_start)
                self._collect(node.left, a, b, out)
                node = node.right
