"""Incremental durable-triangle reporting — Section 4 (Theorem 4.2).

Queries arrive online with varying durability parameters ``τ₁, τ₂, …``.
Downward moves (``τ < τ≺``) report only the *delta* ``T_τ \\ T_τ≺``; the
machinery is:

* **activation thresholds** ``β^τ_p`` (Definition 4.1): the largest
  durability below ``τ`` of any triangle anchored at ``p`` that is not
  τ-durable.  Computed by binary search over the ``O(n)`` candidate
  values ``{I⁺_q − I⁻_p}`` with a ``DetectTriangle`` oracle
  (Algorithm 3, ``ComputeActivation``);
* ``S_β`` — a lazy max-heap over current thresholds; a query ``τ``
  activates exactly the anchors with ``β^{τ≺}_p ≥ τ``;
* ``ReportDeltaTriangle`` (Algorithm 2) — per activated anchor, the
  ``Λ`` / ``Λ̄`` partition of ``durableBallQ'`` enumerates exactly the
  pairs whose triangle durability falls in ``[τ, τ≺)``.

Upward moves (``τ ≥ τ≺``) trim the client-side result store and update
``S_β`` from the removed durabilities, exactly as the first maintenance
scenario of Section 4.3 describes.

Implementation notes (DESIGN.md note 2): when the anchor's own lifespan
satisfies ``|I_p| < τ≺``, *every* τ-eligible partner pair forms a
not-τ≺-durable triangle (its durability is capped at ``|I_p|``); the
printed Algorithms 2/3 miss this branch and both the backend below and
the detection oracle restore it.

The session is generic over an :class:`AnchorBackend`; the cover-tree
backend lives here, the exact ℓ∞ backend in :mod:`repro.core.linf`.
"""

from __future__ import annotations

import bisect
import heapq
from abc import ABC, abstractmethod
from itertools import combinations
from typing import Dict, List, Tuple

import numpy as np

from ..errors import BackendError, ValidationError
from ..structures.durable_ball import DurableBallStructure
from ..types import TemporalPointSet, TriangleRecord
from .triangles import _record, triangles_for_anchor

__all__ = [
    "AnchorBackend",
    "CoverTreeAnchorBackend",
    "compute_activation",
    "IncrementalTriangleSession",
]

_INF = float("inf")
_NEG_INF = float("-inf")


class AnchorBackend(ABC):
    """Per-anchor reporting/detection oracle used by the session.

    Implementations: :class:`CoverTreeAnchorBackend` (ε-approximate, any
    metric) and :class:`repro.core.linf.LinfAnchorBackend` (exact ℓ∞).
    """

    tps: TemporalPointSet

    @abstractmethod
    def report_all(self, anchor: int, tau: float) -> List[TriangleRecord]:
        """All τ-durable triangles anchored at ``anchor`` (Algorithm 1)."""

    @abstractmethod
    def report_delta(
        self, anchor: int, tau: float, tau_prec: float
    ) -> List[TriangleRecord]:
        """Triangles anchored at ``anchor`` that are τ- but not τ≺-durable
        (Algorithm 2)."""

    @abstractmethod
    def detect(self, anchor: int, tau_lo: float, tau_hi: float) -> bool:
        """Does any anchored triangle have durability in ``[τ_lo, τ_hi)``?
        (the ``DetectTriangle`` subroutine of Algorithm 3)."""


class CoverTreeAnchorBackend(AnchorBackend):
    """ε-approximate backend over ``D'`` (Sections 3–4)."""

    def __init__(self, structure: DurableBallStructure) -> None:
        self.structure = structure
        self.tps = structure.tps

    # -- Algorithm 1 ----------------------------------------------------
    def report_all(self, anchor: int, tau: float) -> List[TriangleRecord]:
        return list(triangles_for_anchor(self.structure, anchor, tau))

    # -- Algorithm 2 ----------------------------------------------------
    def report_delta(
        self, anchor: int, tau: float, tau_prec: float
    ) -> List[TriangleRecord]:
        tps = self.tps
        if tps.duration(anchor) < tau:
            return []
        if tps.duration(anchor) < tau_prec:
            # Missing-branch fix: every anchored τ-durable triangle has
            # durability ≤ |I_p| < τ≺, so nothing was reported before.
            return self.report_all(anchor, tau)
        subsets = self.structure.query_split(anchor, tau, tau_prec)
        out: List[TriangleRecord] = []
        lam_ids = [s.lam.ids() for s in subsets]
        bar_ids = [s.lam_bar.ids() for s in subsets]
        for j in range(len(subsets)):
            # Type (1): both in Λ of the same ball.
            for a, b in combinations(lam_ids[j], 2):
                out.append(_record(tps, anchor, a, b))
            # Type (2): Λ × Λ̄ of the same ball.
            for a in lam_ids[j]:
                for b in bar_ids[j]:
                    out.append(_record(tps, anchor, a, b))
        for i in range(len(subsets)):
            for j in range(i + 1, len(subsets)):
                if not self._has_cross(lam_ids, bar_ids, i, j):
                    continue
                if not self.structure.linked(subsets[i].group, subsets[j].group):
                    continue
                for a in lam_ids[i]:
                    for b in lam_ids[j]:
                        out.append(_record(tps, anchor, a, b))
                for a in lam_ids[i]:
                    for b in bar_ids[j]:
                        out.append(_record(tps, anchor, a, b))
                for a in bar_ids[i]:
                    for b in lam_ids[j]:
                        out.append(_record(tps, anchor, a, b))
        return out

    @staticmethod
    def _has_cross(lam_ids, bar_ids, i, j) -> bool:
        li, lj = len(lam_ids[i]), len(lam_ids[j])
        bi, bj = len(bar_ids[i]), len(bar_ids[j])
        return bool(li * lj or li * bj or bi * lj)

    # -- DetectTriangle (Algorithm 3) ------------------------------------
    def detect(self, anchor: int, tau_lo: float, tau_hi: float) -> bool:
        tps = self.tps
        duration = tps.duration(anchor)
        if duration < tau_lo:
            return False
        if duration < tau_hi:
            # Missing-branch fix: any τ_lo-eligible pair caps at |I_p| < τ_hi.
            subsets = self.structure.query(anchor, tau_lo)
            nonempty = [s for s in subsets if s.count]
            for s in nonempty:
                if s.count >= 2:
                    return True
            for i in range(len(nonempty)):
                for j in range(i + 1, len(nonempty)):
                    if self.structure.linked(nonempty[i].group, nonempty[j].group):
                        return True
            return False
        split = self.structure.query_split(anchor, tau_lo, tau_hi)
        lam = [s.lam.count for s in split]
        bar = [s.lam_bar.count for s in split]
        for j in range(len(split)):
            if lam[j] >= 2:
                return True
            if lam[j] >= 1 and bar[j] >= 1:
                return True
        for i in range(len(split)):
            for j in range(i + 1, len(split)):
                cross = (
                    (lam[i] and lam[j])
                    or (lam[i] and bar[j])
                    or (bar[i] and lam[j])
                )
                if cross and self.structure.linked(split[i].group, split[j].group):
                    return True
        return False


def compute_activation(
    backend: AnchorBackend,
    anchor: int,
    tau: float,
    sorted_ends: np.ndarray,
) -> float:
    """``ComputeActivation`` (Algorithm 3): the threshold ``β^τ_p``.

    Binary search over the candidate durabilities
    ``{I⁺_q − I⁻_p : q ∈ P}`` clipped to ``(0, min(τ, |I_p|)]`` — every
    anchored triangle's durability is of this form — using the
    ``detect`` oracle for membership in ``[c, τ)``.
    """
    tps = backend.tps
    sp = float(tps.starts[anchor])
    ep = float(tps.ends[anchor])
    lo_idx = bisect.bisect_right(sorted_ends, sp)
    if ep < sp + tau:
        hi_idx = bisect.bisect_right(sorted_ends, ep)
    else:
        hi_idx = bisect.bisect_left(sorted_ends, sp + tau)
    if lo_idx >= hi_idx:
        return _NEG_INF
    best = _NEG_INF
    lo, hi = lo_idx, hi_idx - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        cand = float(sorted_ends[mid]) - sp
        if backend.detect(anchor, cand, tau):
            best = cand
            lo = mid + 1
        else:
            hi = mid - 1
    return best


class IncrementalTriangleSession:
    """The online ``IncrDurableTriangle`` solver (Definition 1.4, Theorem 4.2).

    Parameters
    ----------
    tps:
        Input ``(P, φ, I)``.
    epsilon:
        Distance approximation; ignored by the exact ℓ∞ backend.
    backend:
        ``"cover-tree"`` / ``"grid"`` (ε-approximate, Section 4),
        ``"linf-exact"`` (Appendix B.3), or ``"auto"``.

    Usage::

        session = IncrementalTriangleSession(tps, epsilon=0.5)
        delta1 = session.query(10.0)   # all 10-durable triangles
        delta2 = session.query(5.0)    # only the new ones
        _      = session.query(8.0)    # upward move: trims, returns []

    The session also maintains the client-side result store
    (:meth:`current_results`), grouped per anchor and sorted by
    durability, as in the first maintenance scenario of Section 4.3.
    """

    def __init__(
        self,
        tps: TemporalPointSet,
        epsilon: float = 0.5,
        backend: str = "auto",
    ) -> None:
        self.tps = tps
        self.epsilon = float(epsilon)
        if backend in ("auto", "cover-tree", "grid"):
            if not 0 < self.epsilon <= 1:
                raise ValidationError(
                    f"epsilon must lie in (0, 1], got {epsilon!r}"
                )
            structure = DurableBallStructure(tps, self.epsilon / 4.0, backend)
            self.backend: AnchorBackend = CoverTreeAnchorBackend(structure)
        elif backend == "linf-exact":
            from .linf import LinfAnchorBackend

            self.backend = LinfAnchorBackend(tps)
        else:
            raise BackendError(f"unknown incremental backend {backend!r}")

        self._sorted_ends = np.sort(tps.ends)
        # S_α: maximum activation thresholds β^{+∞}_p, which seed S_β
        # (an empty S_β is "a completed query at τ = +∞", Section 4.2).
        self._beta: Dict[int, float] = {}
        self._heap: List[Tuple[float, int, float]] = []
        for p in range(tps.n):
            alpha = compute_activation(self.backend, p, _INF, self._sorted_ends)
            if alpha > _NEG_INF:
                self._beta[p] = alpha
                heapq.heappush(self._heap, (-alpha, p, alpha))
        self.max_activation = dict(self._beta)  # frozen S_α, kept for queries
        self._tau_star = _INF
        self._store: Dict[int, List[TriangleRecord]] = {}

    # ------------------------------------------------------------------
    @property
    def tau_current(self) -> float:
        """The effective durability threshold after the last query."""
        return self._tau_star

    def activation_threshold(self, anchor: int) -> float:
        """Current ``β^{τ*}_p`` (−inf when ``p`` anchors nothing new)."""
        return self._beta.get(anchor, _NEG_INF)

    def current_results(self) -> List[TriangleRecord]:
        """The full maintained result set for the current τ."""
        out: List[TriangleRecord] = []
        for recs in self._store.values():
            out.extend(recs)
        return out

    # ------------------------------------------------------------------
    def query(self, tau: float) -> List[TriangleRecord]:
        """Move the durability threshold to ``tau``.

        Downward moves return the delta (new triangles, each exactly
        once); upward moves trim the store and return ``[]``.
        """
        if tau <= 0:
            raise ValidationError(f"durability parameter must be positive, got {tau!r}")
        if tau >= self._tau_star:
            self._trim(tau)
            self._tau_star = float(tau)
            return []
        delta: List[TriangleRecord] = []
        for p in self._pop_activated(tau):
            if self._tau_star == _INF:
                recs = self.backend.report_all(p, tau)
            else:
                recs = self.backend.report_delta(p, tau, self._tau_star)
            if recs:
                bucket = self._store.setdefault(p, [])
                bucket.extend(recs)
                bucket.sort(key=lambda r: -r.durability)
                delta.extend(recs)
            beta = compute_activation(self.backend, p, tau, self._sorted_ends)
            self._set_beta(p, beta)
        self._tau_star = float(tau)
        return delta

    # ------------------------------------------------------------------
    def _pop_activated(self, tau: float) -> List[int]:
        activated: List[int] = []
        while self._heap and -self._heap[0][0] >= tau:
            _, p, beta = heapq.heappop(self._heap)
            if self._beta.get(p) == beta:  # else: stale entry
                activated.append(p)
        return activated

    def _set_beta(self, p: int, beta: float) -> None:
        if beta > _NEG_INF:
            self._beta[p] = beta
            heapq.heappush(self._heap, (-beta, p, beta))
        else:
            self._beta.pop(p, None)

    def _trim(self, tau: float) -> None:
        # Client-side trimming (Section 4.3): drop triangles below τ and
        # refresh β from the highest removed durability per anchor.
        for p in list(self._store):
            bucket = self._store[p]
            keep = [r for r in bucket if r.durability >= tau]
            removed = [r.durability for r in bucket if r.durability < tau]
            if removed:
                self._set_beta(p, max(max(removed), self._beta.get(p, _NEG_INF)))
            if keep:
                self._store[p] = keep
            else:
                del self._store[p]
