"""Capability descriptors — what one backend can do, declaratively.

A :class:`BackendDescriptor` is the registry's unit of registration: it
names a backend, declares which query kinds it serves and which metrics
it accepts, states its exactness guarantee, and carries the two planner
hooks that make dispatch data-driven instead of an if/elif chain —
``index_identity`` (the :class:`~repro.engine.cache.IndexKey` under
which the backend's preprocessing pass may be shared) and
``make_builder`` (the zero-argument closure the shared-index cache
runs at most once per key).

Spatial backends — those that plug a decomposition into
:class:`~repro.structures.durable_ball.DurableBallStructure` —
additionally expose ``decomposition_factory`` so
:func:`~repro.structures.durable_ball.make_decomposition` resolves
through the same registry.

Descriptors are frozen and hashable; everything dataset-dependent
happens inside the hooks, so one descriptor instance serves every
dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, FrozenSet, List, Optional

from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    import numpy as np

    from ..engine.cache import IndexKey
    from ..engine.spec import QuerySpec
    from ..geometry.metrics import Metric
    from ..structures.decomposition import SpatialDecomposition
    from ..types import TemporalPointSet

__all__ = ["BackendDescriptor"]

#: Hook signatures (documented here; enforced structurally).
BuilderHook = Callable[["QuerySpec", "TemporalPointSet"], Callable[[], Any]]
IdentityHook = Callable[["QuerySpec", str], "IndexKey"]
MetricPredicate = Callable[["Metric"], bool]
DecompositionFactory = Callable[
    ["np.ndarray", "Metric", float], "SpatialDecomposition"
]


@dataclass(frozen=True)
class BackendDescriptor:
    """One registered backend: capabilities plus planner hooks.

    Parameters
    ----------
    name:
        Registry name (``"cover-tree"``, ``"grid"``, ``"linf-exact"``,
        or a custom name).  This string is also the ``backend`` field of
        every :class:`~repro.engine.cache.IndexKey` the backend's
        ``index_identity`` hook produces, so renaming a backend
        invalidates its cached indexes — by design.
    kinds:
        Query kinds (subset of :data:`repro.engine.spec.KINDS`) this
        backend can execute.  Dispatching an unsupported kind raises
        :class:`~repro.errors.ValidationError` naming the backends that
        *do* serve it.
    exact:
        ``True`` when the backend reports exactly the τ-durable set
        (no ε-extras).  ``backend="auto"`` prefers exact backends when
        one is eligible, matching the historical ℓ∞ promotion.
    description:
        One-line capability summary (shown by ``python -m repro
        backends``).
    metric_requirement:
        Human-readable metric constraint (``"any metric"``, ``"lp
        metrics (grid cells)"``, ``"linf only"``).
    metric_ok:
        Predicate deciding whether the backend can run under a metric.
    make_builder / index_identity:
        The planner hooks described in the module docstring.
    decomposition_factory:
        ``(points, metric, resolution) -> SpatialDecomposition`` for
        spatial backends; ``None`` for solvers (like the exact ℓ∞
        triangle reporter) that bypass the durable-ball structure.
    """

    name: str
    kinds: FrozenSet[str]
    exact: bool
    description: str
    metric_requirement: str
    metric_ok: MetricPredicate = field(compare=False)
    make_builder: BuilderHook = field(compare=False)
    index_identity: IdentityHook = field(compare=False)
    decomposition_factory: Optional[DecompositionFactory] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValidationError(
                f"backend name must be a non-empty string, got {self.name!r}"
            )
        if self.name == "auto":
            raise ValidationError(
                "'auto' is the dispatch keyword, not a registrable backend name"
            )
        if not self.kinds:
            raise ValidationError(
                f"backend {self.name!r} must declare at least one query kind"
            )
        object.__setattr__(self, "kinds", frozenset(self.kinds))

    # ------------------------------------------------------------------
    @property
    def spatial(self) -> bool:
        """Whether this backend provides a spatial decomposition."""
        return self.decomposition_factory is not None

    def serves(self, kind: str) -> bool:
        return kind in self.kinds

    def supports_metric(self, metric: "Metric") -> bool:
        return bool(self.metric_ok(metric))

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """JSON-ready capability card (CLI listing, ``/stats``)."""
        kinds: List[str] = sorted(self.kinds)
        return {
            "name": self.name,
            "kinds": kinds,
            "exact": self.exact,
            "spatial": self.spatial,
            "metric": self.metric_requirement,
            "description": self.description,
        }
