#!/usr/bin/env python3
"""Appendix C — monitoring durable triangles over a live stream.

Points are not known upfront: they appear at the start of their lifespan
and disappear at its end.  The dynamic structure reports each τ-durable
triangle the moment its anchor has been alive for τ ("maturity"), with
polylogarithmic amortised update cost (Theorem C.1).

Run:  python examples/streaming_monitor.py
"""

from __future__ import annotations

from repro import DynamicTriangleStream
from repro.baselines import triangle_bounds
from repro.datasets import benchmark_workload


def main() -> None:
    tau, epsilon = 6.0, 0.5
    tps = benchmark_workload(n=400, density=10.0, seed=11)
    print(f"replaying {tps.n} lifespan events, τ = {tau}")

    stream = DynamicTriangleStream(tps, tau, epsilon=epsilon)
    live = 0
    reported = []
    peak = 0
    for ev in stream.events():
        if ev.kind == "activate":
            live += 1
            peak = max(peak, live)
            if ev.triangles:
                reported.extend(ev.triangles)
                if len(reported) <= 5 or len(ev.triangles) >= 8:
                    print(
                        f"  t = {ev.time:6.2f}: point {ev.point:>3} matured, "
                        f"{len(ev.triangles)} new durable triangle(s)"
                    )
        else:
            live -= 1

    st = stream.structure
    print(
        f"\ntotals: {len(reported)} triangles reported on-line, "
        f"peak live set {peak}, group rebuilds {st.n_group_rebuilds}, "
        f"full compactions {st.n_full_rebuilds}"
    )

    # The stream's union equals the offline answer (same guarantee).
    must, may = triangle_bounds(tps, tau, epsilon)
    got = {r.key for r in reported}
    assert must <= got <= may
    print(
        f"offline cross-check: |T_τ| = {len(must)} ≤ streamed = {len(got)}"
        f" ≤ |T^ε_τ| = {len(may)}  ✓"
    )


if __name__ == "__main__":
    main()
