"""One-call convenience entry points for the library's main operations.

These wrap the index classes for scripts that need a single query; for
repeated queries over the same data build the index object once instead.
"""

from __future__ import annotations

from typing import List, Optional

from .core.aggregate import SumPairIndex, UnionPairIndex
from .core.linf import LinfTriangleIndex
from .core.triangles import DurableTriangleIndex
from .errors import BackendError
from .geometry.metrics import ChebyshevMetric
from .types import PairRecord, TemporalPointSet, TriangleRecord

__all__ = [
    "find_durable_triangles",
    "find_sum_durable_pairs",
    "find_union_durable_pairs",
]


def find_durable_triangles(
    tps: TemporalPointSet,
    tau: float,
    epsilon: float = 0.5,
    backend: str = "auto",
) -> List[TriangleRecord]:
    """Report τ-durable triangles (Definition 1.3).

    ``backend="linf-exact"`` (valid only under the ℓ∞ metric) returns
    exactly ``T_τ`` (Theorem B.3); the approximate backends return
    ``T_τ`` plus possibly some τ-durable ε-triangles (Theorem 3.1).
    """
    if backend == "linf-exact":
        return LinfTriangleIndex(tps).query(tau)
    if backend == "auto" and isinstance(tps.metric, ChebyshevMetric):
        # ℓ∞ inputs get the exact algorithm for free.
        return LinfTriangleIndex(tps).query(tau)
    return DurableTriangleIndex(tps, epsilon=epsilon, backend=backend).query(tau)


def find_sum_durable_pairs(
    tps: TemporalPointSet,
    tau: float,
    epsilon: float = 0.5,
    backend: str = "auto",
) -> List[PairRecord]:
    """Report τ-SUM-durable pairs (Definition 1.5, Theorem 5.1)."""
    spatial = "auto" if backend == "linf-exact" else backend
    return SumPairIndex(tps, epsilon=epsilon, backend=spatial).query(tau)


def find_union_durable_pairs(
    tps: TemporalPointSet,
    tau: float,
    kappa: int,
    epsilon: float = 0.5,
    backend: str = "auto",
) -> List[PairRecord]:
    """Report (τ, κ)-UNION-durable pairs (Section 5.2, Theorem 5.2)."""
    spatial = "auto" if backend == "linf-exact" else backend
    return UnionPairIndex(tps, epsilon=epsilon, backend=spatial).query(tau, kappa)
