"""Aggregate-durable pair reporting — Section 5 (Theorems 5.1 & 5.2).

Both solvers share the anchor loop of ``ReportSUMPair`` (Algorithm 4):
visit anchors ``p`` in id order, fetch the temporally-eligible partners
``q`` per canonical ball in *descending* ``I⁺_q`` order, and evaluate the
witness aggregate over the balls linked to the partner's ball.  The
window ``I_p ∩ I_q`` only shrinks along the partner order, so the first
failing partner ends the ball (the output-sensitivity argument of
Section 5.1 / Appendix E).

* **SUM** (:class:`SumPairIndex`): the witness aggregate is
  ``Σ_u |I_u ∩ I_p ∩ I_q|`` computed by ``ComputeSumD`` over per-ball
  SUM structures.  Both the paper-faithful annotated interval tree and
  the coverage-profile fast path are available (DESIGN.md note 4).

* **UNION** (:class:`UnionPairIndex`): Algorithm 8 — the greedy
  max-κ-coverage loop over per-ball ``IT∪`` structures, reporting a pair
  when the greedily covered length reaches ``(1 − 1/e)·τ``.

Witness semantics (DESIGN.md note 3): the contributions of ``p`` and
``q`` themselves are excluded — exactly (membership of their balls in
the linked set is checked, not assumed) for SUM, and via the top-3
exclusion lists for UNION.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Literal, Optional, Sequence, Tuple

import numpy as np

from ..errors import BackendError, ValidationError
from ..structures.durable_ball import DurableBallStructure, resolve_backend
from ..temporal.max_overlap import MaxOverlapIndex
from ..temporal.sum_index import AnnotatedIntervalTree, CoverageProfile
from ..types import PairRecord, TemporalPointSet

__all__ = ["SumPairIndex", "UnionPairIndex"]


class _AggregateBase:
    """Shared anchor/partner iteration for Algorithms 4 and 8."""

    def __init__(
        self,
        tps: TemporalPointSet,
        epsilon: float,
        backend: str,
    ) -> None:
        if not 0 < epsilon <= 1:
            raise ValidationError(f"epsilon must lie in (0, 1], got {epsilon!r}")
        self.tps = tps
        self.epsilon = float(epsilon)
        self.backend = resolve_backend(backend)
        # Algorithm 4 issues durableBallQ(p, τ, ε/2): resolution ε/4.
        self.structure = DurableBallStructure(tps, epsilon / 4.0, backend)

    # ------------------------------------------------------------------
    def _eligible_anchors(self, tau: float) -> Iterator[int]:
        durations = self.tps.ends - self.tps.starts
        for p in np.nonzero(durations >= tau)[0]:
            yield int(p)

    def _witness_groups(
        self, candidate: Sequence[int], partner_group: int
    ) -> List[int]:
        """Candidate balls linked to the partner's ball (witness pool)."""
        dec = self.structure.decomposition
        return dec.linked_groups(partner_group, candidate)

    @staticmethod
    def _check_params(tau: float) -> None:
        if tau <= 0:
            raise ValidationError(f"durability parameter must be positive, got {tau!r}")


class SumPairIndex(_AggregateBase):
    """``AggDurablePair-SUM`` (Section 5.1, Theorem 5.1).

    Reports every pair with ``φ(p,q) ≤ 1``, ``|I_p ∩ I_q| ≥ τ`` and
    witness sum ``Σ_{u ∉ {p,q}} |I_u ∩ I_p ∩ I_q| ≥ τ``, plus possibly
    some ε-pairs satisfying the same aggregates under distances
    ``≤ 1 + ε``.

    Parameters
    ----------
    sum_backend:
        ``"profile"`` (coverage profile, ``O(log n)`` per ComputeSumD) or
        ``"tree"`` (paper-faithful ``ITΣ``, ``O(log² n)``); identical
        outputs (experiment E13 benchmarks the difference).
    """

    def __init__(
        self,
        tps: TemporalPointSet,
        epsilon: float = 0.5,
        backend: str = "auto",
        sum_backend: Literal["profile", "tree"] = "profile",
    ) -> None:
        super().__init__(tps, epsilon, backend)
        if sum_backend == "profile":
            factory = CoverageProfile
        elif sum_backend == "tree":
            factory = AnnotatedIntervalTree
        else:
            raise BackendError(f"unknown sum backend {sum_backend!r}")
        self.sum_backend = sum_backend
        self._sums: List = []
        for g in self.structure.groups:
            spans = [
                (float(tps.starts[i]), float(tps.ends[i])) for i in g.member_ids
            ]
            self._sums.append(factory(spans))

    def cache_key(self) -> tuple:
        """Engine-cache identity (see :mod:`repro.engine.cache`)."""
        return (
            "pairs-sum",
            self.tps.fingerprint(),
            self.epsilon,
            self.backend,
            self.sum_backend,
        )

    def maintained(self, tps: TemporalPointSet) -> Optional["SumPairIndex"]:
        """An index over ``tps`` (this dataset plus appended events).

        Incremental maintenance for the SUM pair family: the underlying
        durable-ball structure extends in place when its decomposition
        supports it (the grid does), and the per-ball SUM structures are
        rebuilt *only* for canonical groups whose membership changed —
        untouched groups share their coverage profiles / annotated
        trees with this instance by reference.  Returns ``None`` when
        the decomposition cannot extend (cover tree), in which case the
        cache entry is invalidated for an exactly-once rebuild.  This
        instance is never mutated.
        """
        structure = self.structure.extended(tps)
        if structure is None:
            return None
        clone = object.__new__(SumPairIndex)
        clone.tps = tps
        clone.epsilon = self.epsilon
        clone.backend = self.backend
        clone.structure = structure
        clone.sum_backend = self.sum_backend
        factory = (
            CoverageProfile if self.sum_backend == "profile" else AnnotatedIntervalTree
        )
        sums: List = list(self._sums)
        sums.extend([None] * (len(structure.groups) - len(sums)))
        old_indexes = self.structure.indexes
        for gi, group in enumerate(structure.groups):
            # `extended` shares untouched groups' dominance indexes by
            # reference; a fresh object marks a changed (or new) group.
            if gi < len(old_indexes) and structure.indexes[gi] is old_indexes[gi]:
                continue
            spans = [
                (float(tps.starts[i]), float(tps.ends[i])) for i in group.member_ids
            ]
            sums[gi] = factory(spans)
        clone._sums = sums
        return clone

    # ------------------------------------------------------------------
    def query(self, tau: float) -> List[PairRecord]:
        """All τ-SUM-durable pairs (plus some τ-SUM-durable ε-pairs)."""
        self._check_params(tau)
        out: List[PairRecord] = []
        tps = self.tps
        dec = self.structure.decomposition
        for p in self._eligible_anchors(tau):
            subsets = self.structure.query(p, tau)
            if not subsets:
                continue
            candidate = dec.candidate_groups(tps.points[p], 1.0)
            sp, ep = float(tps.starts[p]), float(tps.ends[p])
            p_group = self.structure.group_index_of(p)
            for subset in subsets:
                j = subset.group.index
                witnesses = self._witness_groups(candidate, j)
                if not witnesses:
                    continue
                witness_set = set(witnesses)
                p_counted = p_group in witness_set
                for eq, q in subset.members.iter_desc_by_end():
                    hi = min(ep, eq)
                    window = hi - sp
                    total = 0.0
                    for gi in witnesses:
                        total += self._sums[gi].sum_intersections(sp, hi)
                    # Discount the self-contributions of q (always in
                    # ball j ⊆ witnesses) and of p when its ball counts.
                    total -= window
                    if p_counted:
                        total -= window
                    if total >= tau:
                        out.append(PairRecord(p=p, q=q, score=total))
                    else:
                        break
        return out

    def witness_sum(self, p: int, q: int) -> float:
        """The ε-witness aggregate for one pair (diagnostics/tests).

        Sums ``|I_u ∩ I_p ∩ I_q|`` over every point ``u ∉ {p, q}`` lying
        in balls linked to ``q``'s ball among ``p``'s candidate balls.
        """
        tps = self.tps
        dec = self.structure.decomposition
        sp = max(float(tps.starts[p]), float(tps.starts[q]))
        hi = min(float(tps.ends[p]), float(tps.ends[q]))
        if hi <= sp:
            return 0.0
        candidate = dec.candidate_groups(tps.points[p], 1.0)
        witnesses = self._witness_groups(candidate, self.structure.group_index_of(q))
        witness_set = set(witnesses)
        total = 0.0
        for gi in witnesses:
            total += self._sums[gi].sum_intersections(sp, hi)
        # Discount self-contributions only when the respective ball was
        # actually counted (for arbitrary diagnostic pairs, q's ball may
        # fall outside p's candidate set entirely).
        if self.structure.group_index_of(q) in witness_set:
            total -= hi - sp
        if self.structure.group_index_of(p) in witness_set:
            total -= hi - sp
        return total


class UnionPairIndex(_AggregateBase):
    """``AggDurablePair-UNION`` (Section 5.2, Appendix E, Theorem 5.2).

    Reports every ``(τ, κ)``-UNION-durable pair, plus possibly some
    ``((1 − 1/e)·τ, κ)``-UNION-durable ε-pairs: the per-pair aggregate is
    the greedy max-κ-coverage of the window ``I_p ∩ I_q`` by witness
    lifespans, accepted when it reaches ``(1 − 1/e)·τ``.
    """

    #: The greedy approximation factor of max-κ-coverage.
    GREEDY_FACTOR = 1.0 - 1.0 / np.e

    def __init__(
        self,
        tps: TemporalPointSet,
        epsilon: float = 0.5,
        backend: str = "auto",
    ) -> None:
        super().__init__(tps, epsilon, backend)
        self._overlaps: List[MaxOverlapIndex] = []
        for g in self.structure.groups:
            ids = g.member_ids
            self._overlaps.append(
                MaxOverlapIndex(
                    [float(tps.starts[i]) for i in ids],
                    [float(tps.ends[i]) for i in ids],
                    ids,
                )
            )

    def cache_key(self) -> tuple:
        """Engine-cache identity (κ is a query parameter, not index state)."""
        return ("pairs-union", self.tps.fingerprint(), self.epsilon, self.backend)

    # ------------------------------------------------------------------
    def query(self, tau: float, kappa: int) -> List[PairRecord]:
        """All ``(τ, κ)``-UNION-durable pairs (plus factor-relaxed ε-pairs)."""
        self._check_params(tau)
        if not (isinstance(kappa, (int, np.integer)) and kappa >= 1):
            raise ValidationError(f"kappa must be a positive integer, got {kappa!r}")
        out: List[PairRecord] = []
        tps = self.tps
        dec = self.structure.decomposition
        target = self.GREEDY_FACTOR * tau
        for p in self._eligible_anchors(tau):
            subsets = self.structure.query(p, tau)
            if not subsets:
                continue
            candidate = dec.candidate_groups(tps.points[p], 1.0)
            sp, ep = float(tps.starts[p]), float(tps.ends[p])
            for subset in subsets:
                j = subset.group.index
                witnesses = self._witness_groups(candidate, j)
                if not witnesses:
                    continue
                for eq, q in subset.members.iter_desc_by_end():
                    hi = min(ep, eq)
                    covered = self.greedy_union(
                        sp, hi, witnesses, kappa, exclude=(p, q)
                    )
                    if covered >= target:
                        out.append(PairRecord(p=p, q=q, score=covered))
                    else:
                        break
        return out

    # ------------------------------------------------------------------
    def greedy_union(
        self,
        lo: float,
        hi: float,
        witness_groups: Sequence[int],
        kappa: int,
        exclude: Tuple[int, int],
    ) -> float:
        """Greedy max-κ-coverage of ``[lo, hi]`` (the core of Algorithm 8).

        Maintains a max-heap of ``(best witness, uncovered segment)``
        pairs; each of the κ iterations commits the globally best
        overlap, splits its segment, and refreshes the two remainders
        with a ``MaxIntersection`` query each.
        """
        if hi <= lo:
            return 0.0
        excl = set(exclude)
        counter = 0
        heap: List[Tuple[float, int, float, float, int, float, float]] = []

        def push(seg_lo: float, seg_hi: float) -> None:
            nonlocal counter
            if seg_hi <= seg_lo:
                return
            best: Optional[Tuple[float, int, float, float]] = None
            for gi in witness_groups:
                cand = self._overlaps[gi].best_overlap(seg_lo, seg_hi, exclude=excl)
                if cand is not None and (best is None or cand[0] > best[0]):
                    best = cand
            if best is None:
                return
            overlap, _pid, w_lo, w_hi = best
            counter += 1
            heapq.heappush(heap, (-overlap, counter, seg_lo, seg_hi, _pid, w_lo, w_hi))

        push(lo, hi)
        covered = 0.0
        for _ in range(kappa):
            if not heap:
                break
            neg_overlap, _, seg_lo, seg_hi, _pid, w_lo, w_hi = heapq.heappop(heap)
            overlap = -neg_overlap
            if overlap <= 0:
                break
            covered += overlap
            # Split the segment around the chosen witness interval.
            push(seg_lo, min(seg_hi, w_lo))
            push(max(seg_lo, w_hi), seg_hi)
        return covered

    def union_score(self, p: int, q: int, kappa: int) -> float:
        """The greedy aggregate for one pair (diagnostics/tests)."""
        tps = self.tps
        dec = self.structure.decomposition
        sp = max(float(tps.starts[p]), float(tps.starts[q]))
        hi = min(float(tps.ends[p]), float(tps.ends[q]))
        candidate = dec.candidate_groups(tps.points[p], 1.0)
        witnesses = self._witness_groups(candidate, self.structure.group_index_of(q))
        if not witnesses:
            return 0.0
        return self.greedy_union(sp, hi, witnesses, kappa, exclude=(p, q))
