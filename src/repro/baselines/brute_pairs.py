"""Ground truth for aggregate-durable pairs (Section 5).

Implements the de facto semantics of Algorithms 4/8 (DESIGN.md note 3):
for an anchored pair ``(p, q)`` with ``φ(p, q) ≤ 1`` the witness pool is
``U = {u ∉ {p,q} : φ(u,p) ≤ 1, φ(u,q) ≤ 1}`` and the window is
``I_p ∩ I_q``.

* SUM: ``Σ_{u ∈ U} |I_u ∩ window| ≥ τ`` with the additional durable-edge
  requirement ``|window| ≥ τ``.
* UNION: exists ``U' ⊆ U`` with ``|U'| ≤ κ`` and
  ``|∪_{u ∈ U'} (I_u ∩ window)| ≥ τ`` — decided *exactly* with a
  max-κ-coverage dynamic program (intervals on a line admit an exact
  polynomial DP, unlike general max coverage).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..errors import ValidationError
from ..types import TemporalPointSet

__all__ = [
    "max_kappa_coverage",
    "brute_sum_pairs",
    "brute_union_pairs",
    "brute_pair_witness_sum",
]


def max_kappa_coverage(
    intervals: Sequence[Tuple[float, float]],
    window: Tuple[float, float],
    kappa: int,
) -> float:
    """Exact maximum length of ``window`` coverable by ≤ κ intervals.

    Dynamic program over intervals sorted by right endpoint with state
    (count used, rightmost covered point).  For minimal optimal subsets
    the marginal-gain telescoping equals the true union length, so the
    maximum over states is exact; see DESIGN.md.
    """
    if kappa < 1:
        raise ValidationError(f"kappa must be >= 1, got {kappa!r}")
    a, b = window
    if b <= a:
        return 0.0
    clipped = sorted(
        (
            (max(lo, a), min(hi, b))
            for lo, hi in intervals
            if min(hi, b) > max(lo, a)
        ),
        key=lambda t: t[1],
    )
    if not clipped:
        return 0.0
    # dp[k] maps rightmost-covered -> best covered length with k intervals.
    dp: List[Dict[float, float]] = [dict() for _ in range(kappa + 1)]
    dp[0][a] = 0.0
    best = 0.0
    for lo, hi in clipped:
        for k in range(kappa - 1, -1, -1):
            if not dp[k]:
                continue
            for r, cov in list(dp[k].items()):
                if hi <= r:
                    continue
                gain = hi - max(lo, r)
                new_cov = cov + gain
                cur = dp[k + 1].get(hi)
                if cur is None or new_cov > cur:
                    dp[k + 1][hi] = new_cov
                    if new_cov > best:
                        best = new_cov
    return best


def _adjacency(tps: TemporalPointSet, threshold: float) -> np.ndarray:
    n = tps.n
    adj = np.zeros((n, n), dtype=bool)
    for i in range(n):
        adj[i] = tps.metric.dists(tps.points, tps.points[i]) <= threshold
    np.fill_diagonal(adj, False)
    return adj


def brute_pair_witness_sum(
    tps: TemporalPointSet, p: int, q: int, threshold: float = 1.0
) -> float:
    """``Σ_{u ∉ {p,q}} |I_u ∩ I_p ∩ I_q|`` over threshold-near witnesses."""
    lo = max(float(tps.starts[p]), float(tps.starts[q]))
    hi = min(float(tps.ends[p]), float(tps.ends[q]))
    if hi <= lo:
        return 0.0
    dp = tps.metric.dists(tps.points, tps.points[p])
    dq = tps.metric.dists(tps.points, tps.points[q])
    total = 0.0
    for u in np.nonzero((dp <= threshold) & (dq <= threshold))[0]:
        if u == p or u == q:
            continue
        total += max(0.0, min(float(tps.ends[u]), hi) - max(float(tps.starts[u]), lo))
    return total


def brute_sum_pairs(
    tps: TemporalPointSet, tau: float, threshold: float = 1.0
) -> Set[Tuple[int, int]]:
    """Keys (sorted id pairs) of all τ-SUM-durable pairs."""
    if tau <= 0:
        raise ValidationError(f"durability parameter must be positive, got {tau!r}")
    adj = _adjacency(tps, threshold)
    out: Set[Tuple[int, int]] = set()
    for p in range(tps.n):
        for q in range(p + 1, tps.n):
            if not adj[p, q]:
                continue
            lo = max(float(tps.starts[p]), float(tps.starts[q]))
            hi = min(float(tps.ends[p]), float(tps.ends[q]))
            if hi - lo < tau:  # durable-edge requirement
                continue
            if brute_pair_witness_sum(tps, p, q, threshold) >= tau:
                out.add((p, q))
    return out


def brute_union_pairs(
    tps: TemporalPointSet,
    tau: float,
    kappa: int,
    threshold: float = 1.0,
) -> Set[Tuple[int, int]]:
    """Keys of all exactly ``(τ, κ)``-UNION-durable pairs."""
    if tau <= 0:
        raise ValidationError(f"durability parameter must be positive, got {tau!r}")
    adj = _adjacency(tps, threshold)
    out: Set[Tuple[int, int]] = set()
    for p in range(tps.n):
        dp = tps.metric.dists(tps.points, tps.points[p])
        for q in range(p + 1, tps.n):
            if not adj[p, q]:
                continue
            lo = max(float(tps.starts[p]), float(tps.starts[q]))
            hi = min(float(tps.ends[p]), float(tps.ends[q]))
            if hi - lo < tau:  # the union can never reach τ
                continue
            dq = tps.metric.dists(tps.points, tps.points[q])
            witnesses = [
                (float(tps.starts[u]), float(tps.ends[u]))
                for u in np.nonzero((dp <= threshold) & (dq <= threshold))[0]
                if u != p and u != q
            ]
            if max_kappa_coverage(witnesses, (lo, hi), kappa) >= tau:
                out.add((p, q))
    return out
