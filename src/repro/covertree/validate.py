"""Invariant checking for the net hierarchy (used by the test suite).

Verifies the three cover-tree constraints of Section 2.1 — nesting,
covering and separation — plus the subtree cover bound of Lemma A.1 on
which the ball-query pruning relies.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..geometry.metrics import Metric
from .build import NetHierarchy

__all__ = ["check_invariants"]


def check_invariants(
    hierarchy: NetHierarchy, points: np.ndarray, metric: Metric
) -> List[str]:
    """Return a list of human-readable violations (empty == valid)."""
    problems: List[str] = []
    levels = hierarchy.levels

    # Separation: reps at the same level are pairwise > 2^ℓ apart.
    for lvl in levels:
        reps = lvl.rep_ids
        for a_pos, a in enumerate(reps):
            if a_pos + 1 >= len(reps):
                continue
            d = metric.dists(points[reps[a_pos + 1 :]], points[a])
            bad = np.nonzero(d <= lvl.radius)[0]
            for b_pos in bad:
                b = reps[a_pos + 1 + int(b_pos)]
                problems.append(
                    f"separation violated at level {lvl.level}: "
                    f"reps {a} and {b} at distance {float(d[b_pos]):.6g} ≤ {lvl.radius:g}"
                )

    # Covering: every child is within 2^{ℓ} of its parent at level ℓ.
    for lvl in levels:
        for parent, children in lvl.children.items():
            d = metric.dists(points[children], points[parent])
            bad = np.nonzero(d > lvl.radius + 1e-9)[0]
            for pos in bad:
                problems.append(
                    f"covering violated at level {lvl.level}: child "
                    f"{children[int(pos)]} is {float(d[pos]):.6g} from parent {parent}"
                )

    # Nesting: reps at level ℓ+1 are also reps at level ℓ.
    for below, above in zip(levels, levels[1:]):
        missing = set(above.rep_ids) - set(below.rep_ids)
        if missing:
            problems.append(
                f"nesting violated between levels {below.level} and "
                f"{above.level}: {sorted(missing)} not present below"
            )

    # Lemma A.1: every point is within the subtree cover bound of every
    # ancestor rep.
    ancestor = dict(hierarchy.assign_bottom)
    for lvl in levels:
        for pid, rep in ancestor.items():
            d = metric.dist(points[pid], points[rep])
            if d > lvl.cover_bound + 1e-9:
                problems.append(
                    f"cover bound violated at level {lvl.level}: point {pid} is "
                    f"{d:.6g} from ancestor {rep} (bound {lvl.cover_bound:g})"
                )
        if lvl is not levels[-1]:
            nxt = levels[levels.index(lvl) + 1]
            parent_of = {}
            for parent, children in nxt.children.items():
                for child in children:
                    parent_of[child] = parent
            ancestor = {pid: parent_of[rep] for pid, rep in ancestor.items()}
    return problems
