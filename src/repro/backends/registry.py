"""The backend registry — single source of truth for dispatch.

Every interchangeable algorithm flavour in this repository (cover-tree
vs grid spatial decompositions, approximate vs ℓ∞-exact triangle
reporting) registers a :class:`~repro.backends.descriptor.
BackendDescriptor` here.  Consumers stopped hardcoding the choices:

* the engine planner (:mod:`repro.engine.planner`) resolves every
  :class:`~repro.engine.spec.QuerySpec` through :meth:`BackendRegistry.
  resolve`;
* spec validation (:mod:`repro.engine.spec`) checks backend names and
  kind/backend combinations via :meth:`BackendRegistry.
  validate_combination`;
* :func:`repro.structures.durable_ball.make_decomposition` looks
  spatial backends up with :meth:`BackendRegistry.get_spatial`;
* the serving layer and the CLI list capabilities from
  :meth:`BackendRegistry.describe`.

Resolution policy for ``backend="auto"`` (deterministic for a fixed
dataset fingerprint — no clocks, no randomness):

1. candidates are the registered backends serving the query kind whose
   metric predicate accepts the dataset's metric;
2. ``exact=True`` restricts to exact backends (as does explicitly
   naming one); ``exact=False`` removes them;
3. if an exact backend remains eligible it wins outright — exact
   output (no ε-extras) beats any constant-factor speed difference,
   preserving the historical ℓ∞ promotion;
4. otherwise the :class:`~repro.backends.cost.CostModel` scores every
   candidate for the query shape ``(n, dim, metric, |taus|)`` and the
   cheapest wins, ties broken by registration order.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..errors import BackendError, ValidationError
from .cost import CostModel, QueryFeatures
from .descriptor import BackendDescriptor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.spec import QuerySpec
    from ..types import TemporalPointSet

__all__ = ["BackendResolution", "BackendRegistry", "default_registry"]


@dataclass(frozen=True)
class BackendResolution:
    """The outcome of one ``resolve`` call (descriptor + audit trail).

    ``costs`` maps every eligible candidate to its cost-model estimate
    (seconds), so callers — the CLI's ``--explain``, tests, future
    routing layers — can see *why* the winner won; ``reason`` is the
    human-readable rule that decided.
    """

    descriptor: BackendDescriptor
    costs: Dict[str, float]
    reason: str

    @property
    def name(self) -> str:
        return self.descriptor.name


class BackendRegistry:
    """Name → :class:`BackendDescriptor` mapping with cost-based dispatch.

    Thread-safe for registration; lookups and resolution touch an
    immutable snapshot.  ``cost_model`` may be swapped (e.g. with
    :meth:`~repro.backends.cost.CostModel.from_bench` coefficients) to
    recalibrate ``auto`` without re-registering anything.
    """

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self._lock = threading.Lock()
        self._descriptors: "OrderedDict[str, BackendDescriptor]" = OrderedDict()
        self.cost_model = cost_model if cost_model is not None else CostModel()

    # ------------------------------------------------------------------
    def register(
        self, descriptor: BackendDescriptor, replace: bool = False
    ) -> BackendDescriptor:
        """Add a backend; re-registering a name needs ``replace=True``."""
        with self._lock:
            if descriptor.name in self._descriptors and not replace:
                raise ValidationError(
                    f"backend {descriptor.name!r} is already registered; "
                    "pass replace=True to swap it"
                )
            self._descriptors[descriptor.name] = descriptor
        return descriptor

    def names(self) -> Tuple[str, ...]:
        """Registered backend names, in registration order."""
        with self._lock:
            return tuple(self._descriptors)

    def descriptors(self) -> Tuple[BackendDescriptor, ...]:
        with self._lock:
            return tuple(self._descriptors.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._descriptors

    def __len__(self) -> int:
        with self._lock:
            return len(self._descriptors)

    def get(self, name: str) -> BackendDescriptor:
        """Descriptor for ``name``; unknown names raise :class:`BackendError`
        listing what *is* registered."""
        with self._lock:
            desc = self._descriptors.get(name)
        if desc is None:
            raise BackendError(
                f"unknown backend {name!r}; registered backends: "
                f"{', '.join(self.names()) or '(none)'}"
            )
        return desc

    def get_spatial(self, name: str) -> BackendDescriptor:
        """Descriptor for a *spatial* backend (one that provides a
        decomposition factory); errors list the registered spatial names."""
        spatial = self.spatial_names()
        with self._lock:
            desc = self._descriptors.get(name)
        if desc is None or not desc.spatial:
            raise BackendError(
                f"unknown spatial backend {name!r}; registered spatial "
                f"backends: {', '.join(spatial) or '(none)'}"
            )
        return desc

    def spatial_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(n for n, d in self._descriptors.items() if d.spatial)

    def serving(self, kind: str) -> Tuple[BackendDescriptor, ...]:
        """Backends declaring support for a query kind (registration order)."""
        with self._lock:
            return tuple(d for d in self._descriptors.values() if d.serves(kind))

    def describe(self) -> List[Dict[str, Any]]:
        """JSON-ready capability cards plus each backend's coefficients."""
        cards = []
        for desc in self.descriptors():
            card = desc.describe()
            coef = self.cost_model.coefficients.get(desc.name)
            card["cost_coefficients"] = coef.as_dict() if coef else None
            cards.append(card)
        return cards

    # ------------------------------------------------------------------
    def validate_combination(self, kind: str, backend: str) -> None:
        """Reject unknown names and unsupported kind/backend combos.

        Dataset-independent (no metric check) so
        :class:`~repro.engine.spec.QuerySpec` can call it at
        construction time.  ``auto`` always passes.
        """
        if backend == "auto":
            return
        with self._lock:
            desc = self._descriptors.get(backend)
        if desc is None:
            raise ValidationError(
                f"unknown backend {backend!r}; expected 'auto' or one of "
                f"{', '.join(self.names()) or '(none registered)'}"
            )
        if not desc.serves(kind):
            serving = [d.name for d in self.serving(kind)]
            raise ValidationError(
                f"backend {backend!r} does not serve {kind!r} queries; "
                f"backends serving {kind!r}: {', '.join(serving) or '(none)'}"
            )

    # ------------------------------------------------------------------
    def resolve(
        self, spec: "QuerySpec", tps: "TemporalPointSet"
    ) -> BackendResolution:
        """Pick the backend that will execute ``spec`` on ``tps``.

        See the module docstring for the policy.  Raises
        :class:`~repro.errors.ValidationError` on every illegal
        combination, always naming the backends that would work.
        """
        kind = spec.kind
        metric = tps.metric
        features = QueryFeatures.of(tps, spec)
        explicit: Optional[BackendDescriptor] = None
        if spec.backend != "auto":
            self.validate_combination(kind, spec.backend)
            explicit = self.get(spec.backend)

        # Exactness forcing: exact=True, or an explicitly named exact
        # backend, commits to the exact solver (historically exact=True
        # overrode even an explicit spatial backend name).
        if spec.exact is True or (explicit is not None and explicit.exact):
            target = explicit if explicit is not None and explicit.exact else None
            if target is None:
                exacts = [d for d in self.serving(kind) if d.exact]
                if not exacts:
                    raise ValidationError(
                        f"no registered exact backend serves {kind!r} queries"
                    )
                target = exacts[0]
            if not target.supports_metric(metric):
                raise ValidationError(
                    f"the exact backend {target.name!r} requires "
                    f"{target.metric_requirement}, got {metric.name!r}; use "
                    "backend='auto' (or exact=False) for approximate "
                    "reporting under this metric"
                )
            return BackendResolution(
                descriptor=target,
                costs={target.name: self.cost_model.estimate(target.name, features)},
                reason="exact reporting requested",
            )

        if explicit is not None:
            if not explicit.supports_metric(metric):
                usable = [
                    d.name
                    for d in self.serving(kind)
                    if d.supports_metric(metric)
                ]
                hint = (
                    f"; backends supporting it: {', '.join(usable)}"
                    if usable
                    else ""
                )
                raise ValidationError(
                    f"backend {explicit.name!r} requires "
                    f"{explicit.metric_requirement}, got {metric.name!r}{hint}"
                )
            return BackendResolution(
                descriptor=explicit,
                costs={
                    explicit.name: self.cost_model.estimate(explicit.name, features)
                },
                reason="explicitly requested",
            )

        # auto: capability filter, then exact preference, then cost.
        candidates = [
            d
            for d in self.serving(kind)
            if d.supports_metric(metric) and not (spec.exact is False and d.exact)
        ]
        if not candidates:
            raise ValidationError(
                f"no registered backend serves {kind!r} queries under the "
                f"{metric.name!r} metric"
            )
        costs = {
            d.name: self.cost_model.estimate(d.name, features) for d in candidates
        }
        exacts = [d for d in candidates if d.exact]
        if exacts:
            return BackendResolution(
                descriptor=exacts[0],
                costs=costs,
                reason="exact backend eligible (no ε-extras beats speed)",
            )
        chosen = min(candidates, key=lambda d: costs[d.name])  # stable: ties
        return BackendResolution(                              # keep registration order
            descriptor=chosen,
            costs=costs,
            reason=(
                f"cheapest by cost model for shape (n={features.n}, "
                f"dim={features.dim}, metric={features.metric}, "
                f"taus={features.n_taus})"
            ),
        )


# ----------------------------------------------------------------------
_DEFAULT: Optional[BackendRegistry] = None
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> BackendRegistry:
    """The process-wide registry, with the built-in backends installed.

    Created lazily on first use (importing :mod:`repro` never pays for
    registration).  Custom backends register here to become visible to
    spec validation, the planner, the CLI and the serving layer alike.
    """
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                registry = BackendRegistry()
                from .builtin import register_builtin_backends

                register_builtin_backends(registry)
                _DEFAULT = registry
    return _DEFAULT
