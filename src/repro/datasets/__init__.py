"""Synthetic workload generators (points, lifespans, named workloads)."""

from .synthetic import clustered_points, grid_points, manifold_points, uniform_points
from .temporal_gen import (
    career_lifespans,
    heavy_tail_lifespans,
    session_lifespans,
    uniform_lifespans,
)
from .workloads import (
    benchmark_workload,
    coauthorship_workload,
    social_forum_workload,
    workload_from_spec,
)

__all__ = [
    "clustered_points",
    "grid_points",
    "manifold_points",
    "uniform_points",
    "career_lifespans",
    "heavy_tail_lifespans",
    "session_lifespans",
    "uniform_lifespans",
    "benchmark_workload",
    "coauthorship_workload",
    "social_forum_workload",
    "workload_from_spec",
]
