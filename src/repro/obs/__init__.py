"""Observability core shared by the serving tiers, benches and CI.

``repro.obs.metrics`` defines the instruments and the registry each
front end owns; ``repro.obs.expofmt`` reads scrapes back (the router's
worker re-export, the benches' before/after diffs, the conformance
test).  See ``docs/metrics.md`` for the reference of every exported
metric family.
"""

from .metrics import (
    CONTENT_TYPE,
    DEFAULT_LATENCY_BUCKETS,
    CallbackMetric,
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    escape_label_value,
    format_value,
    render_families,
)
from .expofmt import (
    ExpositionError,
    HistogramSnapshot,
    counter_value,
    gauge_value,
    histogram_snapshot,
    merge,
    parse_exposition,
    relabel,
    render_merged,
)

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "CallbackMetric",
    "Counter",
    "Family",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "escape_label_value",
    "format_value",
    "render_families",
    "ExpositionError",
    "HistogramSnapshot",
    "counter_value",
    "gauge_value",
    "histogram_snapshot",
    "merge",
    "parse_exposition",
    "relabel",
    "render_merged",
]
