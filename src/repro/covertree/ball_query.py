"""Cover-tree canonical-ball decomposition and reporting query (Appendix A).

:class:`CoverTreeDecomposition` exposes the net hierarchy through the
:class:`~repro.structures.decomposition.SpatialDecomposition` interface:
the bottom-level nets are the canonical groups, and
:meth:`candidate_groups` runs the Appendix A descent — at each level
keep the nodes ``v`` with ``φ(q, Rep_v) ≤ R + e_v`` (``e_v`` = subtree
cover bound), then filter the bottom level by its own radius bound.

The descent visits ``O(ε^{-O(ρ)})`` nodes per level and ``O(log Δ)``
levels for spread ``Δ`` (Lemma A.3).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ValidationError
from ..geometry.metrics import Metric, MetricSpec, get_metric
from ..structures.decomposition import (
    GEOMETRY_SLACK,
    CanonicalGroup,
    SpatialDecomposition,
)
from .build import NetHierarchy, build_hierarchy

__all__ = ["CoverTreeDecomposition"]


class CoverTreeDecomposition(SpatialDecomposition):
    """Canonical balls from a greedy net hierarchy (Appendix A).

    Parameters
    ----------
    points:
        ``(n, d)`` coordinate array.
    metric:
        Metric specification.
    resolution:
        Maximum canonical-ball radius.  The durable-pattern indexes pass
        ``ε/4`` here, matching the ``diameter ≤ ε/2`` canonical balls of
        ``durableBallQ(p, τ, ε/2)`` in Algorithm 1.
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: MetricSpec,
        resolution: float,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or len(pts) == 0:
            raise ValidationError("points must be a non-empty (n, d) array")
        self.points = pts
        self.metric: Metric = get_metric(metric)
        self.resolution = float(resolution)
        self.hierarchy: NetHierarchy = build_hierarchy(pts, self.metric, self.resolution)

        bottom = self.hierarchy.bottom
        self.groups: List[CanonicalGroup] = []
        self._group_by_rep = {}
        for rep_id in bottom.rep_ids:
            g = CanonicalGroup(
                index=len(self.groups),
                rep=pts[rep_id],
                radius_bound=bottom.radius,
                member_ids=sorted(bottom.children.get(rep_id, [])),
            )
            self.groups.append(g)
            self._group_by_rep[rep_id] = g.index
        self.group_of = np.empty(len(pts), dtype=np.int64)
        for pid, rep in self.hierarchy.assign_bottom.items():
            self.group_of[pid] = self._group_by_rep[rep]

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        return len(self.hierarchy.levels)

    def candidate_groups(self, point: np.ndarray, radius: float) -> List[int]:
        """Descend the hierarchy, pruning nodes that cannot reach ``B(point, radius)``.

        A node ``v`` at level ``ℓ`` covers its subtree within
        ``e_v = 2^{ℓ+1}``, so it is kept iff
        ``φ(point, Rep_v) ≤ radius + e_v (+ slack)``.  The surviving
        bottom nodes are filtered with their tight one-hop bound.
        """
        point = np.asarray(point, dtype=float)
        levels = self.hierarchy.levels
        frontier = levels[-1].rep_ids
        # Walk from the top level down to (but not through) the bottom.
        for depth in range(len(levels) - 1, 0, -1):
            lvl = levels[depth]
            if frontier:
                reps = self.points[frontier]
                d = self.metric.dists(reps, point)
                keep = d <= radius + lvl.cover_bound + GEOMETRY_SLACK
                survivors = [frontier[i] for i in np.nonzero(keep)[0]]
            else:
                survivors = []
            nxt: List[int] = []
            for rep in survivors:
                nxt.extend(lvl.children.get(rep, ()))
            frontier = nxt
        bottom = levels[0]
        if not frontier:
            return []
        reps = self.points[frontier]
        d = self.metric.dists(reps, point)
        keep = d <= radius + bottom.radius + GEOMETRY_SLACK
        return [self._group_by_rep[frontier[i]] for i in np.nonzero(keep)[0]]
