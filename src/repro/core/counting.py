"""Counting durable triangles without enumerating them.

The paper's conclusion lists near-linear *counting* as future work:
"we believe that some of our algorithms and data structures can also be
used for counting durable patterns in near-linear time (instead of
reporting them)".  The canonical-run representation makes this
immediate: for an anchor ``p`` with canonical subsets of sizes
``c_1 … c_k``, the triangles Algorithm 1 would report number

    Σ_j C(c_j, 2)  +  Σ_{i<j linked} c_i · c_j

and the run counts are available in ``O(polylog n)`` per subset without
touching a single member.  The total time is ``Õ(n · ε^{-O(ρ)})`` —
*independent of the output size*, unlike reporting.

The count equals ``len(index.query(tau))`` exactly (it counts the same
ε-approximate family, so it lies in ``[|T_τ|, |T^ε_τ|]``).  The same
trick applied to the ``Λ``/``Λ̄`` split counts incremental deltas.
"""

from __future__ import annotations


from ..errors import ValidationError
from ..structures.durable_ball import DurableBallStructure
from ..types import TemporalPointSet

__all__ = [
    "count_triangles_for_anchor",
    "count_durable_triangles",
    "count_delta_for_anchor",
]


def count_triangles_for_anchor(
    structure: DurableBallStructure, anchor: int, tau: float
) -> int:
    """Triangles anchored at one point, counted from run sizes alone."""
    if structure.tps.duration(anchor) < tau:
        return 0
    subsets = structure.query(anchor, tau)
    counts = [s.count for s in subsets]
    total = sum(c * (c - 1) // 2 for c in counts)
    for i in range(len(subsets)):
        if not counts[i]:
            continue
        for j in range(i + 1, len(subsets)):
            if counts[j] and structure.linked(subsets[i].group, subsets[j].group):
                total += counts[i] * counts[j]
    return total


def count_delta_for_anchor(
    structure: DurableBallStructure, anchor: int, tau: float, tau_prec: float
) -> int:
    """Incremental delta size (Algorithm 2's output) from run counts."""
    tps = structure.tps
    if tps.duration(anchor) < tau:
        return 0
    if tps.duration(anchor) < tau_prec:
        return count_triangles_for_anchor(structure, anchor, tau)
    subsets = structure.query_split(anchor, tau, tau_prec)
    lam = [s.lam.count for s in subsets]
    bar = [s.lam_bar.count for s in subsets]
    total = 0
    for j in range(len(subsets)):
        total += lam[j] * (lam[j] - 1) // 2 + lam[j] * bar[j]
    for i in range(len(subsets)):
        for j in range(i + 1, len(subsets)):
            cross = lam[i] * lam[j] + lam[i] * bar[j] + bar[i] * lam[j]
            if cross and structure.linked(subsets[i].group, subsets[j].group):
                total += cross
    return total


def count_durable_triangles(
    tps: TemporalPointSet,
    tau: float,
    epsilon: float = 0.5,
    backend: str = "auto",
    structure: DurableBallStructure = None,
) -> int:
    """Count the ε-approximate durable-triangle family in ``Õ(n·ε^{-O(ρ)})``.

    The result lies in ``[|T_τ|, |T^ε_τ|]`` and matches
    ``len(DurableTriangleIndex(tps, epsilon).query(tau))`` exactly.
    Pass a prebuilt ``structure`` to reuse an index's decomposition.
    """
    if tau <= 0:
        raise ValidationError(f"durability parameter must be positive, got {tau!r}")
    if structure is None:
        if not 0 < epsilon <= 1:
            raise ValidationError(f"epsilon must lie in (0, 1], got {epsilon!r}")
        structure = DurableBallStructure(tps, epsilon / 4.0, backend)
    total = 0
    for p in range(tps.n):
        total += count_triangles_for_anchor(structure, p, tau)
    return total
