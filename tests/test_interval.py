"""Unit and property tests for Interval primitives (Section 1.1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import EMPTY_INTERVAL, Interval, ValidationError, intersect_many, union_length


def finite_floats(lo=-1e6, hi=1e6):
    return st.floats(min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False)


def intervals(lo=-1e3, hi=1e3):
    return st.tuples(finite_floats(lo, hi), finite_floats(lo, hi)).map(
        lambda t: Interval(min(t), max(t))
    )


class TestBasics:
    def test_length_positive(self):
        assert Interval(1.0, 4.0).length == 3.0

    def test_length_degenerate(self):
        assert Interval(2.0, 2.0).length == 0.0

    def test_empty_interval_has_zero_length(self):
        assert EMPTY_INTERVAL.length == 0.0
        assert EMPTY_INTERVAL.is_empty

    def test_checked_rejects_inverted(self):
        with pytest.raises(ValidationError):
            Interval.checked(3.0, 1.0)

    def test_checked_accepts_degenerate(self):
        assert Interval.checked(3.0, 3.0) == Interval(3.0, 3.0)

    def test_contains_point_boundaries(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains_point(1.0)
        assert iv.contains_point(2.0)
        assert not iv.contains_point(2.0000001)

    def test_contains_interval(self):
        assert Interval(0.0, 10.0).contains(Interval(2.0, 3.0))
        assert not Interval(0.0, 10.0).contains(Interval(2.0, 13.0))
        assert Interval(0.0, 1.0).contains(EMPTY_INTERVAL)

    def test_overlaps_touching(self):
        assert Interval(0.0, 1.0).overlaps(Interval(1.0, 2.0))
        assert not Interval(0.0, 1.0).overlaps(Interval(1.5, 2.0))

    def test_shift(self):
        assert Interval(1.0, 2.0).shift(3.0) == Interval(4.0, 5.0)

    def test_clip(self):
        assert Interval(0.0, 10.0).clip(2.0, 4.0) == Interval(2.0, 4.0)
        assert Interval(0.0, 1.0).clip(2.0, 4.0).is_empty

    def test_iter_unpacks(self):
        lo, hi = Interval(1.0, 2.0)
        assert (lo, hi) == (1.0, 2.0)


class TestIntersection:
    def test_basic(self):
        assert Interval(0, 5).intersect(Interval(3, 8)) == Interval(3, 5)

    def test_disjoint_is_empty(self):
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty

    def test_touching_is_degenerate(self):
        got = Interval(0, 2).intersect(Interval(2, 5))
        assert got == Interval(2, 2)
        assert got.length == 0.0

    def test_with_empty_absorbs(self):
        assert Interval(0, 1).intersect(EMPTY_INTERVAL).is_empty

    def test_intersection_length_matches(self):
        a, b = Interval(0, 5), Interval(3, 8)
        assert a.intersection_length(b) == a.intersect(b).length

    @given(intervals(), intervals())
    def test_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(), intervals())
    def test_length_never_exceeds_either(self, a, b):
        ln = a.intersection_length(b)
        assert ln <= a.length + 1e-9
        assert ln <= b.length + 1e-9
        assert ln >= 0.0


class TestIntersectMany:
    def test_triangle_lifespan(self):
        got = intersect_many([Interval(0, 10), Interval(2, 8), Interval(4, 12)])
        assert got == Interval(4, 8)

    def test_empty_family(self):
        assert intersect_many([]).is_empty

    def test_disjoint_family(self):
        assert intersect_many([Interval(0, 1), Interval(5, 6)]).is_empty

    @given(st.lists(intervals(), min_size=1, max_size=6))
    def test_contained_in_all(self, ivs):
        got = intersect_many(ivs)
        if not got.is_empty:
            for iv in ivs:
                assert iv.contains(got)

    @given(st.lists(intervals(), min_size=2, max_size=6))
    def test_order_invariant(self, ivs):
        assert intersect_many(ivs) == intersect_many(list(reversed(ivs)))


class TestUnionLength:
    def test_disjoint(self):
        assert union_length([Interval(0, 1), Interval(3, 5)]) == 3.0

    def test_nested(self):
        assert union_length([Interval(0, 10), Interval(2, 3)]) == 10.0

    def test_chain(self):
        assert union_length([Interval(0, 2), Interval(1, 3), Interval(3, 4)]) == 4.0

    def test_empty_members_ignored(self):
        assert union_length([EMPTY_INTERVAL, Interval(0, 1)]) == 1.0

    @given(st.lists(intervals(0, 100), max_size=8))
    def test_bounded_by_sum(self, ivs):
        total = union_length(ivs)
        assert total <= sum(iv.length for iv in ivs) + 1e-6
        if ivs:
            assert total >= max(iv.length for iv in ivs) - 1e-9

    @given(st.lists(intervals(0, 100), max_size=8))
    def test_matches_measure_sweep(self, ivs):
        # Cross-check against a direct sweep-line measure.
        events = sorted(
            [(iv.start, 1) for iv in ivs if iv.length > 0]
            + [(iv.end, -1) for iv in ivs if iv.length > 0]
        )
        depth = 0
        prev = None
        measured = 0.0
        for t, d in events:
            if depth > 0 and prev is not None:
                measured += t - prev
            depth += d
            prev = t
        assert math.isclose(union_length(ivs), measured, abs_tol=1e-6)
