#!/usr/bin/env python3
"""Quickstart: durable triangles in a temporal proximity graph.

Builds a small random temporal point set, runs the ε-approximate
DurableTriangle index (Section 3 of the paper), and cross-checks the
result against the brute-force ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DurableTriangleIndex, TemporalPointSet
from repro.baselines import triangle_bounds


def main() -> None:
    rng = np.random.default_rng(42)
    n = 300

    # Points embedded in the plane; two points are "connected" when
    # within distance 1 (the implicit proximity graph).
    points = rng.uniform(0.0, 6.0, size=(n, 2))

    # Each point is alive on one time interval.
    starts = rng.uniform(0.0, 50.0, size=n)
    ends = starts + rng.uniform(1.0, 25.0, size=n)

    tps = TemporalPointSet(points, starts, ends, metric="l2")
    print(f"input: {tps}")

    epsilon, tau = 0.5, 8.0
    index = DurableTriangleIndex(tps, epsilon=epsilon)
    print(f"index: {index.stats()}")

    triangles = index.query(tau)
    print(f"\nτ = {tau}: {len(triangles)} durable triangles reported")
    for record in sorted(triangles, key=lambda r: -r.durability)[:5]:
        print(
            f"  ({record.anchor:>3}, {record.q:>3}, {record.s:>3})"
            f"  alive together on [{record.lifespan.start:6.2f}, "
            f"{record.lifespan.end:6.2f}]  durability {record.durability:5.2f}"
        )

    # Theorem 3.1's guarantee: everything exact is found, nothing beyond
    # the (1+ε)-relaxation is reported.
    must, may = triangle_bounds(tps, tau, epsilon)
    got = {r.key for r in triangles}
    assert must <= got <= may
    print(
        f"\nsandwich check: |T_τ| = {len(must)} ≤ reported = {len(got)}"
        f" ≤ |T^ε_τ| = {len(may)}  ✓"
    )


if __name__ == "__main__":
    main()
