"""E14 — density sweep: where the implicit representation wins.

Section 1.2's core argument: the explicit edge set can be quadratic in
``n``, so any materialisation-based method pays ``Ω(m)`` before looking
at durability.  Sweeping the expected unit-ball degree at fixed ``n``
shows the crossover: ours scales with ``n + OUT`` (τ fixed, selective),
the explicit lister with ``m^{3/2}``-ish static-triangle volume.
"""

import pytest

from repro import DurableTriangleIndex
from repro.baselines import explicit_graph_triangles
from repro.datasets import benchmark_workload

N = 700
TAU = 16.0  # selective: few durable triangles at any density


def _tps(density):
    return benchmark_workload(N, density=density, seed=1)


@pytest.mark.parametrize("density", [5, 20, 80])
def test_ours_density(benchmark, density):
    tps = _tps(density)
    idx = DurableTriangleIndex(tps, epsilon=0.5)
    result = benchmark.pedantic(idx.query, args=(TAU,), rounds=3, iterations=1)
    benchmark.extra_info["density"] = density
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E14 density sweep: ours (n=700, selective tau)"


@pytest.mark.parametrize("density", [5, 20, 80])
def test_explicit_density(benchmark, density):
    tps = _tps(density)
    result = benchmark.pedantic(
        explicit_graph_triangles, args=(tps, TAU), rounds=3, iterations=1
    )
    benchmark.extra_info["density"] = density
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E14 density sweep: explicit graph (n=700, selective tau)"
