"""Composite result records produced by DSL combinator patterns.

A primitive-rooted pattern returns the legacy record types untouched
(:class:`~repro.types.TriangleRecord`, :class:`~repro.types.PairRecord`,
:class:`~repro.types.PatternRecord`) — so a legacy kind expressed in the
DSL is record-for-record identical to the native kind.  Combinator
roots wrap their component matches in :class:`ComposedRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from ..temporal.interval import Interval

__all__ = ["ComposedRecord"]


@dataclass(frozen=True)
class ComposedRecord:
    """One match of a ``seq`` / ``all`` combinator.

    ``components`` holds the matched sub-records in pattern order —
    legacy record objects for primitive parts, nested
    :class:`ComposedRecord` instances for nested combinators.
    ``lifespan`` is the combinator's composite interval: the span hull
    for ``seq``, the joint intersection for ``all``.
    """

    template: str
    components: Tuple[Any, ...]
    lifespan: Interval

    @property
    def durability(self) -> float:
        """``|lifespan|`` of the composite match."""
        return self.lifespan.length

    @property
    def members(self) -> Tuple[int, ...]:
        """Sorted union of all component member ids."""
        out = set()
        for component in self.components:
            if isinstance(component, ComposedRecord):
                out.update(component.members)
            elif hasattr(component, "ids"):
                out.update(component.ids)
            elif hasattr(component, "members"):
                out.update(component.members)
            else:  # PairRecord
                out.update((component.p, component.q))
        return tuple(sorted(out))

    @property
    def key(self) -> Tuple[Any, ...]:
        """Canonical identity for set comparisons (ordered components)."""
        return (self.template, tuple(c.key for c in self.components))
