"""Named end-to-end workloads used by the examples and benchmarks.

Each returns a ready :class:`~repro.types.TemporalPointSet` modelling
one of the paper's motivating applications (Examples 1.1 and 1.2), plus
a generic benchmark workload with tunable density.
"""

from __future__ import annotations

import inspect
from typing import Any, Mapping, Optional

from ..errors import ValidationError
from ..types import TemporalPointSet
from .synthetic import clustered_points, manifold_points, uniform_points
from .temporal_gen import career_lifespans, session_lifespans, uniform_lifespans

__all__ = [
    "social_forum_workload",
    "coauthorship_workload",
    "benchmark_workload",
    "workload_from_spec",
]


def social_forum_workload(
    n: int = 500,
    n_communities: int = 10,
    seed: Optional[int] = 0,
    metric: str = "l2",
) -> TemporalPointSet:
    """Example 1.1: users embedded by profile similarity, with daily
    session lifespans.  Durable triangles/cliques are groups of similar
    users simultaneously active for a long stretch."""
    pts = clustered_points(
        n, dim=2, n_clusters=n_communities, box=8.0, cluster_std=0.4, seed=seed
    )
    starts, ends = session_lifespans(n, seed=seed)
    return TemporalPointSet(pts, starts, ends, metric=metric)


def coauthorship_workload(
    n: int = 400,
    intrinsic_dim: int = 2,
    ambient_dim: int = 6,
    seed: Optional[int] = 0,
    metric: str = "l2",
) -> TemporalPointSet:
    """Example 1.2: researchers on a low-dimensional topic manifold in a
    higher-dimensional embedding space, with career-length lifespans.
    Aggregate-durable pairs are coauthors with sustained shared
    collaborators."""
    pts = manifold_points(
        n, intrinsic_dim=intrinsic_dim, ambient_dim=ambient_dim, extent=7.0, seed=seed
    )
    starts, ends = career_lifespans(n, seed=seed)
    return TemporalPointSet(pts, starts, ends, metric=metric)


def benchmark_workload(
    n: int,
    dim: int = 2,
    density: float = 12.0,
    horizon: float = 60.0,
    max_len: float = 20.0,
    seed: Optional[int] = 0,
    metric: str = "l2",
) -> TemporalPointSet:
    """Uniform workload with ~``density`` expected unit-ball neighbours.

    The box side is chosen so the expected number of points within unit
    distance of a point stays constant as ``n`` grows — keeping OUT
    roughly linear in ``n``, the regime where near-linear total time is
    the predicted shape (experiment E1).
    """
    import numpy as np

    # Solve box^dim * density = n * unit_ball_volume (l2 ball).
    from math import gamma, pi

    ball_vol = pi ** (dim / 2) / gamma(dim / 2 + 1)
    box = (n * ball_vol / density) ** (1.0 / dim)
    pts = uniform_points(n, dim=dim, box=max(box, 1.0), seed=seed)
    starts, ends = uniform_lifespans(
        n, horizon=horizon, min_len=1.0, max_len=max_len, seed=seed
    )
    return TemporalPointSet(pts, starts, ends, metric=metric)


#: Named workloads resolvable from a declarative dataset spec
#: (``uniform`` is an alias kept for CLI compatibility).
_NAMED_WORKLOADS = {
    "uniform": benchmark_workload,
    "benchmark": benchmark_workload,
    "social": social_forum_workload,
    "coauthor": coauthorship_workload,
}


def workload_from_spec(spec: Mapping[str, Any]) -> TemporalPointSet:
    """Materialise a dataset from a declarative spec (batch files, CLI).

    Recognised keys:

    * ``csv`` — path to ``x1..xd,start,end`` rows; every other key but
      ``metric`` is rejected;
    * ``workload`` — one of ``uniform``/``benchmark``/``social``/
      ``coauthor`` (default ``uniform``), plus any keyword the chosen
      generator accepts (``n``, ``seed``, ``density``, …);
    * ``metric`` — metric name passed through (default ``l2``).
    """
    if not isinstance(spec, Mapping):
        raise ValidationError(f"dataset spec must be a mapping, got {spec!r}")
    params = dict(spec)
    metric = params.pop("metric", "l2")
    csv = params.pop("csv", None)
    if csv is not None:
        if params:
            raise ValidationError(
                f"csv datasets accept only 'metric', got extra keys {sorted(params)}"
            )
        import numpy as np

        rows = np.loadtxt(csv, delimiter=",", ndmin=2)
        if rows.shape[1] < 3:
            raise ValidationError("CSV needs at least x,start,end columns")
        return TemporalPointSet(
            rows[:, :-2], rows[:, -2], rows[:, -1], metric=metric
        )
    name = params.pop("workload", "uniform")
    fn = _NAMED_WORKLOADS.get(name)
    if fn is None:
        raise ValidationError(
            f"unknown workload {name!r}; expected one of "
            f"{sorted(set(_NAMED_WORKLOADS))} (or a 'csv' path)"
        )
    params.setdefault("n", 400)
    allowed = set(inspect.signature(fn).parameters)
    unknown = set(params) - allowed
    if unknown:
        raise ValidationError(
            f"workload {name!r} does not accept {sorted(unknown)}; "
            f"valid keys: {sorted(allowed)}"
        )
    return fn(metric=metric, **params)
