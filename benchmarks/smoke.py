#!/usr/bin/env python3
"""CI benchmark smoke: a small engine-backed batch, timed and archived.

Runs a mixed durable-pattern batch (triangle τ-sweep, SUM/UNION pairs,
cliques) over the n≈200 benchmark workload through the shared-index
:class:`repro.engine.QueryEngine`, and writes ``BENCH_smoke.json`` with
per-query wall times, result counts and cache statistics.  CI uploads
the file as an artifact on every push so the perf trajectory of the
serving path accumulates run over run.

Usage::

    python benchmarks/smoke.py [--n 200] [--out BENCH_smoke.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro import QueryEngine, QuerySpec
from repro.datasets import benchmark_workload

SPECS = [
    {"kind": "triangles", "taus": [4.0, 8.0, 12.0], "label": "tri-sweep"},
    {"kind": "triangles", "tau": 8.0, "epsilon": 0.25, "label": "tri-tight"},
    {"kind": "pairs-sum", "tau": 8.0, "label": "sum"},
    {"kind": "pairs-sum", "tau": 8.0, "sum_backend": "tree", "label": "sum-tree"},
    {"kind": "pairs-union", "tau": 8.0, "kappa": 3, "label": "union"},
    {"kind": "cliques", "tau": 6.0, "m": 3, "label": "triads"},
    {"kind": "stars", "tau": 6.0, "m": 3, "label": "stars"},
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=200, help="workload size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_smoke.json")
    args = parser.parse_args(argv)

    tps = benchmark_workload(args.n, seed=args.seed)
    engine = QueryEngine()
    specs = [QuerySpec.from_dict(s) for s in SPECS]

    t0 = time.perf_counter()
    batch = engine.run_batch(tps, specs)
    wall = time.perf_counter() - t0
    if not batch.ok:
        # run_batch isolates faults per query; the smoke must still fail
        # CI loudly when any of them broke.
        for r in batch:
            if not r.ok:
                print(f"FAIL {r.spec.label}: {r.error}", file=sys.stderr)
        return 1

    payload = {
        "bench": "smoke",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workload": {"n": tps.n, "dim": tps.dim, "metric": tps.metric.name,
                     "seed": args.seed, "fingerprint": tps.fingerprint()},
        "wall_seconds": wall,
        "distinct_indexes": batch.distinct_indexes,
        "cache": batch.cache_stats,
        "queries": [
            {
                "label": r.spec.label,
                "kind": r.spec.kind,
                "taus": list(r.spec.taus),
                "count": r.count,
                "cache_hit": r.cache_hit,
                "build_seconds": r.build_seconds,
                "query_seconds": r.query_seconds,
            }
            for r in batch
        ],
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)

    for q in payload["queries"]:
        source = "cache" if q["cache_hit"] else f"build {q['build_seconds'] * 1e3:6.1f} ms"
        print(
            f"{q['label']:10s} {q['kind']:12s} -> {q['count']:5d} records "
            f"({source}, query {q['query_seconds'] * 1e3:6.1f} ms)"
        )
    print(
        f"smoke: {len(payload['queries'])} queries, "
        f"{payload['distinct_indexes']} indexes built, {wall * 1e3:.1f} ms "
        f"-> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
