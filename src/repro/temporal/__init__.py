"""Temporal substrates: intervals, lifespans, and the index structures
built over them (Sections 1.1, 2.1, 2.2, 5)."""

from .interval import EMPTY_INTERVAL, Interval, intersect_many, union_length
from .interval_set import IntervalSet
from .interval_tree import IntervalTree
from .dominance import DominanceIndex, Run, RunSet
from .sum_index import AnnotatedIntervalTree, CoverageProfile
from .max_overlap import MaxOverlapIndex, OverlapCandidate

__all__ = [
    "EMPTY_INTERVAL",
    "Interval",
    "intersect_many",
    "union_length",
    "IntervalSet",
    "IntervalTree",
    "DominanceIndex",
    "Run",
    "RunSet",
    "AnnotatedIntervalTree",
    "CoverageProfile",
    "MaxOverlapIndex",
    "OverlapCandidate",
]
