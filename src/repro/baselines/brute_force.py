"""Brute-force ground truth for durable triangles.

The naive comparator of Section 1.2: materialise adjacency and check all
triples.  Vectorised with numpy over each anchor's neighbourhood so the
tests and benchmarks can use it at moderate ``n``; asymptotically it is
the ``O(n + Σ deg²)`` node-iterator, which on dense proximity graphs
degrades to the ``O(n³)`` bound the paper contrasts against.

Also provides :func:`triangle_bounds`, which classifies the exact set
``T_τ`` and the relaxed set ``T^ε_τ`` so property tests can assert the
paper's sandwich guarantee ``T_τ ⊆ reported ⊆ T^ε_τ``.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from ..errors import ValidationError
from ..temporal.interval import Interval
from ..types import TemporalPointSet, TriangleRecord

__all__ = [
    "adjacency_matrix",
    "brute_force_triangles",
    "triangle_bounds",
    "brute_force_triangle_keys",
]


def adjacency_matrix(tps: TemporalPointSet, threshold: float = 1.0) -> np.ndarray:
    """Boolean adjacency of the proximity graph ``G_φ(P, threshold)``."""
    n = tps.n
    adj = np.zeros((n, n), dtype=bool)
    for i in range(n):
        d = tps.metric.dists(tps.points, tps.points[i])
        adj[i] = d <= threshold
    np.fill_diagonal(adj, False)
    return adj


def _anchor_order(tps: TemporalPointSet) -> np.ndarray:
    """Anchor precedence: lexicographic ``(I⁻, id)`` (DESIGN.md note 1)."""
    return np.lexsort((np.arange(tps.n), tps.starts))


def brute_force_triangles(
    tps: TemporalPointSet, tau: float, threshold: float = 1.0
) -> List[TriangleRecord]:
    """The exact result set ``T_τ`` with anchor-first records.

    A triple is τ-durable when all three pairwise distances are at most
    ``threshold`` and ``|I_p ∩ I_q ∩ I_s| ≥ τ``.
    """
    if tau <= 0:
        raise ValidationError(f"durability parameter must be positive, got {tau!r}")
    adj = adjacency_matrix(tps, threshold)
    starts, ends = tps.starts, tps.ends
    out: List[TriangleRecord] = []
    order = _anchor_order(tps)
    rank = np.empty(tps.n, dtype=np.int64)
    rank[order] = np.arange(tps.n)
    for p in range(tps.n):
        if ends[p] - starts[p] < tau:
            continue
        # Partners must precede p in the anchor order and share enough
        # lifespan after p's start.
        nbrs = np.nonzero(
            adj[p]
            & (rank < rank[p])
            & (ends >= starts[p] + tau)
        )[0]
        if len(nbrs) < 2:
            continue
        sub = adj[np.ix_(nbrs, nbrs)]
        for a_pos, b_pos in zip(*np.nonzero(np.triu(sub, k=1))):
            a, b = int(nbrs[a_pos]), int(nbrs[b_pos])
            end = min(ends[p], ends[a], ends[b])
            if end - starts[p] >= tau:
                q, s = (a, b) if a < b else (b, a)
                out.append(
                    TriangleRecord(
                        anchor=p, q=q, s=s,
                        lifespan=Interval(float(starts[p]), float(end)),
                    )
                )
    return out


def brute_force_triangle_keys(
    tps: TemporalPointSet, tau: float, threshold: float = 1.0
) -> Set[Tuple[int, int, int]]:
    """Canonical (sorted id) keys of ``T_τ``."""
    return {t.key for t in brute_force_triangles(tps, tau, threshold)}


def triangle_bounds(
    tps: TemporalPointSet, tau: float, epsilon: float, slack: float = 1e-6
) -> Tuple[Set[Tuple[int, int, int]], Set[Tuple[int, int, int]]]:
    """The sandwich bounds of Theorem 3.1.

    Returns ``(must, may)``: the exact keys ``T_τ`` and the relaxed keys
    ``T^ε_τ`` computed at threshold ``1 + ε (+ slack)`` so boundary
    rounding inside the index can never produce a false test failure.
    """
    must = brute_force_triangle_keys(tps, tau, threshold=1.0)
    may = brute_force_triangle_keys(tps, tau, threshold=1.0 + epsilon + slack)
    return must, may
