"""Tests for metric resolution and distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MetricError
from repro.geometry import (
    ChebyshevMetric,
    EuclideanMetric,
    FunctionMetric,
    LpMetric,
    ManhattanMetric,
    get_metric,
)


class TestResolution:
    def test_default_is_l2(self):
        assert isinstance(get_metric("l2"), EuclideanMetric)

    def test_names(self):
        assert isinstance(get_metric("l1"), ManhattanMetric)
        assert isinstance(get_metric("linf"), ChebyshevMetric)
        assert isinstance(get_metric("chebyshev"), ChebyshevMetric)
        assert isinstance(get_metric("euclidean"), EuclideanMetric)

    def test_lp_string(self):
        m = get_metric("l3")
        assert isinstance(m, LpMetric) and m.alpha == 3.0

    def test_lp_tuple(self):
        m = get_metric(("lp", 1.5))
        assert isinstance(m, LpMetric) and m.alpha == 1.5

    def test_instance_passthrough(self):
        m = EuclideanMetric()
        assert get_metric(m) is m

    def test_callable(self):
        m = get_metric(lambda x, y: float(np.abs(x - y).sum()))
        assert isinstance(m, FunctionMetric)
        assert m.dist(np.array([0.0, 0.0]), np.array([1.0, 2.0])) == 3.0

    def test_unknown_name(self):
        with pytest.raises(MetricError):
            get_metric("cosine")

    def test_alpha_below_one_rejected(self):
        with pytest.raises(MetricError):
            LpMetric(0.5)


class TestDistances:
    def test_l2(self):
        m = EuclideanMetric()
        assert m.dist(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_l1(self):
        m = ManhattanMetric()
        assert m.dist(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 7.0

    def test_linf(self):
        m = ChebyshevMetric()
        assert m.dist(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 4.0

    def test_lp_general(self):
        m = LpMetric(3.0)
        got = m.dist(np.array([0.0]), np.array([2.0]))
        assert abs(got - 2.0) < 1e-12

    @pytest.mark.parametrize("name", ["l1", "l2", "linf", "l3"])
    def test_vectorised_matches_scalar(self, name):
        m = get_metric(name)
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(30, 4))
        y = rng.normal(size=4)
        vec = m.dists(pts, y)
        for i in range(len(pts)):
            assert abs(vec[i] - m.dist(pts[i], y)) < 1e-12

    def test_dists_on_single_row(self):
        m = EuclideanMetric()
        got = m.dists(np.array([1.0, 1.0]), np.array([1.0, 2.0]))
        assert got.shape == (1,) and abs(got[0] - 1.0) < 1e-12

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_triangle_inequality_lp(self, seed):
        rng = np.random.default_rng(seed)
        x, y, z = rng.normal(size=(3, 3))
        for alpha in (1.0, 1.5, 2.0, 4.0):
            m = LpMetric(alpha)
            assert m.dist(x, z) <= m.dist(x, y) + m.dist(y, z) + 1e-9

    def test_cell_side_bounds_diameter(self):
        rng = np.random.default_rng(1)
        for name in ("l1", "l2", "linf", "l3"):
            m = get_metric(name)
            side = m.cell_side_for_diameter(0.5, 3)
            # two corners of a side-`side` cube in R^3
            a = np.zeros(3)
            b = np.full(3, side)
            assert m.dist(a, b) <= 0.5 + 1e-12

    def test_function_metric_no_grid(self):
        m = FunctionMetric(lambda x, y: 0.0)
        with pytest.raises(MetricError):
            m.cell_side_for_diameter(1.0, 2)
