"""Vectorised query-family indexes for the ``vector`` backend.

Each class subclasses its legacy counterpart — same constructor shape,
same ``cache_key()`` family (with ``backend="vector"``), same public
query surface — but replaces the hot paths with batched numpy kernels
over the shared :class:`~repro.backends.vector.soa.SoALayout`:

* Candidate generation (:func:`_candidate_pairs`) searches the *sorted
  integer lattice* of occupied cells: per anchor, the cells whose key
  lies in a ``±reach`` window are contiguous ``np.searchsorted`` ranges
  of the mixed-radix cell codes, so no anchors×cells distance matrix is
  ever materialised; the window superset is refined by one batched
  rowwise center-distance pass.  (A blocked dense matrix remains as the
  fallback when the window enumeration would be wider than the cell
  count.)
* :class:`VectorTriangleIndex` — partner expansion through the CSR cell
  layout, one boolean mask for the temporal/lexicographic predicate,
  ragged ``i<j`` pair generation batched across *all* anchors, and one
  rowwise linked-ball test per pair chunk.  Record construction is the
  only per-output loop.
* :class:`VectorSumPairIndex` — Algorithm 4 with both the partner and
  the witness dimension collapsed: witness pools are one batched
  cell-linkage pass, and every ``Σ_u |I_u ∩ I_p ∩ I_q|`` evaluation in
  the sweep becomes a row of one grouped coverage-profile batch
  (:class:`VecProfile`, float-identical to
  :class:`~repro.temporal.sum_index.CoverageProfile`).
* :class:`VectorUnionPairIndex` — Algorithm 8 with batched candidate
  generation and witness pools; the greedy max-κ-coverage itself stays
  sequential per reported partner (its heap is inherently iterative).
* :class:`VectorPatternIndex` — the Appendix D reporters over batched
  per-(τ, radius) anchor contexts and a vectorised link table.

Record sets are identical to the legacy ``grid`` backend's for every
family (the canonical cells coincide), which the three-way hypothesis
parity harness in ``tests/test_backends.py`` asserts.

All four implement ``maintained()`` — the layout recompute over the
merged set is vectorised and produces the canonical cell order a fresh
build yields, so maintained indexes are *identical* to fresh ones;
per-cell derived structures (profiles, overlap indexes) are carried
over for cells the append did not touch (:func:`transfer_cell_cache`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ...core.aggregate import SumPairIndex, UnionPairIndex
from ...core.patterns import PatternIndex
from ...core.triangles import DurableTriangleIndex
from ...errors import BackendError, ValidationError
from ...structures.decomposition import GEOMETRY_SLACK
from ...temporal.interval import Interval
from ...temporal.max_overlap import MaxOverlapIndex
from ...types import PairRecord, TemporalPointSet, TriangleRecord
from .soa import (
    BLOCK_ELEMS,
    SoALayout,
    pairwise_dists,
    ragged_arange,
    rowwise_dists,
)
from .structure import VectorBallStructure

__all__ = [
    "VectorTriangleIndex",
    "VectorSumPairIndex",
    "VectorUnionPairIndex",
    "VectorPatternIndex",
    "VecProfile",
    "transfer_cell_cache",
]


def _check_epsilon(epsilon: float) -> float:
    if not 0 < epsilon <= 1:
        raise ValidationError(f"epsilon must lie in (0, 1], got {epsilon!r}")
    return float(epsilon)


def _eligible_anchor_array(lay: SoALayout, tau: float) -> np.ndarray:
    return np.nonzero(lay.ends - lay.starts >= tau)[0]


def _link_threshold(resolution: float) -> float:
    """``linked()``'s unit-threshold cutoff, same float association as
    the legacy ``threshold + a.radius_bound + b.radius_bound + slack``."""
    return ((1.0 + resolution) + resolution) + GEOMETRY_SLACK


# ----------------------------------------------------------------------
# Candidate generation
# ----------------------------------------------------------------------
def _lattice_windows(
    lay: SoALayout, anchors: np.ndarray, thr: float
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Superset of candidate ``(anchor, cell)`` pairs via key windows.

    Occupied cells sort lexicographically by key, i.e. ascending in
    their mixed-radix code, so for a fixed combination of offsets on the
    leading ``dim−1`` key coordinates the in-window cells are one
    contiguous code range — two ``searchsorted`` calls for *all*
    anchors at once.  Returns ``None`` when the window enumeration
    would not beat the dense distance matrix (wide reach, high dim, or
    a code space that would overflow int64).
    """
    keys = lay.cell_keys
    dim = lay.dim
    reach = int(np.floor(thr / lay.side)) + 1
    kmin = keys.min(axis=0)
    sizes = keys.max(axis=0) - kmin + 1
    m_combos = (2 * reach + 1) ** (dim - 1)
    if m_combos >= max(lay.n_cells, 2):
        return None
    if int(np.prod([int(s) for s in sizes])) > 2**62:
        return None
    strides = np.ones(dim, dtype=np.int64)
    for i in range(dim - 2, -1, -1):
        strides[i] = strides[i + 1] * sizes[i + 1]
    codes = ((keys - kmin) * strides).sum(axis=1)
    ka = np.floor(lay.points[anchors] / lay.side).astype(np.int64) - kmin
    offs = np.arange(-reach, reach + 1, dtype=np.int64)
    if dim > 1:
        grids = np.meshgrid(*([offs] * (dim - 1)), indexing="ij")
        combos = np.stack([g.ravel() for g in grids], axis=1)
    else:
        combos = np.zeros((1, 0), dtype=np.int64)
    digits = ka[:, None, : dim - 1] + combos[None, :, :]
    valid = ((digits >= 0) & (digits < sizes[: dim - 1])).all(axis=2)
    base = (digits * strides[: dim - 1]).sum(axis=2)
    last_lo = np.maximum(ka[:, dim - 1] - reach, 0)
    last_hi = np.minimum(ka[:, dim - 1] + reach, sizes[dim - 1] - 1)
    va, vm = np.nonzero(valid)
    clo = base[va, vm] + last_lo[va]
    chi = base[va, vm] + last_hi[va] + 1
    lo = np.searchsorted(codes, clo)
    counts = np.searchsorted(codes, chi) - lo
    ci = ragged_arange(lo, counts)
    ai = np.repeat(va, counts)
    return ai, ci


def _candidate_pairs(
    lay: SoALayout, metric, anchors: np.ndarray, radius: float, resolution: float
) -> Tuple[np.ndarray, np.ndarray]:
    """All ``(anchor index, cell index)`` pairs passing the candidate
    test (center within ``radius + resolution + slack``), ascending in
    ``(anchor, cell)`` — the legacy ``candidate_groups`` sweep for a
    whole anchor batch."""
    empty = np.empty(0, dtype=np.int64)
    if not len(anchors) or not lay.n_cells:
        return empty, empty
    thr = radius + resolution + GEOMETRY_SLACK
    lattice = _lattice_windows(lay, anchors, thr)
    if lattice is None:
        parts_a: List[np.ndarray] = []
        parts_c: List[np.ndarray] = []
        block = max(1, BLOCK_ELEMS // lay.n_cells)
        for lo in range(0, len(anchors), block):
            d = pairwise_dists(metric, lay.points[anchors[lo : lo + block]], lay.centers)
            bai, bci = np.nonzero(d <= thr)
            parts_a.append(bai + lo)
            parts_c.append(bci)
        return np.concatenate(parts_a), np.concatenate(parts_c)
    ai, ci = lattice
    if not len(ai):
        return empty, empty
    keep = rowwise_dists(metric, lay.centers[ci], lay.points[anchors[ai]]) <= thr
    return ai[keep], ci[keep]


def _anchor_chunks(
    lay: SoALayout, ai: np.ndarray, ci: np.ndarray, cap: int = 4 * BLOCK_ELEMS
) -> Iterator[Tuple[int, int]]:
    """Split the candidate-pair arrays into chunks of bounded expansion.

    Yields ``(e0, e1)`` ranges whose summed cell populations stay near
    ``cap``; chunk boundaries never split one anchor's entries, so the
    per-anchor run/segment logic downstream stays intact.
    """
    if not len(ai):
        return
    weights = lay.counts[ci]
    cum = np.cumsum(weights)
    if int(cum[-1]) <= cap:
        yield 0, len(ai)
        return
    e0 = 0
    while e0 < len(ai):
        t = int(np.searchsorted(cum, (cum[e0 - 1] if e0 else 0) + cap))
        t = min(max(t, e0), len(ai) - 1)
        t = int(np.searchsorted(ai, ai[t], side="right"))
        t = max(t, e0 + 1)
        yield e0, t
        e0 = t


def _expand_partners(
    lay: SoALayout, anchors: np.ndarray, ai: np.ndarray, ci: np.ndarray, tau: float
):
    """Every ``durableBallQ`` partner for a candidate-pair chunk.

    Expands the ``(ai, ci)`` pairs through the CSR cell layout and
    applies the τ-stab + anchor-precedence predicate in one mask.
    Returns ``(P, Q, run_start, run_m, run_src)`` — per-pair
    anchor/partner ids plus the contiguous runs of equal ``(anchor,
    cell)`` with ``run_src`` indexing back into ``ai``/``ci``; partners
    inside a run are in ``(end desc, id asc)`` order (the legacy
    ``iter_desc_by_end`` order) — or ``None`` when nothing qualifies.
    """
    if not len(ai):
        return None
    cnt = lay.counts[ci]
    pos = ragged_arange(lay.offsets[ci], cnt)
    q = lay.order_end[pos]
    p = np.repeat(anchors[ai], cnt)
    keep = (lay.ends[q] >= lay.starts[p] + tau) & (
        (lay.starts[q] < lay.starts[p]) | ((lay.starts[q] == lay.starts[p]) & (q < p))
    )
    if not keep.any():
        return None
    src = np.repeat(np.arange(len(ai)), cnt)[keep]
    p, q = p[keep], q[keep]
    bounds = np.concatenate(([0], np.flatnonzero(np.diff(src)) + 1, [len(src)]))
    run_start = bounds[:-1]
    run_m = np.diff(bounds)
    return p, q, run_start, run_m, src[run_start]


def _witness_pools(
    lay: SoALayout,
    metric,
    ai: np.ndarray,
    ci: np.ndarray,
    run_src: np.ndarray,
    link_thr: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Witness cells per run, batched: ``{gi ∈ cand(p) : linked(gi, j)}``.

    One ragged expansion of each run's full candidate-cell segment and
    one rowwise center-distance pass.  Returns ``(wit_run, wit_cell,
    wit_counts)`` with pools in ascending cell order per run — the
    legacy witness sweep order.
    """
    n_runs = len(run_src)
    a_bounds = np.concatenate(([0], np.flatnonzero(np.diff(ai)) + 1, [len(ai)]))
    seg = np.searchsorted(a_bounds, run_src, side="right") - 1
    wlen = a_bounds[seg + 1] - a_bounds[seg]
    wpos = ragged_arange(a_bounds[seg], wlen)
    wrun = np.repeat(np.arange(n_runs), wlen)
    wcell = ci[wpos]
    dd = rowwise_dists(
        metric, lay.centers[ci[run_src][wrun]], lay.centers[wcell]
    )
    wm = dd <= link_thr
    wit_run, wit_cell = wrun[wm], wcell[wm]
    return wit_run, wit_cell, np.bincount(wit_run, minlength=n_runs)


def transfer_cell_cache(
    old_lay: SoALayout, new_lay: SoALayout, n_old: int, cache: Dict[int, object]
) -> Dict[int, object]:
    """Re-key per-cell derived structures across an append.

    A cell's structure stays valid iff the append put no point into it;
    cells are identified by their absolute integer key (cell indexes
    shift when the append creates cells that sort earlier).
    """
    if not cache:
        return {}
    changed = set(np.unique(new_lay.cell_of[n_old:]).tolist())
    new_index = {tuple(key): gi for gi, key in enumerate(new_lay.cell_keys.tolist())}
    out: Dict[int, object] = {}
    for gi_old, value in cache.items():
        gi_new = new_index.get(tuple(old_lay.cell_keys[gi_old].tolist()))
        if gi_new is not None and gi_new not in changed:
            out[gi_new] = value
    return out


# ----------------------------------------------------------------------
# Triangles
# ----------------------------------------------------------------------
class VectorTriangleIndex(DurableTriangleIndex):
    """Algorithm 1 over SoA kernels (record-identical to ``grid``)."""

    def __init__(
        self, tps: TemporalPointSet, epsilon: float = 0.5, backend: str = "vector"
    ) -> None:
        self.tps = tps
        self.epsilon = _check_epsilon(epsilon)
        self.backend = "vector"
        self.structure = VectorBallStructure(tps, self.epsilon / 4.0)

    def maintained(self, tps: TemporalPointSet) -> "VectorTriangleIndex":
        clone = object.__new__(type(self))
        clone.tps = tps
        clone.epsilon = self.epsilon
        clone.backend = self.backend
        clone.structure = self.structure.extended(tps)
        return clone

    # ------------------------------------------------------------------
    def query(self, tau: float) -> List[TriangleRecord]:
        self._check_tau(tau)
        st = self.structure
        lay = st.layout
        metric = self.tps.metric
        starts, ends, cell_of, centers = lay.starts, lay.ends, lay.cell_of, lay.centers
        res = st.resolution
        link_thr = _link_threshold(res)
        out: List[TriangleRecord] = []
        eligible = _eligible_anchor_array(lay, tau)
        if not len(eligible):
            return out
        cai, cci = _candidate_pairs(lay, metric, eligible, 1.0, res)
        for e0, e1 in _anchor_chunks(lay, cai, cci):
            expanded = _expand_partners(lay, eligible, cai[e0:e1], cci[e0:e1], tau)
            if expanded is None:
                continue
            p, q = expanded[0], expanded[1]
            # One anchor's partners span several (anchor, cell) runs but
            # are contiguous; pair them i<j within each anchor segment,
            # batched across ALL anchors via ragged indexing.
            seg_bounds = np.concatenate(
                ([0], np.flatnonzero(np.diff(p)) + 1, [len(p)])
            )
            lens = np.diff(seg_bounds)
            after = (
                np.repeat(lens, lens)
                - 1
                - (np.arange(len(p)) - np.repeat(seg_bounds[:-1], lens))
            )
            cum = np.cumsum(after)
            e = 0
            while e < len(p):
                # Chunk the pair expansion so iu/ju stay bounded.
                t = int(
                    np.searchsorted(cum, (cum[e - 1] if e else 0) + BLOCK_ELEMS)
                ) + 1
                t = min(max(t, e + 1), len(p))
                elems = np.arange(e, t)
                cc = after[e:t]
                e = t
                # For element i with cc[i] later same-segment elements,
                # pair it with each of them: iu repeats i, ju counts up.
                iu = np.repeat(elems, cc)
                if not len(iu):
                    continue
                ju = ragged_arange(elems + 1, cc)
                a_ids, b_ids, anchors_pq = q[iu], q[ju], p[iu]
                # Linked-ball test on cell centers (same-cell pairs have
                # distance zero and always pass).
                dd = rowwise_dists(
                    metric, centers[cell_of[a_ids]], centers[cell_of[b_ids]]
                )
                ok = dd <= link_thr
                a_ids, b_ids, anchors_pq = a_ids[ok], b_ids[ok], anchors_pq[ok]
                if not len(a_ids):
                    continue
                e3 = np.minimum(
                    ends[anchors_pq], np.minimum(ends[a_ids], ends[b_ids])
                )
                sa = starts[anchors_pq]
                qm = np.minimum(a_ids, b_ids)
                sm = np.maximum(a_ids, b_ids)
                out.extend(
                    TriangleRecord(
                        anchor=int(a), q=int(x), s=int(y),
                        lifespan=Interval(float(s0), float(ee)),
                    )
                    for a, x, y, s0, ee in zip(anchors_pq, qm, sm, sa, e3)
                )
        return out


# ----------------------------------------------------------------------
# Coverage profiles over arrays
# ----------------------------------------------------------------------
class VecProfile:
    """Array form of :class:`~repro.temporal.sum_index.CoverageProfile`.

    Construction and evaluation replicate the legacy arithmetic term by
    term (sorted endpoint events, sequential ``np.cumsum`` integration,
    ``searchsorted`` interpolation), so every returned float is
    bit-identical to the legacy profile's — asserted by the SUM-pair
    parity tests.
    """

    __slots__ = ("times", "integral", "slopes", "n")

    def __init__(self, starts: np.ndarray, ends: np.ndarray) -> None:
        k = len(starts)
        self.n = k
        if k == 0:
            self.times = np.empty(0)
            self.integral = np.zeros(1)
            self.slopes = np.empty(0)
            return
        events = np.concatenate((starts, ends))
        deltas = np.concatenate(
            (np.ones(k, dtype=np.int64), -np.ones(k, dtype=np.int64))
        )
        order = np.lexsort((deltas, events))  # time asc, -1 before +1 on ties
        ts = events[order]
        new = np.flatnonzero(np.diff(ts) > 0)
        self.times = np.concatenate(([ts[0]], ts[new + 1]))
        cover = np.cumsum(deltas[order])
        self.slopes = cover[new].astype(np.float64)
        self.integral = np.concatenate(
            ([0.0], np.cumsum(self.slopes * np.diff(self.times)))
        )

    def values(self, ts: np.ndarray) -> np.ndarray:
        """``F(t)`` for a batch of query times."""
        times = self.times
        if len(times) < 2:
            return np.zeros(np.shape(ts))
        idx = np.searchsorted(times, ts, side="right") - 1
        safe = np.clip(idx, 0, len(times) - 2)
        out = self.integral[safe] + self.slopes[safe] * (ts - times[safe])
        out = np.where(ts <= times[0], 0.0, out)
        return np.where(ts >= times[-1], self.integral[-1], out)

    def interval_sums(self, a: float, bs: np.ndarray) -> np.ndarray:
        """``Σ_I |I ∩ [a, b]|`` for a batch of right endpoints ``b``."""
        if self.n == 0:
            return np.zeros(np.shape(bs))
        va = self.values(np.asarray([a]))[0]
        return np.where(bs <= a, 0.0, self.values(bs) - va)

    def sum_intersections(self, a: float, b: float) -> float:
        """Scalar form, matching ``CoverageProfile.sum_intersections``."""
        if b <= a or self.n == 0:
            return 0.0
        vs = self.values(np.asarray([a, b]))
        return float(vs[1] - vs[0])


class LazyProfiles:
    """``cell index -> VecProfile``, built on first use per cell."""

    __slots__ = ("layout", "cache")

    def __init__(self, layout: SoALayout) -> None:
        self.layout = layout
        self.cache: Dict[int, VecProfile] = {}

    def __getitem__(self, gi: int) -> VecProfile:
        prof = self.cache.get(gi)
        if prof is None:
            members = self.layout.cell_members(gi)
            prof = VecProfile(
                self.layout.starts[members], self.layout.ends[members]
            )
            self.cache[gi] = prof
        return prof


class LazyOverlaps:
    """``cell index -> MaxOverlapIndex``, built on first witness use."""

    __slots__ = ("layout", "cache")

    def __init__(self, layout: SoALayout) -> None:
        self.layout = layout
        self.cache: Dict[int, MaxOverlapIndex] = {}

    def __getitem__(self, gi: int) -> MaxOverlapIndex:
        idx = self.cache.get(gi)
        if idx is None:
            members = self.layout.cell_members(gi)
            idx = MaxOverlapIndex(
                self.layout.starts[members].tolist(),
                self.layout.ends[members].tolist(),
                members.tolist(),
            )
            self.cache[gi] = idx
        return idx


# ----------------------------------------------------------------------
# SUM pairs
# ----------------------------------------------------------------------
class VectorSumPairIndex(SumPairIndex):
    """Algorithm 4 with batched partner *and* witness scoring.

    ``sum_backend`` is accepted for cache-identity symmetry with the
    legacy class; both values compute through the coverage-profile
    arrays (the two legacy structures are output-identical by design,
    so the records are too).
    """

    def __init__(
        self,
        tps: TemporalPointSet,
        epsilon: float = 0.5,
        backend: str = "vector",
        sum_backend: str = "profile",
    ) -> None:
        if sum_backend not in ("profile", "tree"):
            raise BackendError(f"unknown sum backend {sum_backend!r}")
        self.tps = tps
        self.epsilon = _check_epsilon(epsilon)
        self.backend = "vector"
        self.sum_backend = sum_backend
        self.structure = VectorBallStructure(tps, self.epsilon / 4.0)
        self._sums = LazyProfiles(self.structure.layout)

    def maintained(self, tps: TemporalPointSet) -> "VectorSumPairIndex":
        clone = object.__new__(type(self))
        clone.tps = tps
        clone.epsilon = self.epsilon
        clone.backend = self.backend
        clone.sum_backend = self.sum_backend
        clone.structure = self.structure.extended(tps)
        clone._sums = LazyProfiles(clone.structure.layout)
        clone._sums.cache.update(
            transfer_cell_cache(
                self.structure.layout,
                clone.structure.layout,
                self.tps.n,
                self._sums.cache,
            )
        )
        return clone

    # ------------------------------------------------------------------
    def query(self, tau: float) -> List[PairRecord]:
        self._check_params(tau)
        st = self.structure
        lay = st.layout
        metric = self.tps.metric
        res = st.resolution
        link_thr = _link_threshold(res)
        out: List[PairRecord] = []
        eligible = _eligible_anchor_array(lay, tau)
        if not len(eligible):
            return out
        cai, cci = _candidate_pairs(lay, metric, eligible, 1.0, res)
        for e0, e1 in _anchor_chunks(lay, cai, cci):
            ai, ci = cai[e0:e1], cci[e0:e1]
            expanded = _expand_partners(lay, eligible, ai, ci, tau)
            if expanded is None:
                continue
            pp, qq, run_start, run_m, run_src = expanded
            n_pairs = len(pp)
            sp_pair = lay.starts[pp]
            his = np.minimum(lay.ends[pp], lay.ends[qq])
            window = his - sp_pair
            run_cell = ci[run_src]
            wit_run, wit_cell, wit_counts = _witness_pools(
                lay, metric, ai, ci, run_src, link_thr
            )
            # Expand to one evaluation request per (witness cell, pair),
            # then batch all requests touching one cell into a single
            # profile sweep.  ``np.bincount`` accumulates sequentially
            # in input order; sorting requests by cell keeps each pair's
            # contributions in ascending-cell order — exactly the legacy
            # scalar accumulation, so scores stay float-identical.
            total = np.zeros(n_pairs)
            if len(wit_run):
                req_m = run_m[wit_run]
                val_pair = ragged_arange(run_start[wit_run], req_m)
                val_gi = np.repeat(wit_cell, req_m)
                order = np.argsort(val_gi, kind="stable")
                vp, vg = val_pair[order], val_gi[order]
                contrib = np.empty(len(vp))
                cell_bounds = np.concatenate(
                    ([0], np.flatnonzero(np.diff(vg)) + 1, [len(vg)])
                )
                for b0, b1 in zip(cell_bounds[:-1], cell_bounds[1:]):
                    prof = self._sums[int(vg[b0])]
                    sel = vp[b0:b1]
                    contrib[b0:b1] = prof.values(his[sel]) - prof.values(
                        sp_pair[sel]
                    )
                total = np.bincount(vp, weights=contrib, minlength=n_pairs)
            # Discount the self-contributions of q (always counted) and
            # of p when its own cell is in the witness pool.
            total = total - window
            p_counted = (
                rowwise_dists(
                    metric,
                    lay.centers[run_cell],
                    lay.centers[lay.cell_of[eligible[ai[run_src]]]],
                )
                <= link_thr
            )
            total = np.where(np.repeat(p_counted, run_m), total - window, total)
            # Partners are in shrinking-window order within a run: the
            # first failing partner ends the run (Algorithm 4's break).
            pos = np.arange(n_pairs)
            first_fail = np.minimum.reduceat(
                np.where(total < tau, pos, n_pairs), run_start
            )
            keep = np.nonzero(pos < np.repeat(first_fail, run_m))[0]
            out.extend(
                PairRecord(p=int(pp[i]), q=int(qq[i]), score=float(total[i]))
                for i in keep
            )
        return out


# ----------------------------------------------------------------------
# UNION pairs
# ----------------------------------------------------------------------
class VectorUnionPairIndex(UnionPairIndex):
    """Algorithm 8 over array candidate generation + lazy ``IT∪``."""

    def __init__(
        self, tps: TemporalPointSet, epsilon: float = 0.5, backend: str = "vector"
    ) -> None:
        self.tps = tps
        self.epsilon = _check_epsilon(epsilon)
        self.backend = "vector"
        self.structure = VectorBallStructure(tps, self.epsilon / 4.0)
        self._overlaps = LazyOverlaps(self.structure.layout)

    def maintained(self, tps: TemporalPointSet) -> "VectorUnionPairIndex":
        clone = object.__new__(type(self))
        clone.tps = tps
        clone.epsilon = self.epsilon
        clone.backend = self.backend
        clone.structure = self.structure.extended(tps)
        clone._overlaps = LazyOverlaps(clone.structure.layout)
        clone._overlaps.cache.update(
            transfer_cell_cache(
                self.structure.layout,
                clone.structure.layout,
                self.tps.n,
                self._overlaps.cache,
            )
        )
        return clone

    # ------------------------------------------------------------------
    def query(self, tau: float, kappa: int) -> List[PairRecord]:
        self._check_params(tau)
        if not (isinstance(kappa, (int, np.integer)) and kappa >= 1):
            raise ValidationError(f"kappa must be a positive integer, got {kappa!r}")
        st = self.structure
        lay = st.layout
        metric = self.tps.metric
        res = st.resolution
        link_thr = _link_threshold(res)
        target = self.GREEDY_FACTOR * tau
        out: List[PairRecord] = []
        eligible = _eligible_anchor_array(lay, tau)
        if not len(eligible):
            return out
        cai, cci = _candidate_pairs(lay, metric, eligible, 1.0, res)
        for e0, e1 in _anchor_chunks(lay, cai, cci):
            ai, ci = cai[e0:e1], cci[e0:e1]
            expanded = _expand_partners(lay, eligible, ai, ci, tau)
            if expanded is None:
                continue
            pp, qq, run_start, run_m, run_src = expanded
            his = np.minimum(lay.ends[pp], lay.ends[qq])
            _, wit_cell, wit_counts = _witness_pools(
                lay, metric, ai, ci, run_src, link_thr
            )
            wit_offsets = np.concatenate(([0], np.cumsum(wit_counts)))
            # Candidate generation and witness pools are batched; the
            # greedy max-κ-coverage itself stays sequential per reported
            # partner (its heap is inherently iterative), with the
            # legacy early break.
            for g in range(len(run_start)):
                witnesses = wit_cell[wit_offsets[g] : wit_offsets[g + 1]].tolist()
                if not witnesses:
                    continue
                p = int(pp[run_start[g]])
                sp = float(lay.starts[p])
                for i in range(run_start[g], run_start[g] + run_m[g]):
                    covered = self.greedy_union(
                        sp, float(his[i]), witnesses, kappa,
                        exclude=(p, int(qq[i])),
                    )
                    if covered >= target:
                        out.append(PairRecord(p=p, q=int(qq[i]), score=covered))
                    else:
                        break
        return out


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------
class VectorPatternIndex(PatternIndex):
    """Appendix D reporters over the array-backed ball structure.

    The enumeration recursions are inherited (they are output-bound);
    the win is the build — no per-ball dominance trees — plus batched
    anchor contexts: one ``durableBallQ`` sweep per ``(τ, radius)``
    serves every anchor, and the link table is one small distance
    matrix instead of O(k²) scalar ``linked()`` calls.
    """

    def __init__(
        self, tps: TemporalPointSet, epsilon: float = 0.5, backend: str = "vector"
    ) -> None:
        self.tps = tps
        self.epsilon = _check_epsilon(epsilon)
        self.backend = "vector"
        self.structure = VectorBallStructure(tps, self.epsilon / 4.0)
        self._contexts: Dict[Tuple[float, float], Dict[int, tuple]] = {}

    def maintained(self, tps: TemporalPointSet) -> "VectorPatternIndex":
        clone = object.__new__(type(self))
        clone.tps = tps
        clone.epsilon = self.epsilon
        clone.backend = self.backend
        clone.structure = self.structure.extended(tps)
        clone._contexts = {}
        return clone

    # ------------------------------------------------------------------
    def _context_map(self, tau: float, radius: float) -> Dict[int, tuple]:
        ctx = self._contexts.get((tau, radius))
        if ctx is not None:
            return ctx
        ctx = {}
        st = self.structure
        lay = st.layout
        eligible = _eligible_anchor_array(lay, tau)
        if len(eligible):
            cai, cci = _candidate_pairs(
                lay, self.tps.metric, eligible, radius, st.resolution
            )
            for e0, e1 in _anchor_chunks(lay, cai, cci):
                ai, ci = cai[e0:e1], cci[e0:e1]
                expanded = _expand_partners(lay, eligible, ai, ci, tau)
                if expanded is None:
                    continue
                _, qq, run_start, run_m, run_src = expanded
                run_row = ai[run_src]
                rb = np.concatenate(
                    ([0], np.flatnonzero(np.diff(run_row)) + 1, [len(run_row)])
                )
                for g0, g1 in zip(rb[:-1], rb[1:]):
                    p = int(eligible[run_row[g0]])
                    q0 = run_start[g0]
                    q1 = run_start[g1 - 1] + run_m[g1 - 1]
                    ctx[p] = (ci[run_src[g0:g1]], run_m[g0:g1], qq[q0:q1])
        self._contexts[(tau, radius)] = ctx
        return ctx

    def _anchor_context(self, anchor, tau, radius):
        entry = self._context_map(float(tau), float(radius)).get(int(anchor))
        groups_all = self.structure.groups
        own = groups_all[self.structure.group_index_of(anchor)]
        if entry is None:
            return [], {int(anchor): 0}, [own]
        cells, counts, qids = entry
        groups = [groups_all[int(c)] for c in cells]
        candidates = qids.tolist()
        ball_of = dict(
            zip(candidates, np.repeat(np.arange(len(cells)), counts).tolist())
        )
        ball_of[int(anchor)] = len(groups)
        groups.append(own)
        return candidates, ball_of, groups

    def _link_table(self, groups):
        # All groups are grid cells: one small distance matrix replaces
        # O(k²) scalar linked() calls, with the legacy float association
        # ((1 + r_a) + r_b) + slack.
        k = len(groups)
        reps = np.stack([np.asarray(g.rep, dtype=np.float64) for g in groups])
        rb = np.fromiter((g.radius_bound for g in groups), dtype=np.float64, count=k)
        d = pairwise_dists(self.tps.metric, reps, reps)
        table = d <= (((1.0 + rb[:, None]) + rb[None, :]) + GEOMETRY_SLACK)
        np.fill_diagonal(table, True)
        return table
