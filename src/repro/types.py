"""Core value types: temporal point sets and pattern records.

:class:`TemporalPointSet` is the library's representation of the paper's
input ``(P, φ, I)`` (Section 1.1): points embedded in ``R^d``, a metric,
and one lifespan interval per point.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .errors import ValidationError
from .geometry.metrics import MetricSpec, get_metric
from .temporal.interval import Interval, intersect_many

__all__ = ["TemporalPointSet", "TriangleRecord", "PairRecord", "PatternRecord"]


class TemporalPointSet:
    """The paper's input ``(P, φ, I)``: embedded points with lifespans.

    Parameters
    ----------
    points:
        ``(n, d)`` array of embedding coordinates.
    starts, ends:
        Lifespan endpoints ``I⁻_p`` / ``I⁺_p`` per point (``ends ≥ starts``).
    metric:
        Metric specification (name, ``("lp", α)`` tuple, :class:`Metric`
        instance, or callable); defaults to ``ℓ2``.

    The proximity graph ``G_φ(P)`` connects two points at metric distance
    at most ``1`` — as in the paper we normalise the distance threshold
    ``r`` to 1; rescale coordinates by ``1/r`` to use other thresholds.

    A point set is a *version* of a dataset: ``epoch`` counts how many
    event batches have been appended since the seed registration
    (``epoch=0``).  :meth:`with_events` produces the next version; the
    arrays of any one version stay immutable, so every epoch has a
    stable :meth:`fingerprint` and cached indexes keyed on an older
    epoch remain internally consistent.
    """

    __slots__ = (
        "points", "starts", "ends", "metric", "epoch",
        "_start_keys", "_fingerprint",
    )

    def __init__(
        self,
        points: Union[np.ndarray, Sequence[Sequence[float]]],
        starts: Union[np.ndarray, Sequence[float]],
        ends: Union[np.ndarray, Sequence[float]],
        metric: MetricSpec = "l2",
        epoch: int = 0,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[:, None]
        if pts.ndim != 2:
            raise ValidationError("points must be an (n, d) array")
        if len(pts) == 0 or pts.shape[1] == 0:
            raise ValidationError("the point set must be non-empty")
        s = np.asarray(starts, dtype=float).ravel()
        e = np.asarray(ends, dtype=float).ravel()
        if len(s) != len(pts) or len(e) != len(pts):
            raise ValidationError(
                f"lifespan arrays ({len(s)}, {len(e)}) do not match point count ({len(pts)})"
            )
        if np.any(e < s):
            bad = int(np.argmax(e < s))
            raise ValidationError(
                f"point {bad} has lifespan end ({e[bad]!r}) before start ({s[bad]!r})"
            )
        if not (np.all(np.isfinite(pts)) and np.all(np.isfinite(s)) and np.all(np.isfinite(e))):
            raise ValidationError("points and lifespans must be finite")
        if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
            raise ValidationError(f"epoch must be a non-negative int, got {epoch!r}")
        self.points = pts
        self.starts = s
        self.ends = e
        self.metric = get_metric(metric)
        self.epoch = epoch
        self._start_keys: Optional[List[Tuple[float, int]]] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of points."""
        return len(self.points)

    @property
    def dim(self) -> int:
        """Ambient dimension ``d``."""
        return self.points.shape[1]

    def __len__(self) -> int:
        return len(self.points)

    def lifespan(self, i: int) -> Interval:
        """Lifespan ``I_p`` of point ``i``."""
        return Interval(float(self.starts[i]), float(self.ends[i]))

    def duration(self, i: int) -> float:
        """``|I_p|`` of point ``i``."""
        return float(self.ends[i] - self.starts[i])

    def dist(self, i: int, j: int) -> float:
        """Metric distance between points ``i`` and ``j``."""
        return self.metric.dist(self.points[i], self.points[j])

    def anchor_key(self, i: int) -> Tuple[float, int]:
        """The tie-broken anchor ordering key ``(I⁻, id)``.

        The paper anchors patterns at the member whose lifespan starts
        latest; we break start ties by point id (DESIGN.md note 1).
        """
        return (float(self.starts[i]), int(i))

    def pattern_lifespan(self, members: Iterable[int]) -> Interval:
        """``I(p_1, …, p_m) = ∩ I_{p_i}`` for a candidate pattern."""
        return intersect_many(self.lifespan(i) for i in members)

    def fingerprint(self) -> str:
        """Epoch-bearing content hash identifying this dataset version.

        Hashes the coordinate and lifespan arrays plus the metric's
        :meth:`~repro.geometry.metrics.Metric.cache_token`, so two point
        sets with equal contents and metric share every cached index.
        For appended versions (``epoch > 0``) the epoch is folded into
        the hash, making every version of a mutable dataset a distinct
        cache identity; an epoch-0 fingerprint is byte-identical to the
        pre-versioning content hash.  Computed once and memoised (the
        arrays of one version are treated as immutable, as everywhere
        else in the library).
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(str(self.points.shape).encode())
            h.update(np.ascontiguousarray(self.points).tobytes())
            h.update(np.ascontiguousarray(self.starts).tobytes())
            h.update(np.ascontiguousarray(self.ends).tobytes())
            h.update(self.metric.cache_token().encode())
            if self.epoch:
                h.update(b"|epoch:%d" % self.epoch)
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def with_events(
        self,
        points: Union[np.ndarray, Sequence[Sequence[float]]],
        starts: Union[np.ndarray, Sequence[float]],
        ends: Union[np.ndarray, Sequence[float]],
    ) -> "TemporalPointSet":
        """The next version of this dataset: current points plus a batch.

        Appended points keep arrival order and take ids ``n, n+1, …`` —
        the merged arrays are exactly what registering the union from
        scratch would hold, so indexes built over the result answer
        queries identically to a fresh registration.  The new version
        carries ``epoch + 1``; this instance is untouched.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[:, None]
        if pts.ndim != 2 or len(pts) == 0:
            raise ValidationError("event batch must be a non-empty (k, d) array")
        if pts.shape[1] != self.dim:
            raise ValidationError(
                f"event batch dimension ({pts.shape[1]}) does not match "
                f"the dataset ({self.dim})"
            )
        s = np.asarray(starts, dtype=float).ravel()
        e = np.asarray(ends, dtype=float).ravel()
        if len(s) != len(pts) or len(e) != len(pts):
            raise ValidationError(
                f"event lifespan arrays ({len(s)}, {len(e)}) do not match "
                f"batch size ({len(pts)})"
            )
        return TemporalPointSet(
            np.concatenate([self.points, pts]),
            np.concatenate([self.starts, s]),
            np.concatenate([self.ends, e]),
            self.metric,
            epoch=self.epoch + 1,
        )

    def subset(self, ids: Sequence[int]) -> "TemporalPointSet":
        """A new point set restricted to ``ids`` (ids are re-numbered)."""
        ids = list(ids)
        return TemporalPointSet(
            self.points[ids], self.starts[ids], self.ends[ids], self.metric
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        epoch = f", epoch={self.epoch}" if self.epoch else ""
        return (
            f"TemporalPointSet(n={self.n}, dim={self.dim}, "
            f"metric={self.metric.name!r}{epoch})"
        )


@dataclass(frozen=True, slots=True)
class TriangleRecord:
    """A reported durable triangle ``(p, q, s)`` with its lifespan.

    ``anchor`` is the member with the lexicographically largest
    ``(I⁻, id)``; ``q < s`` by point id, matching the de-duplication
    order enforced by ``ReportTriangle`` (Algorithm 1).
    """

    anchor: int
    q: int
    s: int
    lifespan: Interval

    @property
    def durability(self) -> float:
        """``|I(p, q, s)|``."""
        return self.lifespan.length

    @property
    def ids(self) -> Tuple[int, int, int]:
        """Members as ``(anchor, q, s)``."""
        return (self.anchor, self.q, self.s)

    @property
    def key(self) -> Tuple[int, int, int]:
        """Canonical identity (sorted ids) for set comparisons."""
        return tuple(sorted((self.anchor, self.q, self.s)))  # type: ignore[return-value]


@dataclass(frozen=True, slots=True)
class PairRecord:
    """A reported aggregate-durable pair (Section 5).

    ``score`` is the aggregate that crossed the durability threshold:
    the witness SUM for AggDurablePair-SUM, or the greedily-covered
    union length for AggDurablePair-UNION.
    """

    p: int
    q: int
    score: float

    @property
    def key(self) -> Tuple[int, int]:
        """Canonical identity (sorted ids) for set comparisons."""
        return (self.p, self.q) if self.p < self.q else (self.q, self.p)


@dataclass(frozen=True, slots=True)
class PatternRecord:
    """A reported durable pattern of Appendix D (clique, path or star).

    ``kind`` is ``"clique"``, ``"path"`` or ``"star"``.  For paths the
    member order is the path order; for stars the first member is the
    center.
    """

    kind: str
    members: Tuple[int, ...]
    lifespan: Interval

    @property
    def durability(self) -> float:
        return self.lifespan.length

    @property
    def key(self) -> Tuple[int, ...]:
        """Canonical identity for set comparisons.

        Cliques are unordered; paths are identified up to reversal;
        stars are identified by (center, leaf set).
        """
        if self.kind == "clique":
            return tuple(sorted(self.members))
        if self.kind == "path":
            fwd = self.members
            rev = tuple(reversed(self.members))
            return min(fwd, rev)
        # star: center first, leaves unordered
        return (self.members[0], *sorted(self.members[1:]))
