"""E6 — Theorem B.3: exact ℓ∞ reporting in ``Õ(n + |T_τ|)``.

The exact backend's output is ``T_τ`` itself (no ε-extras); its time
should scale near-linearly and stay competitive with the approximate
cover-tree backend while returning strictly less.
"""

import pytest

from repro.baselines import brute_force_triangles

from helpers import TAU, linf_index, triangle_index, workload

SIZES = [400, 800, 1600]


@pytest.mark.parametrize("n", SIZES)
def test_linf_exact_scaling(benchmark, n):
    idx = linf_index(n)
    result = benchmark.pedantic(idx.query, args=(TAU,), rounds=3, iterations=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E6 linf exact: n sweep"


def test_linf_build(benchmark):
    from repro.core.linf import LinfTriangleIndex

    tps = workload(800, "linf")
    benchmark.pedantic(lambda: LinfTriangleIndex(tps), rounds=2, iterations=1)
    benchmark.group = "E6 linf exact: build (n=800)"


@pytest.mark.parametrize(
    "name",
    ["exact", "approx-cover-tree", "brute-force"],
)
def test_linf_vs_alternatives(benchmark, name):
    n = 800
    tps = workload(n, "linf")
    if name == "exact":
        idx = linf_index(n)
        fn = lambda: idx.query(TAU)
    elif name == "approx-cover-tree":
        idx = triangle_index(n, metric="linf")
        fn = lambda: idx.query(TAU)
    else:
        fn = lambda: brute_force_triangles(tps, TAU)
    result = benchmark.pedantic(fn, rounds=3, iterations=1)
    benchmark.extra_info["algorithm"] = name
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E6 linf: exact vs approx vs brute (n=800)"
