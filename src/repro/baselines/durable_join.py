"""Durable-join baseline (Hu et al. [32] flavour, Section 6).

The related-work approach the paper improves on: treat durable triangle
listing as a temporal self-join.

1. materialise all *durable edges* — pairs within distance 1 whose
   lifespans overlap for at least τ (already ``Ω(m)``);
2. join edges sharing an endpoint, checking the closing edge and the
   three-way durability.

Like the paper's description of [32], the running time is super-linear
in the number of durable edges even when few durable *triangles* exist.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graphs.proximity import build_proximity_graph
from ..temporal.interval import Interval
from ..types import TemporalPointSet, TriangleRecord

__all__ = ["durable_join_triangles", "durable_edges"]


def durable_edges(
    tps: TemporalPointSet, tau: float, threshold: float = 1.0
) -> List[Tuple[int, int]]:
    """Pairs within ``threshold`` whose lifespans overlap ≥ τ."""
    graph = build_proximity_graph(tps, threshold)
    starts, ends = tps.starts, tps.ends
    out: List[Tuple[int, int]] = []
    for a, b in graph.edges:
        lo = max(float(starts[a]), float(starts[b]))
        hi = min(float(ends[a]), float(ends[b]))
        if hi - lo >= tau:
            out.append((a, b))
    return out


def durable_join_triangles(
    tps: TemporalPointSet, tau: float, threshold: float = 1.0
) -> List[TriangleRecord]:
    """Self-join the durable-edge relation on shared endpoints.

    Returns exactly ``T_τ``: a triangle's three edges each overlap ≥ τ
    pairwise whenever the triple intersection is ≥ τ, so joining durable
    edges loses nothing; the final three-way durability check removes
    pairwise-only matches.
    """
    edges = durable_edges(tps, tau, threshold)
    by_endpoint: Dict[int, List[int]] = {}
    for a, b in edges:
        by_endpoint.setdefault(a, []).append(b)
        by_endpoint.setdefault(b, []).append(a)
    edge_set = {(a, b) if a < b else (b, a) for a, b in edges}
    starts, ends = tps.starts, tps.ends
    out: List[TriangleRecord] = []
    for v, nbrs in by_endpoint.items():
        nbrs_sorted = sorted(nbrs)
        for i in range(len(nbrs_sorted)):
            a = nbrs_sorted[i]
            if a <= v:
                continue  # count each triangle at its smallest vertex
            for j in range(i + 1, len(nbrs_sorted)):
                b = nbrs_sorted[j]
                if b <= v:
                    continue
                if (a, b) not in edge_set:
                    continue
                lo = max(float(starts[v]), float(starts[a]), float(starts[b]))
                hi = min(float(ends[v]), float(ends[a]), float(ends[b]))
                if hi - lo >= tau:
                    anchor = max((v, a, b), key=tps.anchor_key)
                    q, s = sorted(x for x in (v, a, b) if x != anchor)
                    out.append(
                        TriangleRecord(
                            anchor=anchor, q=q, s=s, lifespan=Interval(lo, hi)
                        )
                    )
    return out
