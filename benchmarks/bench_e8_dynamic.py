"""E8 — Theorem C.1: the dynamic setting.

Replaying the full lifespan event stream should cost near-linear total
time (``O(log³ n)`` amortised per update plus output), so the per-event
cost should grow only polylogarithmically with ``n``.
"""

import pytest

from repro import DynamicTriangleStream

from helpers import TAU, workload

SIZES = [300, 600, 1200]


@pytest.mark.parametrize("n", SIZES)
def test_stream_replay(benchmark, n):
    tps = workload(n)

    def run():
        stream = DynamicTriangleStream(tps, TAU, epsilon=0.5)
        recs = stream.run()
        return stream, recs

    stream, recs = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["out"] = len(recs)
    benchmark.extra_info["group_rebuilds"] = stream.structure.n_group_rebuilds
    benchmark.extra_info["full_rebuilds"] = stream.structure.n_full_rebuilds
    benchmark.group = "E8 dynamic stream replay"


def test_offline_reference(benchmark):
    """Offline Algorithm 1 on the same workload, for the online premium."""
    from helpers import triangle_index

    idx = triangle_index(600)
    result = benchmark.pedantic(idx.query, args=(TAU,), rounds=3, iterations=1)
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E8 offline reference (n=600)"
