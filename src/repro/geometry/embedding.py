"""Graph → point-set embedding pipeline.

The paper assumes embeddings are given ("there are efficient algorithms
for computing graph embeddings", Section 1) and cites landmark/MDS-style
methods [50, 54, 55].  This module provides that missing pipeline so
users can run the durable-pattern algorithms on *graphs*: a landmark
multidimensional-scaling embedding of shortest-path distances, built on
networkx + scipy (the ``analysis`` extra).

The embedding is then rescaled so that graph-adjacent vertices land
within the unit distance threshold.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ValidationError

__all__ = ["landmark_embedding", "embed_graph"]


def landmark_embedding(
    graph,
    dim: int = 4,
    n_landmarks: int = 32,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Landmark MDS of shortest-path distances.

    Classic landmark multidimensional scaling: embed the landmarks by
    eigendecomposition of the double-centred squared-distance matrix,
    then triangulate the remaining vertices against the landmark frame.
    Returns an ``(n, dim)`` array indexed by sorted node order.
    """
    import networkx as nx

    nodes = sorted(graph.nodes())
    n = len(nodes)
    if n == 0:
        raise ValidationError("cannot embed an empty graph")
    index = {v: i for i, v in enumerate(nodes)}
    rng = np.random.default_rng(seed)
    k = min(n_landmarks, n)
    landmarks = [nodes[i] for i in rng.choice(n, size=k, replace=False)]

    # Distances from every landmark to all nodes (BFS per landmark).
    dist = np.full((k, n), np.inf)
    for li, lm in enumerate(landmarks):
        lengths = nx.single_source_shortest_path_length(graph, lm)
        for v, d in lengths.items():
            dist[li, index[v]] = d
    finite_max = np.nanmax(np.where(np.isfinite(dist), dist, np.nan))
    if not np.isfinite(finite_max):
        finite_max = 1.0
    dist = np.where(np.isfinite(dist), dist, finite_max * 2.0)

    # Classical MDS on the landmark-landmark block.
    lm_idx = [index[lm] for lm in landmarks]
    d2 = dist[:, lm_idx] ** 2
    j = np.eye(k) - np.ones((k, k)) / k
    b = -0.5 * j @ d2 @ j
    vals, vecs = np.linalg.eigh(b)
    order = np.argsort(vals)[::-1][:dim]
    vals_top = np.clip(vals[order], 1e-12, None)
    lm_coords = vecs[:, order] * np.sqrt(vals_top)

    # Triangulate remaining nodes (distance-based projection):
    # x_v = -1/2 · pinv(L) · (δ²_v − mean δ²), the classic landmark-MDS
    # out-of-sample formula.
    pseudo = np.linalg.pinv(lm_coords)  # (dim, k)
    mean_d2 = d2.mean(axis=1)
    coords = np.empty((n, lm_coords.shape[1]))
    for v in range(n):
        dv2 = dist[:, v] ** 2
        coords[v] = -0.5 * (pseudo @ (dv2 - mean_d2))
    return coords


def embed_graph(
    graph,
    dim: int = 4,
    n_landmarks: int = 32,
    seed: Optional[int] = 0,
    adjacency_quantile: float = 0.9,
) -> Tuple[np.ndarray, float]:
    """Embed a graph and compute the unit-threshold rescaling.

    Returns ``(points, scale)`` where points are already divided by
    ``scale``: the ``adjacency_quantile`` of embedded edge lengths maps
    to distance 1, so most graph edges become unit-ball edges.  The
    embedding is approximate — exactly the regime the paper targets
    ("graphs … can be approximated as proximity graphs").
    """
    coords = landmark_embedding(graph, dim=dim, n_landmarks=n_landmarks, seed=seed)
    nodes = sorted(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    edge_lens = [
        float(np.linalg.norm(coords[index[a]] - coords[index[b]]))
        for a, b in graph.edges()
    ]
    if edge_lens:
        scale = float(np.quantile(edge_lens, adjacency_quantile))
    else:
        scale = 1.0
    scale = max(scale, 1e-9)
    return coords / scale, scale
