"""E5 — Section 2.2 / Appendix A: the ε trade-off.

Smaller ε means more canonical balls (the ``ε^{-O(ρ)}`` factor in every
bound) but fewer spurious ε-triangles (tighter output).  This experiment
measures both sides: query time, canonical group count, and the
inflation ratio ``reported / |T_τ|``.
"""

import pytest

from repro.baselines import brute_force_triangle_keys

from helpers import TAU, triangle_index, workload

N = 800


@pytest.mark.parametrize("epsilon", [1.0, 0.5, 0.25, 0.125])
def test_epsilon_sweep(benchmark, epsilon):
    idx = triangle_index(N, epsilon=epsilon)
    result = benchmark.pedantic(idx.query, args=(TAU,), rounds=3, iterations=1)
    exact = len(brute_force_triangle_keys(workload(N), TAU))
    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["groups"] = len(idx.structure.groups)
    benchmark.extra_info["out"] = len(result)
    benchmark.extra_info["exact"] = exact
    benchmark.extra_info["inflation"] = round(len(result) / max(exact, 1), 3)
    benchmark.group = "E5 epsilon sweep (n=800)"
