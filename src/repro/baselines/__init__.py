"""Comparators and ground-truth implementations (Sections 1.2, 6)."""

from .brute_force import (
    adjacency_matrix,
    brute_force_triangle_keys,
    brute_force_triangles,
    triangle_bounds,
)
from .brute_incremental import (
    RecomputeIncrementalBaseline,
    brute_activation_threshold,
    brute_delta_keys,
)
from .brute_pairs import (
    brute_pair_witness_sum,
    brute_sum_pairs,
    brute_union_pairs,
    max_kappa_coverage,
)
from .brute_patterns import brute_cliques, brute_paths, brute_stars
from .explicit_graph import explicit_graph_triangles
from .durable_join import durable_edges, durable_join_triangles

__all__ = [
    "adjacency_matrix",
    "brute_force_triangle_keys",
    "brute_force_triangles",
    "triangle_bounds",
    "RecomputeIncrementalBaseline",
    "brute_activation_threshold",
    "brute_delta_keys",
    "brute_pair_witness_sum",
    "brute_sum_pairs",
    "brute_union_pairs",
    "max_kappa_coverage",
    "brute_cliques",
    "brute_paths",
    "brute_stars",
    "explicit_graph_triangles",
    "durable_edges",
    "durable_join_triangles",
]
