"""End-to-end integration tests combining multiple subsystems.

These replicate the example scripts' flows in assertive form: the same
data passing through offline, incremental, dynamic, aggregate and
pattern paths must tell one consistent story.
"""

import numpy as np
import pytest

from repro import (
    DurableTriangleIndex,
    DynamicTriangleStream,
    IncrementalTriangleSession,
    LinfTriangleIndex,
    SumPairIndex,
    TemporalPointSet,
    UnionPairIndex,
    find_durable_cliques,
    find_durable_triangles,
)
from repro.baselines import brute_force_triangle_keys, triangle_bounds
from repro.datasets import coauthorship_workload, social_forum_workload
from repro.geometry import doubling_dimension_estimate, spread


@pytest.fixture(scope="module")
def forum():
    return social_forum_workload(n=180, n_communities=6, seed=13)


class TestOfflineIncrementalDynamicAgree:
    def test_three_paths_to_t_tau(self, forum):
        """Offline query, incremental session, and stream replay all
        cover T_τ and stay within T^ε_τ for the same (τ, ε)."""
        tau, eps = 2.0, 0.5
        must, may = triangle_bounds(forum, tau, eps)

        offline = {r.key for r in DurableTriangleIndex(forum, epsilon=eps).query(tau)}
        session = IncrementalTriangleSession(forum, epsilon=eps)
        incremental = {r.key for r in session.query(tau)}
        streamed = {r.key for r in DynamicTriangleStream(forum, tau, epsilon=eps).run()}

        for got in (offline, incremental, streamed):
            assert must <= got <= may

    def test_incremental_converges_to_offline(self, forum):
        eps = 0.5
        idx = DurableTriangleIndex(forum, epsilon=eps)
        session = IncrementalTriangleSession(forum, epsilon=eps)
        for tau in (4.0, 3.0, 1.5):
            session.query(tau)
        got = {r.key for r in session.current_results()}
        want = {r.key for r in idx.query(1.5)}
        assert got == want  # same ε-family, same decomposition maths

    def test_cliques_extend_triangles(self, forum):
        tau, eps = 1.5, 0.5
        triangles = {r.key for r in DurableTriangleIndex(forum, epsilon=eps).query(tau)}
        cliques3 = {r.key for r in find_durable_cliques(forum, 3, tau, epsilon=eps)}
        assert triangles == cliques3
        # Every sub-triple of a reported 4-clique is a durable ε-triangle
        # (it need not be in the *reported* triangle family: a different
        # sub-anchor sees different candidate balls).
        _, may = triangle_bounds(forum, tau, 2 * eps)
        for rec in find_durable_cliques(forum, 4, tau, epsilon=eps):
            a, b, c, d = rec.members
            for triple in ((a, b, c), (a, b, d), (a, c, d), (b, c, d)):
                assert tuple(sorted(triple)) in may


class TestAggregatesOnCoauthorship:
    def test_sum_union_consistency(self):
        tps = coauthorship_workload(n=150, seed=5)
        tau = 10.0
        sum_pairs = {r.key for r in SumPairIndex(tps, epsilon=0.5).query(tau)}
        union_idx = UnionPairIndex(tps, epsilon=0.5)
        union_pairs = {r.key for r in union_idx.query(tau, kappa=3)}
        # A pair whose κ-union reaches τ has witness SUM ≥ (1-1/e)τ... but
        # more robustly: both must at least be unit-ball pairs with a
        # τ-long shared window.
        for p, q in sum_pairs | union_pairs:
            assert tps.dist(p, q) <= 1.5 + 1e-6
            lo = max(tps.starts[p], tps.starts[q])
            hi = min(tps.ends[p], tps.ends[q])
            assert hi - lo >= tau - 1e-9

    def test_union_score_bounded_by_window(self):
        tps = coauthorship_workload(n=120, seed=7)
        idx = UnionPairIndex(tps, epsilon=0.5)
        for rec in idx.query(8.0, kappa=2):
            lo = max(tps.starts[rec.p], tps.starts[rec.q])
            hi = min(tps.ends[rec.p], tps.ends[rec.q])
            assert rec.score <= (hi - lo) + 1e-9


class TestMetricDiagnostics:
    def test_workloads_have_sane_geometry(self, forum):
        assert spread(forum.points) > 1.0
        rho = doubling_dimension_estimate(forum.points, n_centers=10, seed=0)
        assert 0.0 <= rho <= 6.0  # planar data: small doubling dimension

    def test_exact_linf_pipeline(self):
        tps = social_forum_workload(n=120, seed=3, metric="linf")
        exact = {r.key for r in LinfTriangleIndex(tps).query(1.5)}
        assert exact == brute_force_triangle_keys(tps, 1.5)
        via_api = {r.key for r in find_durable_triangles(tps, 1.5)}
        assert via_api == exact


class TestScaleSmoke:
    def test_mid_size_end_to_end(self):
        """A single larger instance exercising the whole stack."""
        rng = np.random.default_rng(0)
        n = 600
        pts = rng.uniform(0, 7, size=(n, 2))
        starts = rng.uniform(0, 40, size=n)
        tps = TemporalPointSet(pts, starts, starts + rng.uniform(1, 20, size=n))
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        tau = 10.0
        recs = idx.query(tau)
        assert idx.count(tau) == len(recs)
        assert all(r.durability >= tau for r in recs)
        keys = [r.key for r in recs]
        assert len(keys) == len(set(keys))
