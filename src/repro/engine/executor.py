"""Concurrent plan execution with per-query timing.

Plans run on a :class:`~concurrent.futures.ThreadPoolExecutor`; index
builds are de-duplicated by the cache's single-flight discipline, so a
batch whose queries share one index performs one build no matter how
many workers race for it.  Query paths in this library are read-only
(the indexes memoise nothing after construction), so concurrent queries
against one shared index are safe and the result of a batch is
deterministic: results come back in submission order, and each query's
records are exactly what a sequential run would produce.

Threads — not processes — are the right pool here: a process pool would
have to pickle a full index per worker, forfeiting the shared build
that is the engine's whole point.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, List, Optional, Sequence

from .cache import IndexCache
from .planner import QueryPlan
from .results import QueryResult

__all__ = ["execute_plans", "default_worker_count"]


def default_worker_count(n_plans: int) -> int:
    """Pool size: enough to cover the batch, bounded by the host CPUs."""
    cpus = os.cpu_count() or 1
    return max(1, min(n_plans, cpus))


def _execute_one(plan: QueryPlan, cache: IndexCache) -> QueryResult:
    index, hit = cache.get_or_build(plan.key, plan.builder)
    records_by_tau: "OrderedDict[float, List[Any]]" = OrderedDict()
    t0 = time.perf_counter()
    for tau in plan.spec.taus:
        records_by_tau[tau] = plan.runner(index, tau)
    query_seconds = time.perf_counter() - t0
    return QueryResult(
        spec=plan.spec,
        key=plan.key,
        records_by_tau=records_by_tau,
        cache_hit=hit,
        build_seconds=0.0 if hit else cache.build_seconds_for(plan.key),
        query_seconds=query_seconds,
    )


def execute_plans(
    plans: Sequence[QueryPlan],
    cache: IndexCache,
    max_workers: Optional[int] = None,
    parallel: bool = True,
) -> List[QueryResult]:
    """Run every plan; results are returned in submission order."""
    if not plans:
        return []
    workers = max_workers if max_workers is not None else default_worker_count(len(plans))
    if not parallel or workers <= 1 or len(plans) == 1:
        return [_execute_one(p, cache) for p in plans]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_execute_one, p, cache) for p in plans]
        return [f.result() for f in futures]
