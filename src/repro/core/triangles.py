"""Reporting durable triangles — Section 3 (Algorithm 1).

For each anchor ``p`` with ``|I_p| ≥ τ`` the algorithm runs
``durableBallQ(p, τ, ε/2)`` and reports

* type (1): all ordered-by-id pairs inside one canonical subset, and
* type (2): the Cartesian product of every *linked* pair of subsets
  (``φ(Rep_i, Rep_j) ≤ 1 + r_i + r_j``),

yielding every τ-durable triangle anchored at ``p`` plus possibly some
τ-durable ε-triangles (Theorem 3.1): ``T_τ ⊆ reported ⊆ T^ε_τ``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ValidationError
from ..structures.durable_ball import BallSubset, DurableBallStructure, resolve_backend
from ..temporal.interval import Interval
from ..types import TemporalPointSet, TriangleRecord

__all__ = ["DurableTriangleIndex", "triangles_for_anchor"]


def _record(
    tps: TemporalPointSet, p: int, a: int, b: int
) -> TriangleRecord:
    """Build the reported record; ``q < s`` by id as in Algorithm 1."""
    q, s = (a, b) if a < b else (b, a)
    start = float(tps.starts[p])
    end = min(float(tps.ends[p]), float(tps.ends[q]), float(tps.ends[s]))
    return TriangleRecord(anchor=p, q=q, s=s, lifespan=Interval(start, end))


def triangles_for_anchor(
    structure: DurableBallStructure,
    anchor: int,
    tau: float,
    *,
    subsets: Optional[Sequence[BallSubset]] = None,
) -> Iterator[TriangleRecord]:
    """``ReportTriangle(D, p, τ, ε)`` — Algorithm 1 for one anchor.

    Yields every τ-durable triangle anchored at ``anchor`` (plus some
    ε-triangles), each exactly once, in the anchor-first order of the
    paper.  ``subsets`` may be passed to reuse a prior ball query.
    """
    tps = structure.tps
    if tps.duration(anchor) < tau:
        return
    if subsets is None:
        subsets = structure.query(anchor, tau)
    materialised: List[List[int]] = [s.ids() for s in subsets]
    # Type (1): pairs within one canonical ball.
    for ids in materialised:
        if len(ids) >= 2:
            for a, b in combinations(ids, 2):
                yield _record(tps, anchor, a, b)
    # Type (2): pairs across linked balls.
    for i in range(len(subsets)):
        if not materialised[i]:
            continue
        for j in range(i + 1, len(subsets)):
            if not materialised[j]:
                continue
            if structure.linked(subsets[i].group, subsets[j].group):
                for a in materialised[i]:
                    for b in materialised[j]:
                        yield _record(tps, anchor, a, b)


class DurableTriangleIndex:
    """The ``DurableTriangle`` solver of Section 3 (Theorem 3.1).

    Parameters
    ----------
    tps:
        Input ``(P, φ, I)``.
    epsilon:
        Distance approximation ``ε ∈ (0, 1]``.  Every reported triangle
        is a τ-durable ε-triangle, and every exact τ-durable triangle is
        reported.
    backend:
        ``"cover-tree"`` (any metric, Appendix A), ``"grid"``
        (ℓ_α metrics, Remark 1), or ``"auto"``.

    The exact ℓ∞ solver of Appendix B lives in
    :class:`repro.core.linf.LinfTriangleIndex`; the top-level helper
    :func:`repro.find_durable_triangles` dispatches on request.
    """

    def __init__(
        self,
        tps: TemporalPointSet,
        epsilon: float = 0.5,
        backend: str = "auto",
    ) -> None:
        if not 0 < epsilon <= 1:
            raise ValidationError(f"epsilon must lie in (0, 1], got {epsilon!r}")
        self.tps = tps
        self.epsilon = float(epsilon)
        self.backend = resolve_backend(backend)
        # Algorithm 1 issues durableBallQ(p, τ, ε/2): canonical balls of
        # diameter ≤ ε/2, i.e. radius ≤ ε/4.
        self.structure = DurableBallStructure(tps, epsilon / 4.0, backend)

    def cache_key(self) -> tuple:
        """Key under which an engine cache may share this index.

        Two construction calls with equal keys build interchangeable
        indexes (same dataset fingerprint, ε, and spatial backend); see
        :mod:`repro.engine.cache`.
        """
        return ("triangles", self.tps.fingerprint(), self.epsilon, self.backend)

    def maintained(self, tps: TemporalPointSet) -> Optional["DurableTriangleIndex"]:
        """An index maintained to ``tps``, an appended version of ``self.tps``.

        Incremental maintenance per Section 4's online framing: the
        durable-ball structure is extended rather than rebuilt when the
        spatial backend supports it (see
        :meth:`~repro.structures.durable_ball.DurableBallStructure.extended`),
        so untouched canonical balls keep their dominance indexes and
        only balls that gained points pay a rebuild.  Query answers over
        the maintained index are record-set-identical to a fresh build
        over ``tps``.  Returns ``None`` when the backend cannot extend
        (callers rebuild instead).  ``self`` is never mutated.
        """
        structure = self.structure.extended(tps)
        if structure is None:
            return None
        clone = object.__new__(DurableTriangleIndex)
        clone.tps = tps
        clone.epsilon = self.epsilon
        clone.backend = self.backend
        clone.structure = structure
        return clone

    # ------------------------------------------------------------------
    def query(self, tau: float) -> List[TriangleRecord]:
        """All τ-durable triangles (plus some τ-durable ε-triangles).

        Anchors are visited in id order; within an anchor the order of
        Algorithm 1 is preserved.
        """
        self._check_tau(tau)
        out: List[TriangleRecord] = []
        for p in self._eligible_anchors(tau):
            out.extend(triangles_for_anchor(self.structure, p, tau))
        return out

    def iter_query(self, tau: float) -> Iterator[TriangleRecord]:
        """Delay-guaranteed enumeration (Section 3, Remark 2).

        See :class:`repro.core.enumeration.DelayGuaranteedEnumerator` for
        the instrumented variant with measurable delay bounds; this
        method is its plain generator form.
        """
        from .enumeration import DelayGuaranteedEnumerator

        return iter(DelayGuaranteedEnumerator(self, tau))

    def query_anchored(self, anchor: int, tau: float) -> List[TriangleRecord]:
        """Triangles anchored at one point (Algorithm 1 for a single ``p``)."""
        self._check_tau(tau)
        return list(triangles_for_anchor(self.structure, anchor, tau))

    def count(self, tau: float) -> int:
        """Number of triangles ``query(tau)`` would report — *without*
        enumerating them.

        Implements the counting extension the paper's conclusion lists
        as future work: run sizes of the canonical subsets suffice, so
        the cost is ``Õ(n·ε^{-O(ρ)})`` independent of the output size
        (see :mod:`repro.core.counting`).
        """
        from .counting import count_durable_triangles

        self._check_tau(tau)
        return count_durable_triangles(self.tps, tau, structure=self.structure)

    # ------------------------------------------------------------------
    def _iter_all(self, tau: float) -> Iterator[TriangleRecord]:
        for p in self._eligible_anchors(tau):
            yield from triangles_for_anchor(self.structure, p, tau)

    def _eligible_anchors(self, tau: float) -> Iterator[int]:
        durations = self.tps.ends - self.tps.starts
        for p in np.nonzero(durations >= tau)[0]:
            yield int(p)

    @staticmethod
    def _check_tau(tau: float) -> None:
        if tau <= 0:
            raise ValidationError(f"durability parameter must be positive, got {tau!r}")

    def stats(self) -> dict:
        """Structure statistics (group count, level count if available)."""
        dec = self.structure.decomposition
        info = {
            "n": self.tps.n,
            "epsilon": self.epsilon,
            "groups": len(dec.groups),
            "resolution": dec.resolution,
        }
        levels = getattr(getattr(dec, "hierarchy", None), "levels", None)
        if levels is not None:
            info["levels"] = len(levels)
        return info
