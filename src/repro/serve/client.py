"""Stdlib HTTP client plumbing for the serve/route front ends.

Shared by the ``repro append`` and ``repro trace`` CLI subcommands and
the examples (``examples/serve_client.py``,
``examples/streaming_monitor.py``): one keep-alive
:class:`http.client.HTTPConnection` carries JSON round trips and raw
NDJSON bodies alike, against either a single ``repro serve`` process
or the routing tier (the protocol is identical).

Every query envelope line (batch-start, per-query result, batch-end)
and every error body carries a ``trace_id``; :func:`fetch_trace` turns
one back into its full span tree via ``GET /debug/traces/<id>`` —
stitched across processes when a router answers.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Optional, Tuple
from urllib.parse import quote, urlencode

__all__ = [
    "append_events",
    "connect",
    "events_path",
    "fetch_trace",
    "fetch_traces",
    "probe",
    "request",
    "request_raw",
]


def probe(host: str, port: int, timeout: float = 2.0) -> None:
    """One throwaway ``GET /health`` to see whether a server is up.

    Raises :class:`OSError` when nothing is listening — callers decide
    whether to boot an in-process server (the examples do) or fail
    (the CLI does, with the error message).
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", "/health")
        conn.getresponse().read()
    finally:
        conn.close()


def connect(
    host: str, port: int, timeout: float = 30.0
) -> http.client.HTTPConnection:
    """A keep-alive connection for a sequence of :func:`request` calls."""
    return http.client.HTTPConnection(host, port, timeout=timeout)


def request(
    conn: http.client.HTTPConnection,
    method: str,
    path: str,
    body: Optional[Any] = None,
) -> Tuple[int, bytes]:
    """One JSON request on a shared keep-alive connection."""
    conn.request(
        method,
        path,
        body=json.dumps(body) if body is not None else None,
        headers={"Content-Type": "application/json"},
    )
    resp = conn.getresponse()
    return resp.status, resp.read()


def request_raw(
    conn: http.client.HTTPConnection,
    method: str,
    path: str,
    body: bytes,
    content_type: str = "application/x-ndjson",
) -> Tuple[int, bytes]:
    """One raw-body request (NDJSON event batches are not JSON)."""
    conn.request(method, path, body=body, headers={"Content-Type": content_type})
    resp = conn.getresponse()
    return resp.status, resp.read()


def events_path(name: str) -> str:
    """The ``POST`` path for a dataset's event endpoint.

    Dataset names may hold spaces etc. (only ``/`` is banned), so the
    name is percent-encoded, mirroring the server's ``unquote``.
    """
    return f"/datasets/{quote(name, safe='')}/events"


def append_events(
    conn: http.client.HTTPConnection, name: str, batch: bytes
) -> Tuple[int, Any]:
    """POST one NDJSON event batch; returns ``(status, parsed body)``.

    On 200 the body is ``{"appended": {epoch, accepted, rejected, …}}``
    (plus ``worker`` when a router answered); error answers come back
    as whatever JSON the server produced, or ``{"error": <text>}`` for
    an unparsable body.
    """
    status, raw = request_raw(conn, "POST", events_path(name), batch)
    try:
        doc = json.loads(raw) if raw else {}
    except json.JSONDecodeError:
        doc = {"error": raw.decode("utf-8", "replace")}
    return status, doc


def fetch_trace(
    conn: http.client.HTTPConnection, trace_id: str
) -> Tuple[int, Any]:
    """``GET /debug/traces/<id>`` → ``(status, trace document)``.

    The document is ``{"trace_id", "spans": [...], ...}`` — render it
    with :func:`repro.obs.format_waterfall`.  Against a router the
    spans are stitched across the proxy and the owning worker.  404
    means the id was never stored (sampled out, evicted, or unknown).
    """
    status, raw = request(
        conn, "GET", f"/debug/traces/{quote(trace_id, safe='')}"
    )
    try:
        doc = json.loads(raw) if raw else {}
    except json.JSONDecodeError:
        doc = {"error": raw.decode("utf-8", "replace")}
    return status, doc


def fetch_traces(
    conn: http.client.HTTPConnection,
    min_duration_ms: Optional[float] = None,
    limit: Optional[int] = None,
    dataset: Optional[str] = None,
    route: Optional[str] = None,
) -> Tuple[int, Any]:
    """``GET /debug/traces`` listing → ``(status, {"traces": [...]})``.

    Summaries come back newest-first; pass ``min_duration_ms`` to keep
    only slow requests (the triage entry point for a latency incident).
    """
    params = {}
    if min_duration_ms is not None:
        params["min_ms"] = f"{min_duration_ms:g}"
    if limit is not None:
        params["limit"] = str(limit)
    if dataset is not None:
        params["dataset"] = dataset
    if route is not None:
        params["route"] = route
    path = "/debug/traces"
    if params:
        path += "?" + urlencode(params)
    status, raw = request(conn, "GET", path)
    try:
        doc = json.loads(raw) if raw else {}
    except json.JSONDecodeError:
        doc = {"error": raw.decode("utf-8", "replace")}
    return status, doc
