"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough protocol for both asyncio front ends — the dataset server
(:class:`repro.serve.server.ServeApp`) and the multi-process router
(:class:`repro.router.RouterApp`) — which share one connection loop in
:class:`~repro.serve.server.AsyncApp`: request-line + header parsing
with hard size limits, ``Content-Length`` bodies, JSON replies, plain
text replies (the ``/metrics`` exposition), and chunked transfer
encoding for NDJSON streaming (so a response's size never has to be
known — or buffered — up front).

Connections are **persistent by default** (HTTP/1.1 keep-alive): the
server's connection loop calls :func:`read_request` repeatedly on one
socket, and :func:`want_keep_alive` implements the negotiation rules —
HTTP/1.1 keeps the connection unless the client says ``Connection:
close``; HTTP/1.0 closes unless the client says ``Connection:
keep-alive``.  Reuse makes framing correctness load-bearing, so every
response states its framing explicitly: an exact ``Content-Length`` or
a chunked body ending in the terminal ``0\\r\\n\\r\\n`` (never a stray
byte after it), plus an explicit ``Connection: keep-alive``/``close``
header.  Requests are fully consumed (``readexactly`` of the declared
body length) before the next one is parsed, and anything that leaves
the request boundary ambiguous — a malformed head, duplicate or
conflicting ``Content-Length`` headers, ``Content-Length`` combined
with ``Transfer-Encoding`` — is rejected with a 400-class
:class:`ProtocolError` that the server answers with ``Connection:
close``: after a framing error, reusing the socket would be request
smuggling.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "Request",
    "ProtocolError",
    "read_request",
    "want_keep_alive",
    "send_json",
    "send_text",
    "start_stream",
    "send_chunk",
    "end_chunked",
    "STATUS_REASONS",
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
]

#: Reason phrases for the statuses the server emits.
STATUS_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: Also the ``limit=`` the server passes to :func:`asyncio.start_server`,
#: so an oversized head overruns the reader at 16 KiB instead of being
#: buffered up to asyncio's 64 KiB default before the check runs.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024


class ProtocolError(Exception):
    """Malformed or oversized request; carries the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"
    #: Raw query string (no leading ``?``); empty when the target had none.
    query: str = ""

    def json(self) -> Any:
        """Decode the body as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}") from exc


async def read_request(
    reader: asyncio.StreamReader,
    head_timeout: Optional[float] = None,
    body_timeout: Optional[float] = None,
) -> Optional[Request]:
    """Parse one request; ``None`` if the peer closed before sending one.

    The declared body is always consumed in full, so on a keep-alive
    connection the stream is positioned exactly at the next request
    head when this returns.  ``head_timeout`` bounds how long the
    connection may sit without delivering a complete request head (the
    keep-alive idle window — raises :class:`asyncio.TimeoutError` so
    the caller can close silently); ``body_timeout`` separately bounds
    body receipt, so a slow-but-progressing large upload is never
    mistaken for an idle connection (it raises a 400
    :class:`ProtocolError` instead).
    """
    try:
        head_read = reader.readuntil(b"\r\n\r\n")
        if head_timeout is not None:
            head = await asyncio.wait_for(head_read, head_timeout)
        else:
            head = await head_read
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    path, _, query = target.partition("?")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        key = name.strip().lower()
        value = value.strip()
        if key in headers:
            if key == "content-length":
                # Duplicate or conflicting lengths desynchronize framing
                # on a reused connection (request-smuggling class).
                raise ProtocolError(400, "duplicate Content-Length headers")
            headers[key] = f"{headers[key]}, {value}"
        else:
            headers[key] = value

    if "transfer-encoding" in headers:
        if "content-length" in headers:
            raise ProtocolError(
                400, "Content-Length with Transfer-Encoding is not allowed"
            )
        raise ProtocolError(
            400,
            "Transfer-Encoding request bodies are not supported; "
            "send a Content-Length body",
        )
    length_header = headers.get("content-length", "0")
    if not (length_header.isascii() and length_header.isdigit()):
        raise ProtocolError(400, f"bad Content-Length: {length_header!r}")
    length = int(length_header)
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"body of {length} bytes exceeds the limit")
    body = b""
    if length:
        try:
            body_read = reader.readexactly(length)
            if body_timeout is not None:
                body = await asyncio.wait_for(body_read, body_timeout)
            else:
                body = await body_read
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(400, "request body shorter than Content-Length") from exc
        except asyncio.TimeoutError as exc:
            raise ProtocolError(400, "timed out receiving the request body") from exc
    return Request(
        method=method.upper(), path=path, headers=headers, body=body,
        version=version.upper(), query=query,
    )


def want_keep_alive(request: Request) -> bool:
    """Should the connection stay open after answering ``request``?

    HTTP/1.1: persistent unless the client sent ``Connection: close``.
    HTTP/1.0: closed unless the client sent ``Connection: keep-alive``.
    """
    tokens = {
        token.strip().lower()
        for token in request.headers.get("connection", "").split(",")
        if token.strip()
    }
    if request.version == "HTTP/1.0":
        return "keep-alive" in tokens
    return "close" not in tokens


def _status_line(status: int) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    return f"HTTP/1.1 {status} {reason}\r\n".encode("latin-1")


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    extra_headers: Optional[Dict[str, str]] = None,
    close: bool = True,
) -> None:
    """Send a complete JSON response (non-streaming endpoints)."""
    body = (json.dumps(payload) + "\n").encode("utf-8")
    writer.write(_status_line(status))
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close" if close else "keep-alive",
        **(extra_headers or {}),
    }
    for name, value in headers.items():
        writer.write(f"{name}: {value}\r\n".encode("latin-1"))
    writer.write(b"\r\n")
    writer.write(body)
    await writer.drain()


async def send_text(
    writer: asyncio.StreamWriter,
    status: int,
    text: str,
    content_type: str = "text/plain; charset=utf-8",
    extra_headers: Optional[Dict[str, str]] = None,
    close: bool = True,
) -> None:
    """Send a complete plain-text response (the ``/metrics`` scrape)."""
    body = text.encode("utf-8")
    writer.write(_status_line(status))
    headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close" if close else "keep-alive",
        **(extra_headers or {}),
    }
    for name, value in headers.items():
        writer.write(f"{name}: {value}\r\n".encode("latin-1"))
    writer.write(b"\r\n")
    writer.write(body)
    await writer.drain()


async def start_stream(
    writer: asyncio.StreamWriter, status: int = 200,
    content_type: str = "application/x-ndjson",
    extra_headers: Optional[Dict[str, str]] = None,
    close: bool = True,
    chunked: bool = True,
) -> None:
    """Open a streamed response; follow with :func:`send_chunk` calls.

    ``chunked=True`` (HTTP/1.1) uses chunked transfer encoding, so the
    connection can be reused after the terminal 0-chunk.  ``chunked=
    False`` is for HTTP/1.0 peers, which must never be sent chunked
    framing (RFC 7230 §3.3.1): the body is raw bytes delimited by
    connection close, so the caller must also pass ``close=True``.
    """
    writer.write(_status_line(status))
    headers = {
        "Content-Type": content_type,
        "Connection": "close" if close else "keep-alive",
        **(extra_headers or {}),
    }
    if chunked:
        headers["Transfer-Encoding"] = "chunked"
    for name, value in headers.items():
        writer.write(f"{name}: {value}\r\n".encode("latin-1"))
    writer.write(b"\r\n")
    await writer.drain()


async def send_chunk(
    writer: asyncio.StreamWriter, payload: Any, chunked: bool = True
) -> int:
    """Send one NDJSON line (one HTTP chunk if ``chunked``), flushed.

    Returns the body byte count (excluding chunk framing), so callers
    can account streamed payload bytes without re-serialising.
    """
    line = (json.dumps(payload) + "\n").encode("utf-8")
    if chunked:
        writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
    else:
        writer.write(line)
    await writer.drain()
    return len(line)


async def end_chunked(writer: asyncio.StreamWriter) -> None:
    """Terminate a chunked response (exactly ``0 CRLF CRLF``, no more)."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()
