"""The asyncio serving front end: routes, streaming, lifecycle.

Two layers live here.  :class:`AsyncApp` is the protocol half — the
HTTP/1.1 keep-alive connection loop, error→status mapping, graceful
drain, lifecycle, and the per-request metrics seam (every front end
owns a :class:`~repro.obs.MetricsRegistry` and answers ``GET
/metrics``) — with routing left abstract; it exists so other front
ends (the multi-process router in :mod:`repro.router`) can reuse the
hardened connection handling without dragging in a dataset registry.
:class:`ServeApp` is the serving half: it wires the sharded
:class:`~repro.serve.registry.DatasetRegistry` and the bounded async
bridge into an HTTP/NDJSON protocol:

* ``GET    /health``   — liveness probe (used by CI to await boot);
* ``GET    /datasets`` — registered dataset identities;
* ``POST   /datasets`` — register ``{"name": ..., "dataset": {spec}}``
  (optional ``"default_backend"``: a registered backend injected into
  queries against this dataset that name none — explicit per-query
  backends always win, kinds the backend cannot serve stay on ``auto``,
  and a metric-incompatible default is rejected here, at registration);
* ``DELETE /datasets/<name>`` — unregister: the shard is closed, its
  index cache and thread pool freed; unknown names get 404.  In-flight
  queries on the shard finish (admission slots release via their
  done-callbacks); queued-but-unstarted work is cancelled;
* ``POST   /query``    — ``{"dataset": ..., "queries": [QuerySpec...]}``,
  answered as a chunked NDJSON stream: a ``batch-start`` line, then per
  query its ``records`` lines (one per τ, so a huge τ-sweep is never
  buffered as one document) and a ``result`` status line, then a
  ``batch-end`` line with per-batch cache stats;
* ``GET    /stats``    — per-shard cache/admission statistics (including
  per-resolved-backend build/query counters) plus the server's
  connection counters and its **identity block** (``pid``, bound
  address, monotonic age) so an aggregating router can attribute
  counters to the worker process that produced them;
* ``GET    /metrics``  — the Prometheus text exposition of the app's
  metrics registry (see ``docs/metrics.md`` for the family reference);
* ``POST   /shutdown`` — graceful stop: new connections are refused,
  in-flight requests drain, idle keep-alive connections are closed.

With a tenant table configured (``--api-keys``; see
:mod:`repro.serve.tenants`), ``POST /query`` requires a known
``X-API-Key`` header (401 otherwise) and is metered per tenant:
weighted fair admission shares on each shard's queue, optional
per-minute quotas answered with 429 + ``Retry-After``, and
tenant-labelled metrics.  All other routes stay unauthenticated.

Connections are persistent (HTTP/1.1 keep-alive):
:meth:`AsyncApp.handle_connection` is a request loop that serves many
requests per socket, bounded by an idle timeout and a per-connection
request cap, honouring ``Connection: close`` and HTTP/1.0 semantics.
A protocol error closes the connection (framing can no longer be
trusted); a truncated chunked stream marks the connection broken so a
later response can never be spliced into the half-written body.

Every query failure is isolated per the engine contract: an erroring
query emits ``{"type": "result", "ok": false, "error": ...}`` and its
batch keeps streaming.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional
from urllib.parse import parse_qs, unquote

from ..engine.planner import plan_batch
from ..engine.results import QueryResult, record_to_dict
from ..engine.spec import QuerySpec, apply_default_backend
from ..errors import ReproError, ValidationError
from ..obs import CONTENT_TYPE as METRICS_CONTENT_TYPE
from ..obs import MetricsRegistry
from ..obs.trace import TRACEPARENT_HEADER, SpanHandle, TraceRecorder, parse_traceparent
from ..obs.tracestore import (
    DEFAULT_SLOW_QUERY_MS,
    DEFAULT_TRACE_SAMPLE,
    TraceStore,
)
from .bridge import OverloadedError, submit_plans
from .http import (
    MAX_HEADER_BYTES,
    ProtocolError,
    Request,
    end_chunked,
    read_request,
    send_chunk,
    send_json,
    send_text,
    start_stream,
    want_keep_alive,
)
from .registry import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_QUEUE_LIMIT,
    DatasetRegistry,
    DuplicateDatasetError,
    UnknownDatasetError,
)
from .tenants import AuthError, Tenant, TenantTable

__all__ = [
    "ConnectionState",
    "UnavailableError",
    "AsyncApp",
    "ServeApp",
    "ServerHandle",
    "run_server",
    "start_app_thread",
    "start_server_thread",
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_MAX_REQUESTS_PER_CONNECTION",
    "DEFAULT_DRAIN_TIMEOUT",
    "DEFAULT_BODY_TIMEOUT",
]

#: Seconds a keep-alive connection may sit idle between requests before
#: the server closes it.
DEFAULT_IDLE_TIMEOUT = 30.0

#: Requests served on one connection before the server closes it (bounds
#: how long a single client can pin one connection's resources).
DEFAULT_MAX_REQUESTS_PER_CONNECTION = 1000

#: Seconds a graceful shutdown waits for in-flight requests to finish
#: before cancelling them.
DEFAULT_DRAIN_TIMEOUT = 5.0

#: Seconds allowed to receive a declared request body.  Separate from —
#: and much larger than — the idle timeout, so a slow-but-progressing
#: large upload is never mistaken for an idle connection.
DEFAULT_BODY_TIMEOUT = 300.0


class UnavailableError(ReproError):
    """The request's target is temporarily gone (HTTP 503).

    Raised by front ends whose backends can come and go — the router's
    proxy uses it for queries that race a dead or restarting worker —
    so the connection loop answers with ``503`` + ``Retry-After``
    instead of hanging or tearing the connection down.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class ConnectionState:
    """Per-request connection bookkeeping threaded through dispatch.

    ``keep_alive`` is the negotiated decision for the response being
    written (it picks the ``Connection`` header); ``broken`` is set
    when a streamed response was truncated mid-body, after which no
    further bytes may be written on the socket.
    """

    keep_alive: bool = False
    keep_alive_header: Optional[str] = None
    broken: bool = False
    #: HTTP status of the response written for this request (set by
    #: :meth:`AsyncApp._respond` and the streaming paths); feeds the
    #: ``status`` label of ``http_requests_total``.
    status: Optional[int] = None
    #: Per-request span collector (``None`` on untraced routes or when
    #: tracing is disabled) and the request's root span — dispatch code
    #: hangs child spans off the root, and 4xx/5xx bodies echo
    #: ``trace.trace_id`` so client-visible failures are findable.
    trace: Optional[TraceRecorder] = None
    root_span: Optional[SpanHandle] = None

    def response_headers(self) -> Dict[str, str]:
        """The negotiated ``Keep-Alive`` advertisement, when applicable."""
        if self.keep_alive and self.keep_alive_header:
            return {"Keep-Alive": self.keep_alive_header}
        return {}


class AsyncApp:
    """The route-agnostic half of an asyncio HTTP front end.

    Owns everything that PR 3 hardened — the keep-alive request loop,
    framing-error handling, idle/body timeouts, connection counters,
    graceful drain and the serve/run lifecycle — and leaves
    :meth:`_dispatch` (routing) and :meth:`_cleanup` (resource
    teardown after drain) to subclasses.  :class:`ServeApp` routes onto
    a dataset registry; :class:`repro.router.RouterApp` proxies onto a
    pool of worker processes.
    """

    #: Tier name prefixing root span names (``serve.request`` /
    #: ``router.request``); subclasses override.
    tier = "serve"

    #: Routes that never open a trace: high-frequency probes/scrapes
    #: (the router polls worker ``/health`` twice a second — tracing
    #: them would churn every ring buffer) and the trace endpoints
    #: themselves.
    UNTRACED_ROUTES = ("/health", "/metrics")

    def __init__(
        self,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        max_requests_per_connection: int = DEFAULT_MAX_REQUESTS_PER_CONNECTION,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        trace_sample: float = DEFAULT_TRACE_SAMPLE,
        slow_query_ms: float = DEFAULT_SLOW_QUERY_MS,
        tracing: bool = True,
    ) -> None:
        if idle_timeout <= 0:
            raise ValidationError(
                f"idle_timeout must be > 0 seconds, got {idle_timeout!r}"
            )
        if max_requests_per_connection < 1:
            raise ValidationError(
                "max_requests_per_connection must be >= 1, got "
                f"{max_requests_per_connection!r}"
            )
        self.idle_timeout = idle_timeout
        self.max_requests_per_connection = max_requests_per_connection
        self.drain_timeout = drain_timeout
        self.body_timeout = DEFAULT_BODY_TIMEOUT
        # monotonic: wall-clock steps (NTP, DST, manual) must never make
        # the reported uptime jump or go negative.
        self.started_monotonic = time.monotonic()
        self.requests_total = 0
        self.connections_opened = 0
        self.connections_active = 0
        self.keepalive_reuses = 0
        #: Bound address, recorded when the listener comes up — the
        #: stable identity /stats reports (aggregators key on it).
        self.bound_host: Optional[str] = None
        self.bound_port: Optional[int] = None
        self._shutdown = asyncio.Event()
        #: Live connection task -> is it dispatching a request right now?
        #: (Only touched from the event loop; drives graceful drain.)
        self._conn_busy: Dict["asyncio.Task[None]", bool] = {}
        #: The app's metric families (``GET /metrics``).  Per-app, not
        #: process-global, so several servers in one process (tests,
        #: router + embedded workers) scrape independently.
        self.metrics = MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "http_requests_total",
            "Requests answered, by method, normalised route and status.",
            ("method", "route", "status"),
        )
        self._m_request_seconds = self.metrics.histogram(
            "http_request_seconds",
            "Request dispatch wall seconds (first byte read to response done).",
            ("route",),
        )
        self.metrics.callback(
            "process_uptime_seconds", "gauge",
            "Seconds since this front end started (monotonic clock).",
            lambda: [({}, time.monotonic() - self.started_monotonic)],
        )
        self.metrics.callback(
            "http_connections_opened_total", "counter",
            "TCP connections accepted.",
            lambda: [({}, self.connections_opened)],
        )
        self.metrics.callback(
            "http_connections_active", "gauge",
            "Connections currently open.",
            lambda: [({}, self.connections_active)],
        )
        self.metrics.callback(
            "http_keepalive_reuses_total", "counter",
            "Requests served on an already-open connection.",
            lambda: [({}, self.keepalive_reuses)],
        )
        #: Per-process trace retention; ``None`` when tracing is off
        #: (the bench's untraced baseline) — no recorder is created and
        #: the request path pays only a ``None`` check.
        self.trace_store: Optional[TraceStore] = (
            TraceStore(sample=trace_sample, slow_ms=slow_query_ms)
            if tracing else None
        )
        # Families are registered whether or not tracing is enabled so
        # the exported name set is constant (docs-sync check).
        self.metrics.callback(
            "trace_stored_total", "counter",
            "Finished traces retained in this process's ring buffer.",
            lambda: [({}, self.trace_store.stored_total
                      if self.trace_store else 0)],
        )
        self.metrics.callback(
            "trace_sampled_out_total", "counter",
            "Fast, successful traces dropped by head sampling.",
            lambda: [({}, self.trace_store.sampled_out_total
                      if self.trace_store else 0)],
        )
        self.metrics.callback(
            "trace_evicted_total", "counter",
            "Stored traces evicted by the ring-buffer capacity bound.",
            lambda: [({}, self.trace_store.evicted_total
                      if self.trace_store else 0)],
        )
        self.metrics.callback(
            "trace_resident", "gauge",
            "Traces currently held in the ring buffer.",
            lambda: [({}, len(self.trace_store) if self.trace_store else 0)],
        )
        self.metrics.callback(
            "slow_queries_total", "counter",
            "Requests over --slow-query-ms logged to the slow-query log.",
            lambda: [({}, self.trace_store.slow_queries_total
                      if self.trace_store else 0)],
        )

    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests on one connection until it should close.

        The keep-alive state machine: read a request (bounded by the
        idle timeout), negotiate persistence per HTTP/1.1 rules and the
        per-connection request cap, dispatch, repeat.  The loop exits on
        client EOF, ``Connection: close``, the cap, idle timeout,
        protocol errors (framing no longer trustworthy), a broken
        stream, or server shutdown.
        """
        task = asyncio.current_task()
        if task is not None:
            self._conn_busy[task] = False
        self.connections_opened += 1
        self.connections_active += 1
        served = 0
        try:
            while not self._shutdown.is_set():
                try:
                    # head_timeout is the keep-alive idle window; the
                    # body gets its own (much larger) bound inside
                    # read_request, so a slow large upload that is
                    # still making progress is not reaped as idle.
                    request = await read_request(
                        reader,
                        head_timeout=self.idle_timeout,
                        body_timeout=self.body_timeout,
                    )
                except asyncio.TimeoutError:
                    break  # idle past the keep-alive window
                except ProtocolError as exc:
                    # Framing is unreliable past this point (ambiguous
                    # lengths, unread body bytes): answer and close.
                    await send_json(
                        writer, exc.status, {"error": str(exc)}, close=True
                    )
                    break
                if request is None:
                    break  # clean EOF between requests
                served += 1
                self.requests_total += 1
                if served > 1:
                    self.keepalive_reuses += 1
                state = ConnectionState(
                    keep_alive=(
                        want_keep_alive(request)
                        and served < self.max_requests_per_connection
                        and not self._shutdown.is_set()
                    ),
                )
                if state.keep_alive:
                    state.keep_alive_header = (
                        f"timeout={int(self.idle_timeout)}, "
                        f"max={self.max_requests_per_connection - served}"
                    )
                if task is not None:
                    self._conn_busy[task] = True
                if self.trace_store is not None and not self._untraced(request):
                    # Continue a propagated context (the router's, or a
                    # tracing client's) or open a fresh trace; the root
                    # span covers the whole dispatch.
                    ctx = parse_traceparent(
                        request.headers.get(TRACEPARENT_HEADER)
                    )
                    state.trace = TraceRecorder(
                        trace_id=ctx.trace_id if ctx else None,
                        parent_id=ctx.span_id if ctx else None,
                    )
                    state.root_span = state.trace.start_span(
                        f"{self.tier}.request",
                        parent_id=ctx.span_id if ctx else None,
                        attrs={"method": request.method},
                    )
                dispatch_t0 = time.perf_counter()
                try:
                    await self._dispatch(request, writer, state)
                except ProtocolError as exc:
                    await self._respond(writer, state, exc.status, {"error": str(exc)})
                except AuthError as exc:
                    await self._respond(writer, state, 401, {"error": str(exc)})
                except ValidationError as exc:
                    await self._respond(writer, state, 400, {"error": str(exc)})
                except UnknownDatasetError as exc:
                    await self._respond(writer, state, 404, {"error": str(exc)})
                except OverloadedError as exc:
                    await self._respond(
                        writer,
                        state,
                        429,
                        {"error": str(exc), "retry_after": exc.retry_after},
                        extra_headers={"Retry-After": str(int(exc.retry_after) or 1)},
                    )
                except UnavailableError as exc:
                    await self._respond(
                        writer,
                        state,
                        503,
                        {"error": str(exc), "retry_after": exc.retry_after},
                        extra_headers={"Retry-After": str(int(exc.retry_after) or 1)},
                    )
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    await self._respond(
                        writer, state, 500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                finally:
                    if task is not None:
                        self._conn_busy[task] = False
                    route = self._route_label(request)
                    self._m_requests.labels(
                        method=request.method,
                        route=route,
                        status=str(state.status or 0),
                    ).inc()
                    self._m_request_seconds.labels(route=route).observe(
                        time.perf_counter() - dispatch_t0
                    )
                    self._finish_trace(state, route)
                if state.broken or not state.keep_alive:
                    break
        except (ConnectionError, asyncio.TimeoutError):
            pass  # peer went away; admission slots are freed by callbacks
        finally:
            self.connections_active -= 1
            if task is not None:
                self._conn_busy.pop(task, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.TimeoutError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        state: ConnectionState,
        status: int,
        payload: Any,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """One complete JSON response with the negotiated framing headers.

        Error replies (4xx/5xx) carry the request's ``trace_id`` so a
        client-visible failure can be looked up in the trace store —
        the correlation id the batch error bodies used to lack.
        """
        state.status = status
        if (
            status >= 400
            and state.trace is not None
            and isinstance(payload, dict)
            and "trace_id" not in payload
        ):
            payload = {**payload, "trace_id": state.trace.trace_id}
            if state.root_span is not None:
                state.root_span.set_error(str(payload.get("error", "")))
        headers = {**state.response_headers(), **(extra_headers or {})}
        await send_json(
            writer, status, payload,
            extra_headers=headers, close=not state.keep_alive,
        )

    # ------------------------------------------------------------------
    def _untraced(self, request: Request) -> bool:
        return (
            request.path in self.UNTRACED_ROUTES
            or request.path.startswith("/debug/traces")
        )

    def _finish_trace(self, state: ConnectionState, route: str) -> None:
        """Close the request's root span and offer the trace for retention."""
        if state.trace is None or state.root_span is None:
            return
        root = state.root_span
        root.set_attr("route", route)
        if state.status is not None:
            root.set_attr("status", state.status)
            if state.status >= 400 and root.span.status == "ok":
                root.set_error(f"HTTP {state.status}")
        if state.broken and root.span.status == "ok":
            # A truncated stream (peer gone, worker killed mid-relay)
            # is an error outcome even though the status line said 200.
            root.set_error("response stream truncated")
        span = root.finish()
        assert self.trace_store is not None  # guarded at creation
        self.trace_store.offer(
            state.trace,
            route=route,
            status=span.status,
            duration_ms=span.duration * 1000.0,
            attrs={
                "dataset": span.attrs.get("dataset"),
                "tenant": span.attrs.get("tenant"),
                "template": span.attrs.get("template"),
            },
        )

    async def _handle_debug_traces(
        self, request: Request, writer: asyncio.StreamWriter,
        state: ConnectionState,
    ) -> None:
        """``GET /debug/traces`` (recent, filterable) and
        ``GET /debug/traces/<id>`` (full span tree) on either tier."""
        if request.method != "GET":
            raise ProtocolError(
                405, f"{request.method} not allowed on {request.path}"
            )
        if self.trace_store is None:
            raise UnavailableError("tracing is disabled on this process")
        if request.path == "/debug/traces":
            params = parse_qs(request.query)

            def _one(key: str) -> Optional[str]:
                values = params.get(key)
                return values[-1] if values else None

            min_ms: Optional[float] = None
            raw_min = _one("min_ms") or _one("min_duration_ms")
            if raw_min is not None:
                try:
                    min_ms = float(raw_min)
                except ValueError:
                    raise ProtocolError(400, f"bad min_ms value: {raw_min!r}")
            limit = 50
            raw_limit = _one("limit")
            if raw_limit is not None:
                try:
                    limit = max(1, min(500, int(raw_limit)))
                except ValueError:
                    raise ProtocolError(400, f"bad limit value: {raw_limit!r}")
            traces = self.trace_store.recent(
                limit=limit,
                min_duration_ms=min_ms,
                dataset=_one("dataset"),
                route=_one("route"),
            )
            await self._respond(
                writer, state, 200,
                {"traces": traces, "store": self.trace_store.stats()},
            )
            return
        trace_id = unquote(request.path[len("/debug/traces/"):])
        if not trace_id:
            raise ProtocolError(404, "no route for '/debug/traces/'")
        doc = await self._trace_document(trace_id)
        if doc is None:
            await self._respond(
                writer, state, 404,
                {"error": f"unknown trace {trace_id!r} (evicted, sampled "
                          "out, or never seen by this process)"},
            )
            return
        await self._respond(writer, state, 200, doc)

    async def _trace_document(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """Full trace document for one id (router overrides to stitch in
        the owning worker's spans)."""
        if self.trace_store is None:
            return None
        return self.trace_store.get(trace_id)

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        raise NotImplementedError  # pragma: no cover - subclasses route

    def _route_label(self, request: Request) -> str:
        """The ``route`` label for one request: a *bounded* route set.

        Subclasses collapse parameterised paths (``/datasets/<name>`` →
        ``/datasets/{name}``) and unknown paths to ``other`` so client
        typos cannot mint unbounded label cardinality.
        """
        return request.path

    # ------------------------------------------------------------------
    async def _metrics_text(self) -> str:
        """The exposition body of ``GET /metrics`` (router overrides to
        merge in its workers' re-labelled scrapes)."""
        return self.metrics.render()

    async def _respond_metrics(
        self, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        text = await self._metrics_text()
        state.status = 200
        await send_text(
            writer, 200, text,
            content_type=METRICS_CONTENT_TYPE,
            extra_headers=state.response_headers() or None,
            close=not state.keep_alive,
        )

    # ------------------------------------------------------------------
    def identity(self) -> Dict[str, Any]:
        """Stable process identity for ``/stats`` (who produced these
        numbers): pid, bound address, monotonic age.  An aggregating
        router keys per-worker counters on this block."""
        return {
            "pid": os.getpid(),
            "host": self.bound_host,
            "port": self.bound_port,
            "started_age_seconds": time.monotonic() - self.started_monotonic,
        }

    def server_stats(self) -> Dict[str, Any]:
        """The front-end-agnostic ``server`` block of ``/stats``."""
        return {
            "uptime_seconds": time.monotonic() - self.started_monotonic,
            "requests_total": self.requests_total,
            "identity": self.identity(),
            "connections": {
                "opened": self.connections_opened,
                "active": self.connections_active,
                "keepalive_reuses": self.keepalive_reuses,
                "idle_timeout_seconds": self.idle_timeout,
                "max_requests_per_connection": self.max_requests_per_connection,
            },
        }

    def stats(self) -> Dict[str, Any]:
        return {"server": self.server_stats()}

    # ------------------------------------------------------------------
    async def serve(self, host: str, port: int) -> "asyncio.AbstractServer":
        # limit= bounds the reader's buffer, so an oversized request head
        # overruns readuntil() at MAX_HEADER_BYTES instead of sitting in
        # asyncio's 64 KiB default buffer before our size check runs.
        # (Bodies are unaffected: readexactly() drains past the limit.)
        return await asyncio.start_server(
            self.handle_connection, host, port, limit=MAX_HEADER_BYTES
        )

    async def _drain_connections(self) -> None:
        """Finish in-flight requests, then cancel whatever remains.

        Idle keep-alive connections (parked between requests) are
        cancelled immediately — there is nothing to wait for.  Busy
        connections get ``drain_timeout`` seconds to finish their
        current response before being cancelled too.
        """
        busy, idle = [], []
        for conn_task, is_busy in list(self._conn_busy.items()):
            if conn_task.done():
                continue
            (busy if is_busy else idle).append(conn_task)
        for conn_task in idle:
            conn_task.cancel()
        if busy:
            _done, pending = await asyncio.wait(busy, timeout=self.drain_timeout)
            for conn_task in pending:
                conn_task.cancel()
        leftovers = [t for t in (*idle, *busy) if not t.done()]
        if leftovers:
            await asyncio.wait(leftovers, timeout=1.0)

    def _cleanup(self) -> None:
        """Tear down the app's resources after the connection drain.

        Runs in ``run_until_shutdown``'s ``finally`` even when the
        drain itself was cancelled (Ctrl-C).  Subclasses close what
        they own: the registry's shard executors, the router's worker
        pool.
        """

    async def run_until_shutdown(
        self,
        host: str,
        port: int,
        on_bound: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        """Serve until ``POST /shutdown`` (or cancellation), then clean up.

        Shutdown is graceful: the listener closes first (no new
        connections), open connections drain per
        :meth:`_drain_connections`, and only then does :meth:`_cleanup`
        release the app's resources.
        """
        server = await self.serve(host, port)
        sockets = server.sockets or ()
        bound = sockets[0].getsockname()[:2] if sockets else (host, port)
        self.bound_host, self.bound_port = bound[0], bound[1]
        if on_bound is not None:
            on_bound(bound[0], bound[1])
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            try:
                await self._drain_connections()
                await server.wait_closed()
            finally:
                # Even if the drain itself is cancelled (Ctrl-C), the
                # app's resources must still be torn down.
                self._cleanup()

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger for embedding runners."""
        self._shutdown.set()


class ServeApp(AsyncApp):
    """Route requests onto the registry and the async bridge."""

    def __init__(
        self,
        registry: Optional[DatasetRegistry] = None,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        max_workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        max_requests_per_connection: int = DEFAULT_MAX_REQUESTS_PER_CONNECTION,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        default_backend: Optional[str] = None,
        tenants: Optional[TenantTable] = None,
        trace_sample: float = DEFAULT_TRACE_SAMPLE,
        slow_query_ms: float = DEFAULT_SLOW_QUERY_MS,
        tracing: bool = True,
    ) -> None:
        super().__init__(
            idle_timeout=idle_timeout,
            max_requests_per_connection=max_requests_per_connection,
            drain_timeout=drain_timeout,
            trace_sample=trace_sample,
            slow_query_ms=slow_query_ms,
            tracing=tracing,
        )
        self.registry = registry if registry is not None else DatasetRegistry(
            max_entries=max_entries,
            max_workers=max_workers,
            queue_limit=queue_limit,
            default_backend=default_backend,
        )
        #: Optional tenant table (``--api-keys``): when set, ``POST
        #: /query`` requires a known ``X-API-Key`` and is metered per
        #: tenant (fair shares + quotas).
        self.tenants = tenants
        if tenants is not None:
            self.registry.set_tenant_weights(tenants.weights())
        self.registry.bind_metrics(self.metrics)
        self._m_stream_bytes = self.metrics.counter(
            "serve_stream_bytes_total",
            "NDJSON payload bytes streamed to query clients.",
            ("dataset",),
        )
        # Tenant families are registered unconditionally — with no
        # tenant table they render as empty families — so the metric
        # name set is identical with and without QoS enabled (the
        # docs-sync check depends on that).
        self._m_tenant_queries = self.metrics.counter(
            "serve_tenant_queries_total",
            "Queries admitted per tenant.",
            ("tenant",),
        )
        self._m_tenant_rejections = self.metrics.counter(
            "serve_tenant_rejections_total",
            "Per-tenant rejections by reason: queue, share or quota.",
            ("tenant", "reason"),
        )
        self.metrics.callback(
            "serve_tenant_quota_remaining", "gauge",
            "Queries left in the tenant's current per-minute quota window.",
            self._tenant_quota_samples,
        )

    def _tenant_quota_samples(self):
        if self.tenants is None:
            return []
        return [
            ({"tenant": name}, remaining)
            for name, (_, remaining) in sorted(self.tenants.quota_snapshot().items())
        ]

    def _resolve_tenant(self, request: Request) -> Optional[Tenant]:
        """The caller's tenant, or ``None`` when QoS is not configured.

        Raises :class:`AuthError` (→ 401) for a missing or unknown
        ``X-API-Key`` once a tenant table is loaded.
        """
        if self.tenants is None:
            return None
        return self.tenants.resolve(request.headers.get("x-api-key"))

    # ------------------------------------------------------------------
    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        route = (request.method, request.path)
        if route == ("GET", "/health"):
            await self._respond(
                writer, state, 200, {"ok": True, "datasets": len(self.registry)}
            )
        elif route == ("GET", "/stats"):
            await self._respond(writer, state, 200, self.stats())
        elif route == ("GET", "/metrics"):
            await self._respond_metrics(writer, state)
        elif route == ("GET", "/datasets"):
            await self._respond(
                writer,
                state,
                200,
                {
                    "datasets": [
                        self.registry.get(name).describe()
                        for name in self.registry.names()
                    ]
                },
            )
        elif route == ("POST", "/datasets"):
            await self._handle_register(request, writer, state)
        elif request.path.startswith("/datasets/") and len(request.path) > 10:
            if request.path.endswith("/events"):
                if request.method != "POST":
                    raise ProtocolError(
                        405, f"{request.method} not allowed on {request.path}"
                    )
                await self._handle_append(request, writer, state)
            elif request.method != "DELETE":
                raise ProtocolError(
                    405, f"{request.method} not allowed on {request.path}"
                )
            else:
                await self._handle_unregister(request, writer, state)
        elif route == ("POST", "/query"):
            await self._handle_query(request, writer, state)
        elif request.path == "/debug/traces" or request.path.startswith(
            "/debug/traces/"
        ):
            await self._handle_debug_traces(request, writer, state)
        elif route == ("POST", "/shutdown"):
            state.keep_alive = False
            await self._respond(writer, state, 200, {"ok": True, "stopping": True})
            self._shutdown.set()
        elif request.path in (
            "/health", "/stats", "/metrics", "/datasets", "/query", "/shutdown",
        ):
            raise ProtocolError(405, f"{request.method} not allowed on {request.path}")
        else:
            raise ProtocolError(404, f"no route for {request.path!r}")

    def _route_label(self, request: Request) -> str:
        if request.path in (
            "/health", "/stats", "/metrics", "/datasets", "/query", "/shutdown",
            "/debug/traces",
        ):
            return request.path
        if request.path.startswith("/debug/traces/"):
            return "/debug/traces/{id}"
        if request.path.startswith("/datasets/"):
            if request.path.endswith("/events"):
                return "/datasets/{name}/events"
            return "/datasets/{name}"
        return "other"

    # ------------------------------------------------------------------
    async def _handle_register(
        self, request: Request, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        doc = request.json()
        if not isinstance(doc, Mapping) or "name" not in doc or "dataset" not in doc:
            raise ProtocolError(
                400, "register body must be {'name': ..., 'dataset': {spec}}"
            )
        name = doc["name"]
        replace = bool(doc.get("replace", False))
        loop = asyncio.get_running_loop()
        # Materialising a workload can be seconds of numpy work — keep it
        # off the event loop so health checks and queries stay live.  The
        # registry reserves the name before building, so duplicates (racy
        # or not) are rejected without wasting a build.
        try:
            shard = await loop.run_in_executor(
                None,
                lambda: self.registry.register(
                    name,
                    doc["dataset"],
                    max_entries=doc.get("max_entries"),
                    max_workers=doc.get("max_workers"),
                    queue_limit=doc.get("queue_limit"),
                    default_backend=doc.get("default_backend"),
                    replace=replace,
                ),
            )
        except DuplicateDatasetError as exc:
            await self._respond(writer, state, 409, {"error": str(exc)})
            return
        await self._respond(writer, state, 201, {"registered": shard.describe()})

    async def _handle_unregister(
        self, request: Request, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        """``DELETE /datasets/<name>`` — close the shard and forget it.

        The router needs this for rebalancing (moving a dataset off a
        worker); operators need it standalone to reclaim a shard's
        index cache and thread pool without a restart.  Closing the
        executor waits for running queries (their admission slots are
        released by done-callbacks), so it runs off the event loop like
        registration does.
        """
        name = unquote(request.path[len("/datasets/"):])
        loop = asyncio.get_running_loop()
        # Raises UnknownDatasetError -> the connection loop answers 404.
        shard = await loop.run_in_executor(None, self.registry.remove, name)
        await self._respond(writer, state, 200, {"removed": shard.describe()})

    async def _handle_append(
        self, request: Request, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        """``POST /datasets/<name>/events`` — append an NDJSON event batch.

        The body is one event per line (``{"point": ..., "start": ...,
        "end": ...}``).  Appends are single-writer per shard
        (:meth:`~repro.serve.registry.DatasetShard.append_events` holds
        the shard's append lock) and bump the dataset epoch; the
        response reports the new epoch plus accepted/rejected counts.
        Parsing and index maintenance are CPU work, so they run off the
        event loop like registration does.
        """
        name = unquote(
            request.path[len("/datasets/"): -len("/events")]
        )
        if not name:
            raise ProtocolError(404, "no route for '/datasets//events'")
        if not request.body:
            raise ProtocolError(400, "event batch body must not be empty")
        # Raises UnknownDatasetError -> the connection loop answers 404.
        shard = self.registry.get(name)
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            None, shard.append_events, request.body
        )
        await self._respond(writer, state, 200, {"appended": report})

    async def _handle_query(
        self, request: Request, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        doc = request.json()
        if not isinstance(doc, Mapping):
            raise ProtocolError(400, "query body must be a JSON object")
        queries = doc.get("queries")
        if isinstance(doc.get("dataset"), Mapping):
            raise ProtocolError(
                400,
                "inline dataset specs are not accepted here; register the "
                "dataset via POST /datasets and query it by name",
            )
        name = doc.get("dataset")
        if not isinstance(name, str):
            raise ProtocolError(400, "query body needs a 'dataset' name")
        if not isinstance(queries, list) or not queries:
            raise ProtocolError(400, "query body needs a non-empty 'queries' list")
        include_records = bool(doc.get("include_records", True))

        tenant = self._resolve_tenant(request)  # may raise AuthError → 401
        shard = self.registry.get(name)
        root = state.root_span
        if root is not None:
            root.set_attr("dataset", name)
            if tenant is not None:
                root.set_attr("tenant", tenant.name)
        # Per-dataset default backend; precedence rules (explicit wins,
        # kind-aware) live in one place: engine.spec.apply_default_backend.
        queries = apply_default_backend(queries, shard.default_backend)
        plan_span = None
        if state.trace is not None and root is not None:
            plan_span = state.trace.start_span(
                "serve.plan", parent_id=root.span_id,
                attrs={"queries": len(queries)},
            )
        try:
            specs = []
            for i, q in enumerate(queries):
                try:
                    specs.append(QuerySpec.from_dict(q))
                except ValidationError as exc:
                    raise ValidationError(f"query #{i}: {exc}") from exc
            plans = plan_batch(specs, shard.tps)
        except ValidationError as exc:
            if plan_span is not None:
                plan_span.set_error(str(exc))
                plan_span.finish()
            raise
        if plan_span is not None:
            plan_span.finish()
        if root is not None and plans:
            root.set_attr("template", plans[0].template or plans[0].spec.kind)
        if tenant is not None:
            # Quota before admission: a breach must not consume queue
            # slots.  check_and_consume only commits on success, so a
            # rejected burst does not eat the next window either.
            retry_after = self.tenants.check_and_consume(tenant.name, len(plans))
            if retry_after is not None:
                self._m_tenant_rejections.labels(
                    tenant=tenant.name, reason="quota"
                ).inc(len(plans))
                raise OverloadedError(
                    f"tenant {tenant.name!r} exceeded its per-minute quota; "
                    "retry after the window resets",
                    retry_after=retry_after,
                    reason="quota",
                )
        before = shard.cache.stats.snapshot()
        try:
            # May raise OverloadedError → 429 (shard limit or fair share).
            futures = submit_plans(
                shard, plans, tenant=tenant.name if tenant is not None else None,
                recorder=state.trace,
                parent_span_id=root.span_id if root is not None else None,
            )
        except OverloadedError as exc:
            if tenant is not None:
                self._m_tenant_rejections.labels(
                    tenant=tenant.name, reason=exc.reason
                ).inc(len(plans))
            raise
        if tenant is not None:
            self._m_tenant_queries.labels(tenant=tenant.name).inc(len(plans))

        chunked = request.version != "HTTP/1.0"
        if not chunked:
            # HTTP/1.0 clients must never be sent chunked framing (RFC
            # 7230 §3.3.1): stream raw NDJSON delimited by connection
            # close instead, so the connection cannot be kept alive.
            state.keep_alive = False
        t0 = time.perf_counter()
        state.status = 200
        await start_stream(
            writer, 200,
            extra_headers=state.response_headers() or None,
            close=not state.keep_alive,
            chunked=chunked,
        )
        trace_id = state.trace.trace_id if state.trace is not None else None
        start_line = {"type": "batch-start", "dataset": name, "queries": len(plans)}
        if trace_id is not None:
            start_line["trace_id"] = trace_id
        streamed = await send_chunk(writer, start_line, chunked=chunked)
        n_errors = 0
        try:
            for i, future in enumerate(futures):
                result = await future
                if not result.ok:
                    n_errors += 1
                for line in _result_lines(i, result, include_records,
                                          trace_id=trace_id):
                    streamed += await send_chunk(writer, line, chunked=chunked)
            end_line = {
                "type": "batch-end",
                "dataset": name,
                "queries": len(plans),
                "errors": n_errors,
                "ok": n_errors == 0,
                "wall_seconds": time.perf_counter() - t0,
                "cache": shard.cache.stats.snapshot().since(before).as_dict(),
            }
            if trace_id is not None:
                end_line["trace_id"] = trace_id
            streamed += await send_chunk(writer, end_line, chunked=chunked)
            if n_errors and root is not None:
                # Per-query failures stream inside a 200 body; the root
                # span still records them so the trace is never sampled
                # away and `status=error` is searchable.
                root.set_error(f"{n_errors} of {len(plans)} queries failed")
            if chunked:
                await end_chunked(writer)
        except asyncio.CancelledError:
            # Cancelled mid-stream (shutdown drain, task teardown): the
            # chunked body has no terminator, so this connection can
            # never carry another response — mark it broken and close
            # the transport *now* so no later write can interleave with
            # the half-written stream, then let cancellation propagate.
            state.broken = True
            writer.close()
            raise
        except Exception:
            # The response status line is already on the wire: a second
            # one (a 500 reply) would splice a malformed response into
            # the chunked body.  Whatever went wrong mid-stream —
            # client hang-up, socket error, a worker torn down by
            # shutdown — the only sound move is to stop writing; the
            # truncated stream (no terminal 0-chunk) tells the client
            # the batch did not finish, and in-flight work still
            # completes on the shard executor, releasing admission via
            # the done-callbacks.  ``broken`` makes the connection loop
            # close the socket instead of reusing it.
            state.broken = True
        finally:
            # Counted whether or not the stream finished: a truncated
            # stream's bytes still crossed the wire.
            self._m_stream_bytes.labels(dataset=name).inc(streamed)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        server = self.server_stats()
        server["datasets"] = len(self.registry)
        if self.tenants is not None:
            server["tenants"] = self.tenants.names()
        return {"server": server, "shards": self.registry.stats()}

    def _cleanup(self) -> None:
        self.registry.close()


def _result_lines(index: int, result: QueryResult, include_records: bool,
                  trace_id: Optional[str] = None):
    """The NDJSON lines one finished query contributes to the stream.

    Every ``result`` line — success or per-query error — carries the
    request's ``trace_id`` so a client can correlate any line of the
    envelope with the stored trace.
    """
    if result.ok and include_records:
        for tau, records in result.records_by_tau.items():
            yield {
                "type": "records",
                "query": index,
                "tau": tau,
                "count": len(records),
                "records": [record_to_dict(r) for r in records],
            }
    line = {
        "type": "result",
        "query": index,
        "label": result.spec.label,
        "kind": result.spec.kind,
        "taus": list(result.spec.taus),
        "ok": result.ok,
        "error": result.error,
        "counts": {str(tau): len(r) for tau, r in result.records_by_tau.items()},
        "cache_hit": result.cache_hit,
        "build_seconds": result.build_seconds,
        "query_seconds": result.query_seconds,
    }
    if trace_id is not None:
        line["trace_id"] = trace_id
    if result.stages:
        line["stages"] = [dict(s) for s in result.stages]
    yield line


# ----------------------------------------------------------------------
def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    registry: Optional[DatasetRegistry] = None,
    max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    max_workers: Optional[int] = None,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    max_requests_per_connection: int = DEFAULT_MAX_REQUESTS_PER_CONNECTION,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    default_backend: Optional[str] = None,
    datasets: Optional[Mapping[str, Mapping[str, Any]]] = None,
    api_keys: Optional[str] = None,
    trace_sample: float = DEFAULT_TRACE_SAMPLE,
    slow_query_ms: float = DEFAULT_SLOW_QUERY_MS,
    announce=None,
) -> None:
    """Blocking entry point for ``python -m repro serve``."""
    app = ServeApp(
        registry=registry,
        max_entries=max_entries,
        max_workers=max_workers,
        queue_limit=queue_limit,
        idle_timeout=idle_timeout,
        max_requests_per_connection=max_requests_per_connection,
        drain_timeout=drain_timeout,
        default_backend=default_backend,
        tenants=TenantTable.from_file(api_keys) if api_keys else None,
        trace_sample=trace_sample,
        slow_query_ms=slow_query_ms,
    )
    for name, spec in (datasets or {}).items():
        app.registry.register(name, spec)

    on_bound = None
    if announce is not None:
        on_bound = lambda h, p: announce(h, p, app)
    try:
        asyncio.run(app.run_until_shutdown(host, port, on_bound=on_bound))
    except KeyboardInterrupt:
        pass


class ServerHandle:
    """An in-process front end running on a background thread.

    Used by the tests, the bench drivers and the example client: start
    on an ephemeral port, poke it over real sockets, stop it cleanly.
    Works for any :class:`AsyncApp` (serve or router).
    """

    def __init__(self, app: AsyncApp, host: str, port: int,
                 thread: threading.Thread, loop: asyncio.AbstractEventLoop) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        """Request shutdown and join the server thread (idempotent)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.app.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise RuntimeError("server thread did not stop in time")


def start_app_thread(
    app: AsyncApp,
    host: str = "127.0.0.1",
    port: int = 0,
    boot_timeout: float = 15.0,
    thread_name: str = "repro-serve",
) -> ServerHandle:
    """Run any :class:`AsyncApp` on a daemon thread; returns once bound."""
    booted = threading.Event()
    state: Dict[str, Any] = {}

    def _run() -> None:
        def on_bound(bound_host: str, bound_port: int) -> None:
            state["host"], state["port"] = bound_host, bound_port
            state["loop"] = asyncio.get_running_loop()
            booted.set()

        try:
            asyncio.run(app.run_until_shutdown(host, port, on_bound=on_bound))
        except BaseException as exc:  # pragma: no cover - surfaced via boot
            state["error"] = exc
            booted.set()

    thread = threading.Thread(target=_run, name=thread_name, daemon=True)
    thread.start()
    if not booted.wait(boot_timeout) or "error" in state:
        raise RuntimeError(f"server failed to boot: {state.get('error')!r}")
    return ServerHandle(app, state["host"], state["port"], thread, state["loop"])


def start_server_thread(
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[DatasetRegistry] = None,
    max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    max_workers: Optional[int] = None,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    max_requests_per_connection: int = DEFAULT_MAX_REQUESTS_PER_CONNECTION,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    default_backend: Optional[str] = None,
    tenants: Optional[TenantTable] = None,
    trace_sample: float = DEFAULT_TRACE_SAMPLE,
    slow_query_ms: float = DEFAULT_SLOW_QUERY_MS,
    tracing: bool = True,
    boot_timeout: float = 15.0,
) -> ServerHandle:
    """Start a server on a daemon thread; returns once it is listening."""
    app = ServeApp(
        registry=registry,
        max_entries=max_entries,
        max_workers=max_workers,
        queue_limit=queue_limit,
        idle_timeout=idle_timeout,
        max_requests_per_connection=max_requests_per_connection,
        drain_timeout=drain_timeout,
        default_backend=default_backend,
        tenants=tenants,
        trace_sample=trace_sample,
        slow_query_ms=slow_query_ms,
        tracing=tracing,
    )
    return start_app_thread(app, host, port, boot_timeout=boot_timeout)
