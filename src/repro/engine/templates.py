"""Plan templates: the open registry behind ``QuerySpec.kind``.

Historically the planner dispatched on a closed ``KINDS`` enum — every
new pattern shape meant editing spec, planner, executor, serve, router
and CLI.  This module turns the kind column into a registry of
:class:`PlanTemplate` objects: a template owns the mapping from a spec
to an executable :class:`~repro.engine.planner.QueryPlan`, and every
layer above the planner is template-agnostic.

The paper's four index families arrive as built-in templates (one per
legacy kind, so ``KINDS`` keeps meaning what it always meant) whose
plan functions go through the backend-registry descriptor hooks —
their emitted :class:`~repro.engine.cache.IndexKey` values are
bit-identical to the pre-registry planner's, so caches survive the
refactor (asserted by ``tests/test_backends.py::TestKeyStability``).
The ``pattern-dsl`` template compiles :mod:`repro.lang` patterns onto
staged plans over the same keys.

Registering a new pattern shape is now a local edit::

    from repro.engine import PlanTemplate, register_template

    register_template(PlanTemplate(
        name="my-shape",
        plan=my_plan_function,          # (order, spec, tps, registry) -> QueryPlan
        description="what it reports",
    ))

after which ``QuerySpec(kind="my-shape", ...)`` validates and executes
everywhere — engine, batch CLI, serve and router included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ValidationError
from .spec import KINDS

__all__ = [
    "PlanTemplate",
    "register_template",
    "get_template",
    "template_names",
]

#: (order, spec, tps, registry) -> QueryPlan
PlanFn = Callable[[int, Any, Any, Any], Any]


@dataclass(frozen=True)
class PlanTemplate:
    """One registered query kind: a name plus its plan function."""

    name: str
    plan: PlanFn
    description: str = field(default="")

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError(
                f"template name must be a non-empty string, got {self.name!r}"
            )


_TEMPLATES: Dict[str, PlanTemplate] = {}


def register_template(template: PlanTemplate, replace: bool = False) -> PlanTemplate:
    """Install a template; ``QuerySpec`` accepts its name immediately."""
    if template.name in _TEMPLATES and not replace:
        raise ValidationError(
            f"template {template.name!r} is already registered; "
            "pass replace=True to overwrite"
        )
    _TEMPLATES[template.name] = template
    return template


def get_template(name: str) -> PlanTemplate:
    template = _TEMPLATES.get(name)
    if template is None:
        raise ValidationError(
            f"unknown query kind {name!r}; "
            f"expected one of {', '.join(_TEMPLATES)}"
        )
    return template


def template_names() -> Tuple[str, ...]:
    """Registered kinds, in registration order (legacy kinds first)."""
    return tuple(_TEMPLATES)


# ----------------------------------------------------------------------
# Built-in templates
# ----------------------------------------------------------------------
def _plan_legacy(order: int, spec: Any, tps: Any, registry: Optional[Any]):
    """The descriptor-hook path every legacy kind lowers through."""
    from ..backends.registry import default_registry
    from .planner import QueryPlan, runner_for

    reg = registry if registry is not None else default_registry()
    descriptor = reg.resolve(spec, tps).descriptor
    return QueryPlan(
        order=order,
        spec=spec,
        key=descriptor.index_identity(spec, tps.fingerprint()),
        builder=descriptor.make_builder(spec, tps),
        runner=runner_for(spec),
        template=spec.kind,
    )


def _plan_pattern(order: int, spec: Any, tps: Any, registry: Optional[Any]):
    from ..lang.compiler import compile_pattern

    return compile_pattern(order, spec, tps, registry)


_LEGACY_DESCRIPTIONS = {
    "triangles": "durable triangles (Algorithm 1 / exact ℓ∞ solver)",
    "cliques": "durable m-cliques (Appendix D.2)",
    "paths": "durable m-paths (Appendix D.2)",
    "stars": "durable m-stars (Appendix D.2)",
    "pairs-sum": "SUM aggregate-durable pairs (Theorem 5.1)",
    "pairs-union": "UNION aggregate-durable pairs (Theorem 5.2)",
}

for _kind in KINDS:
    register_template(
        PlanTemplate(
            name=_kind,
            plan=_plan_legacy,
            description=_LEGACY_DESCRIPTIONS.get(_kind, ""),
        )
    )

register_template(
    PlanTemplate(
        name="pattern-dsl",
        plan=_plan_pattern,
        description="declarative composite patterns compiled onto the "
        "legacy index primitives (see docs/query_language.md)",
    )
)
