"""The durable-ball structures ``D`` and ``D'`` (Section 2.2).

``D`` composes a spatial decomposition (cover tree or grid) with one
:class:`~repro.temporal.dominance.DominanceIndex` per canonical ball.
Its query ``durableBallQ(p, τ, ε)`` returns, as implicitly-represented
canonical subsets, every point ``q`` with

* ``φ(p, q) ≤ 1`` (possibly up to ``1 + ε``),
* ``(I⁻_q, id_q) <lex (I⁻_p, id_p)``  (``p`` anchors; DESIGN.md note 1), and
* ``I⁺_q ≥ I⁻_p + τ``  (equivalently ``|I_p ∩ I_q| ≥ τ`` and ``I⁻_p ∈ I_q``).

``D'`` extends the query with the split threshold ``τ≺`` of Section 4,
partitioning each subset into ``Λ`` (ends inside ``[I⁻_p+τ, I⁻_p+τ≺)``)
and ``Λ̄`` (ends ``≥ I⁻_p + τ≺``).  Both run over the same structure here
(the dominance index supports the split natively), so there is no extra
log factor in this implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ValidationError
from ..structures.decomposition import (
    GEOMETRY_SLACK,
    CanonicalGroup,
    SpatialDecomposition,
)
from ..temporal.dominance import DominanceIndex, RunSet
from ..types import TemporalPointSet

__all__ = [
    "BallSubset",
    "SplitBallSubset",
    "DurableBallStructure",
    "make_decomposition",
    "resolve_backend",
]

_INF = float("inf")


def resolve_backend(backend: str) -> str:
    """Canonical *structure-level* backend name: ``auto`` resolves to
    the cover tree (the paper's general-metric structure).

    This is the fallback rule for code paths that construct a
    :class:`DurableBallStructure` directly with ``backend="auto"`` (the
    dynamic/incremental sessions, ad-hoc scripts); the engine planner
    resolves ``auto`` earlier — through the backend registry's cost
    model (:meth:`repro.backends.registry.BackendRegistry.resolve`) —
    and always hands the index classes a concrete name, which this
    function leaves untouched.  The ``cache_key()`` hooks on the index
    classes rely on that: a cached index's identity always carries the
    concrete backend that built it.
    """
    return "cover-tree" if backend == "auto" else backend


def make_decomposition(
    tps: TemporalPointSet, resolution: float, backend: str = "auto"
) -> SpatialDecomposition:
    """Build the spatial decomposition for a point set.

    ``backend`` is ``"auto"`` (cover tree, the paper's general-metric
    structure) or the name of any *spatial* backend registered on the
    backend registry — ``"cover-tree"`` and ``"grid"`` out of the box.
    Unknown names raise :class:`~repro.errors.BackendError` listing the
    registered spatial backends.
    """
    # Imported here, not at module scope: the registry's built-in
    # descriptors construct the index classes, which import this module.
    from ..backends.registry import default_registry

    backend = resolve_backend(backend)
    descriptor = default_registry().get_spatial(backend)
    return descriptor.decomposition_factory(tps.points, tps.metric, resolution)


@dataclass(slots=True)
class BallSubset:
    """One canonical subset ``C_{p,j}`` returned by ``durableBallQ``."""

    group: CanonicalGroup
    members: RunSet

    @property
    def count(self) -> int:
        return self.members.count

    def ids(self) -> List[int]:
        return self.members.ids()


@dataclass(slots=True)
class SplitBallSubset:
    """One canonical subset split into ``Λ`` / ``Λ̄`` (``durableBallQ'``)."""

    group: CanonicalGroup
    lam: RunSet
    lam_bar: RunSet

    @property
    def count(self) -> int:
        return self.lam.count + self.lam_bar.count


class DurableBallStructure:
    """``D`` / ``D'``: spatial decomposition + per-ball dominance indexes.

    Parameters
    ----------
    tps:
        The temporal point set ``(P, φ, I)``.
    resolution:
        Maximum canonical-ball radius; the triangle algorithms pass
        ``ε/4`` (see Algorithm 1's use of ``durableBallQ(p, τ, ε/2)``).
    backend:
        Spatial backend (``"cover-tree"``, ``"grid"``, ``"auto"``).
    """

    def __init__(
        self,
        tps: TemporalPointSet,
        resolution: float,
        backend: str = "auto",
    ) -> None:
        if resolution <= 0:
            raise ValidationError(f"resolution must be positive, got {resolution!r}")
        self.tps = tps
        self.resolution = float(resolution)
        self.decomposition = make_decomposition(tps, self.resolution, backend)
        self.indexes: List[DominanceIndex] = []
        for g in self.decomposition.groups:
            ids = g.member_ids
            self.indexes.append(
                DominanceIndex(
                    [float(tps.starts[i]) for i in ids],
                    [float(tps.ends[i]) for i in ids],
                    ids,
                )
            )

    # ------------------------------------------------------------------
    def extended(self, tps: TemporalPointSet) -> Optional["DurableBallStructure"]:
        """A structure over ``tps``, which must append points to this one.

        Incremental maintenance (the online framing of Section 4 /
        Appendix C): if the spatial decomposition supports in-place-
        equivalent extension (the grid does — cells are absolute), the
        returned structure reuses every untouched canonical group *and*
        its dominance index, rebuilding dominance indexes only for
        groups that gained members.  Returns ``None`` when the
        decomposition cannot be extended (e.g. the cover tree, whose
        net hierarchy depends on global structure) — callers then fall
        back to a full rebuild.  This instance is never mutated, so
        concurrent readers of the old epoch stay consistent.
        """
        if getattr(self.decomposition, "extended", None) is None:
            return None
        n_old = self.tps.n
        if tps.n <= n_old:
            raise ValidationError(
                f"extension target has {tps.n} points, need more than {n_old}"
            )
        decomposition, changed = self.decomposition.extended(tps.points[n_old:])
        clone = object.__new__(DurableBallStructure)
        clone.tps = tps
        clone.resolution = self.resolution
        clone.decomposition = decomposition
        indexes = list(self.indexes)
        indexes.extend([None] * (len(decomposition.groups) - len(indexes)))
        for gi in changed:
            ids = decomposition.groups[gi].member_ids
            indexes[gi] = DominanceIndex(
                [float(tps.starts[i]) for i in ids],
                [float(tps.ends[i]) for i in ids],
                ids,
            )
        clone.indexes = indexes
        return clone

    # ------------------------------------------------------------------
    @property
    def groups(self) -> Sequence[CanonicalGroup]:
        return self.decomposition.groups

    def group_index_of(self, point_id: int) -> int:
        """The canonical group containing a point."""
        return int(self.decomposition.group_of[point_id])

    # ------------------------------------------------------------------
    def query(
        self,
        anchor: int,
        tau: float,
        radius: float = 1.0,
        min_end: Optional[float] = None,
    ) -> List[BallSubset]:
        """``durableBallQ(p, τ, ·)`` for anchor point ``p = anchor``.

        Returns only non-empty canonical subsets.  ``radius`` widens the
        spatial ball for the pattern extensions of Appendix D (paths use
        ``m−1``, stars use ``2``).  ``min_end`` optionally *raises* the
        temporal threshold above ``I⁻_p + τ`` (used by activation
        search).
        """
        sp = float(self.tps.starts[anchor])
        key = (sp, int(anchor))
        threshold = sp + tau if min_end is None else max(sp + tau, min_end)
        out: List[BallSubset] = []
        for gi in self.decomposition.candidate_groups(self.tps.points[anchor], radius):
            runs = self.indexes[gi].stab(key, threshold)
            if not runs.is_empty:
                out.append(BallSubset(self.decomposition.groups[gi], runs))
        return out

    def query_split(
        self,
        anchor: int,
        tau: float,
        tau_prec: float,
        radius: float = 1.0,
    ) -> List[SplitBallSubset]:
        """``durableBallQ'(p, τ, τ≺, ·)`` — Section 4's refined partitioning.

        ``Λ`` holds partners whose lifespan ends inside
        ``[I⁻_p + τ, I⁻_p + τ≺)``; ``Λ̄`` those ending at or after
        ``I⁻_p + τ≺``.  Only subsets with at least one member in either
        part are returned.
        """
        if tau_prec < tau:
            raise ValidationError(
                f"tau_prec ({tau_prec!r}) must be at least tau ({tau!r})"
            )
        sp = float(self.tps.starts[anchor])
        key = (sp, int(anchor))
        lo = sp + tau
        split = sp + tau_prec if tau_prec != _INF else _INF
        out: List[SplitBallSubset] = []
        for gi in self.decomposition.candidate_groups(self.tps.points[anchor], radius):
            lam, lam_bar = self.indexes[gi].stab_split(key, lo, split)
            if lam.count or lam_bar.count:
                out.append(
                    SplitBallSubset(self.decomposition.groups[gi], lam, lam_bar)
                )
        return out

    # ------------------------------------------------------------------
    def linked(self, a: CanonicalGroup, b: CanonicalGroup, threshold: float = 1.0) -> bool:
        """Pairing test of Algorithm 1: ``φ(Rep_i, Rep_j) ≤ 1 + r_i + r_j``."""
        d = self.decomposition.metric.dist(a.rep, b.rep)
        return d <= threshold + a.radius_bound + b.radius_bound + GEOMETRY_SLACK
