"""Tests for the dominance index (temporal layer of D / D', Section 2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.temporal import DominanceIndex

from conftest import random_intervals


def make_index(ivs, ids=None):
    ids = list(range(len(ivs))) if ids is None else ids
    return DominanceIndex([a for a, _ in ivs], [b for _, b in ivs], ids)


def brute(ivs, ids, key, y_lo, y_hi=float("inf")):
    return sorted(
        pid
        for (lo, hi), pid in zip(ivs, ids)
        if (lo, pid) < key and y_lo <= hi < y_hi
    )


class TestStab:
    def test_empty(self):
        idx = DominanceIndex([], [], [])
        rs = idx.stab((0.0, 0), 0.0)
        assert rs.is_empty and rs.count == 0 and rs.ids() == []

    def test_strict_key_excludes_self(self):
        # A point whose (start, id) equals the key must not be returned.
        idx = make_index([(5.0, 10.0)], ids=[3])
        assert idx.stab((5.0, 3), 6.0).ids() == []
        assert idx.stab((5.0, 4), 6.0).ids() == [3]

    def test_end_threshold_inclusive(self):
        idx = make_index([(0.0, 10.0)])
        assert idx.stab((5.0, 99), 10.0).ids() == [0]
        assert idx.stab((5.0, 99), 10.0001).ids() == []

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute(self, seed):
        ivs = random_intervals(70, seed=seed)
        ids = list(range(len(ivs)))
        idx = make_index(ivs)
        rng = np.random.default_rng(seed)
        for _ in range(25):
            key = (float(rng.integers(0, 50)), int(rng.integers(0, 70)))
            y = float(rng.integers(0, 70))
            got = sorted(idx.stab(key, y).ids())
            assert got == brute(ivs, ids, key, y)

    @pytest.mark.parametrize("seed", range(4))
    def test_range_variant(self, seed):
        ivs = random_intervals(50, seed=seed + 7)
        ids = list(range(len(ivs)))
        idx = make_index(ivs)
        rng = np.random.default_rng(seed)
        for _ in range(20):
            key = (float(rng.integers(0, 50)), int(rng.integers(0, 50)))
            y1 = float(rng.integers(0, 60))
            y2 = y1 + float(rng.integers(0, 20))
            got = sorted(idx.stab(key, y1, y2).ids())
            assert got == brute(ivs, ids, key, y1, y2)


class TestSplit:
    @pytest.mark.parametrize("seed", range(5))
    def test_split_partitions_stab(self, seed):
        ivs = random_intervals(60, seed=seed + 50)
        idx = make_index(ivs)
        rng = np.random.default_rng(seed)
        for _ in range(20):
            key = (float(rng.integers(0, 50)), int(rng.integers(0, 60)))
            y = float(rng.integers(0, 50))
            split = y + float(rng.integers(0, 25))
            lam, lam_bar = idx.stab_split(key, y, split)
            all_ids = sorted(idx.stab(key, y).ids())
            assert sorted(lam.ids() + lam_bar.ids()) == all_ids
            ends = {pid: hi for (lo, hi), pid in zip(ivs, range(len(ivs)))}
            for pid in lam.ids():
                assert y <= ends[pid] < split
            for pid in lam_bar.ids():
                assert ends[pid] >= split


class TestEnumeration:
    def test_iter_desc_order(self):
        ivs = random_intervals(80, seed=3)
        idx = make_index(ivs)
        rs = idx.stab((30.0, 10**9), 5.0)
        seq = list(rs.iter_desc_by_end())
        assert [pid for _, pid in seq] != [] or rs.count == 0
        ends = [e for e, _ in seq]
        assert ends == sorted(ends, reverse=True)
        assert sorted(pid for _, pid in seq) == sorted(rs.ids())

    def test_first_ids_prefix(self):
        ivs = random_intervals(40, seed=9)
        idx = make_index(ivs)
        rs = idx.stab((25.0, 10**9), 3.0)
        for k in (0, 1, 2, 5):
            got = rs.first_ids(k)
            assert len(got) == min(k, rs.count)
            assert set(got) <= set(rs.ids())

    def test_count_matches_len_ids(self):
        ivs = random_intervals(55, seed=21)
        idx = make_index(ivs)
        for key0 in (0.0, 10.0, 30.0, 60.0):
            rs = idx.stab((key0, 10**9), 12.0)
            assert rs.count == len(rs.ids())

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_random(self, seed):
        ivs = random_intervals(30, seed=seed)
        ids = list(range(len(ivs)))
        idx = make_index(ivs)
        rng = np.random.default_rng(seed)
        key = (float(rng.integers(0, 50)), int(rng.integers(0, 30)))
        y = float(rng.integers(0, 60))
        rs = idx.stab(key, y)
        assert sorted(rs.ids()) == brute(ivs, ids, key, y)
        assert rs.count == len(rs.ids())
        desc = [e for e, _ in rs.iter_desc_by_end()]
        assert desc == sorted(desc, reverse=True)


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DominanceIndex([0.0], [1.0, 2.0], [0])

    def test_duplicate_starts_tie_break(self):
        # Same start, different ids: only ids below the key id qualify.
        idx = DominanceIndex([5.0, 5.0, 5.0], [9.0, 9.0, 9.0], [0, 1, 2])
        assert sorted(idx.stab((5.0, 2), 6.0).ids()) == [0, 1]
        assert sorted(idx.stab((5.0, 0), 6.0).ids()) == []
