#!/usr/bin/env python3
"""Per-backend build/query benchmark → ``BENCH_backends.json``.

This is the calibration loop behind ``backend="auto"``: for every
registered backend eligible for a (dataset shape, query kind) pair, the
bench builds the index from scratch (no cache — builds are the point),
times a τ-sweep query, fits cost-model coefficients from the raw
measurements (:func:`repro.backends.cost.fit_coefficients`), and
records what ``auto`` would choose per shape under both the shipped
default coefficients and the freshly fitted ones.

The output JSON is uploaded as a CI artifact next to ``BENCH_smoke.json``
and ``BENCH_serve.json``; feed it back with
``CostModel.from_bench(json.load(open("BENCH_backends.json")))`` to
recalibrate a registry for your own hardware or data.

Usage::

    python benchmarks/bench_backends.py [--n 400] [--repeat 2]
                                        [--out BENCH_backends.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.backends import CostModel, default_registry, fit_coefficients
from repro.backends.cost import QueryFeatures
from repro.datasets import workload_from_spec
from repro.engine import QuerySpec

#: Dataset shapes (≥ 2, per the acceptance criterion): a general ℓ2
#: cloud and an ℓ∞ cloud where the exact backend competes too.
SHAPES = [
    {"name": "uniform-l2", "workload": "uniform", "metric": "l2", "seed": 0},
    {"name": "uniform-linf", "workload": "uniform", "metric": "linf", "seed": 1},
]

#: One spec per index family; the τ-sweep sizes the per-report term.
KIND_SPECS = [
    {"kind": "triangles", "taus": [4.0, 8.0]},
    {"kind": "pairs-sum", "taus": [6.0, 10.0]},
    {"kind": "pairs-union", "taus": [6.0], "kappa": 3},
    {"kind": "cliques", "taus": [4.0], "m": 3},
]


def _measure(builder, runner, taus, repeat: int):
    """Best-of-``repeat`` build and query wall times (fresh build each)."""
    build_s, query_s = float("inf"), float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        index = builder()
        build_s = min(build_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for tau in taus:
            runner(index, tau)
        query_s = min(query_s, time.perf_counter() - t0)
    return build_s, query_s


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=400, help="points per shape")
    parser.add_argument("--repeat", type=int, default=2,
                        help="timing repetitions (best-of)")
    parser.add_argument("--out", default="BENCH_backends.json")
    parser.add_argument(
        "--min-vector-speedup", type=float, default=5.0,
        help="required vector-over-grid build+query speedup (best shape); "
             "enforced only at --n >= 5000, where the SoA kernels have "
             "real batches to amortise over (0 disables the gate)",
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")
    if args.n < 10:
        parser.error(f"--n must be >= 10 for meaningful timings, got {args.n}")

    registry = default_registry()
    # The runner closure lives on the planner; reuse it via a plan so
    # the bench exercises exactly the dispatch surface production uses.
    from repro.engine.planner import _runner_for  # noqa: PLC2701 - bench-only

    measurements = []
    auto_choices = {}
    for shape in SHAPES:
        spec_src = {k: v for k, v in shape.items() if k != "name"}
        tps = workload_from_spec({**spec_src, "n": args.n})
        auto_choices[shape["name"]] = {}
        for kind_spec in KIND_SPECS:
            spec = QuerySpec(**kind_spec)
            resolution = registry.resolve(spec, tps)
            auto_choices[shape["name"]][spec.kind] = {
                "chosen": resolution.name,
                "reason": resolution.reason,
                "estimated_costs": resolution.costs,
            }
            for descriptor in registry.serving(spec.kind):
                if not descriptor.supports_metric(tps.metric):
                    continue
                build_s, query_s = _measure(
                    descriptor.make_builder(spec, tps),
                    _runner_for(spec),
                    spec.taus,
                    args.repeat,
                )
                row = {
                    "shape": shape["name"],
                    "kind": spec.kind,
                    "backend": descriptor.name,
                    "n": tps.n,
                    "dim": tps.dim,
                    "metric": tps.metric.name,
                    "n_taus": len(spec.taus),
                    "build_seconds": build_s,
                    "query_seconds": query_s,
                }
                measurements.append(row)
                print(
                    f"{shape['name']:>13} {spec.kind:<11} {descriptor.name:<11}"
                    f" build {build_s * 1e3:8.1f} ms  query {query_s * 1e3:8.1f} ms",
                    file=sys.stderr,
                )

    # Vector-over-grid speedup ratios per (shape, kind): the SoA
    # backend's reason to exist, recorded so regressions are visible in
    # the artifact and gated below at calibration scale.
    by_key = {(m["shape"], m["kind"], m["backend"]): m for m in measurements}
    speedups = {}
    for shape in SHAPES:
        for kind_spec in KIND_SPECS:
            grid = by_key.get((shape["name"], kind_spec["kind"], "grid"))
            vec = by_key.get((shape["name"], kind_spec["kind"], "vector"))
            if grid is None or vec is None:
                continue
            entry = {
                "build": grid["build_seconds"] / max(vec["build_seconds"], 1e-12),
                "query": grid["query_seconds"] / max(vec["query_seconds"], 1e-12),
                "build_plus_query": (
                    (grid["build_seconds"] + grid["query_seconds"])
                    / max(vec["build_seconds"] + vec["query_seconds"], 1e-12)
                ),
            }
            speedups.setdefault(shape["name"], {})[kind_spec["kind"]] = entry
            print(
                f"{shape['name']:>13} {kind_spec['kind']:<11} vector/grid"
                f" speedup: build {entry['build']:5.2f}x"
                f" query {entry['query']:5.2f}x"
                f" b+q {entry['build_plus_query']:5.2f}x",
                file=sys.stderr,
            )
    best_speedup = max(
        (
            entry["build_plus_query"]
            for per_kind in speedups.values()
            for entry in per_kind.values()
        ),
        default=0.0,
    )
    if args.n >= 5000 and args.min_vector_speedup > 0:
        if best_speedup < args.min_vector_speedup:
            print(
                f"FAIL vector best build+query speedup over grid is "
                f"{best_speedup:.2f}x at n={args.n}, required "
                f">= {args.min_vector_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"vector speedup gate OK: best build+query {best_speedup:.2f}x "
            f">= {args.min_vector_speedup:.2f}x",
            file=sys.stderr,
        )

    fitted = fit_coefficients(measurements)
    fitted_model = CostModel(fitted)
    # Sanity gate: a fit that prices any backend at zero (or below)
    # would make auto dispatch degenerate — fail CI loudly.
    for name, coef in fitted.items():
        if coef.build <= 0 or coef.query <= 0:
            print(f"FAIL degenerate fit for {name}: {coef}", file=sys.stderr)
            return 1

    features = {
        shape["name"]: QueryFeatures(n=args.n, dim=2, metric=shape["metric"])
        for shape in SHAPES
    }
    payload = {
        "bench": "backends",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "n": args.n,
        "repeat": args.repeat,
        "shapes": SHAPES,
        "measurements": measurements,
        "vector_speedup_over_grid": speedups,
        "best_vector_speedup": best_speedup,
        "coefficients": {n: c.as_dict() for n, c in fitted.items()},
        "default_coefficients": registry.cost_model.as_dict(),
        "auto_choices": auto_choices,
        "fitted_estimates": {
            name: {
                backend: fitted_model.estimate(backend, feats)
                for backend in fitted
            }
            for name, feats in features.items()
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}: {len(measurements)} measurements, "
          f"{len(fitted)} backends fitted")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
