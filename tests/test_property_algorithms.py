"""Hypothesis property tests at the whole-algorithm level.

These hammer the end-to-end guarantees with adversarial inputs that the
seeded random suites do not produce: coincident points, duplicated
timestamps, fractional durations, extreme aspect ratios and degenerate
lifespans.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import DurableTriangleIndex, IncrementalTriangleSession, TemporalPointSet
from repro.baselines import brute_force_triangle_keys, triangle_bounds
from repro.baselines.brute_incremental import brute_delta_keys
from repro.core.linf import LinfTriangleIndex

# Small-but-nasty instance generator: coordinates and times drawn from a
# tiny grid so coincidences (equal starts, zero-length lifespans,
# duplicate points) are common.
coords = st.integers(0, 6).map(lambda v: v / 2.0)
times = st.integers(0, 12).map(float)
durs = st.integers(0, 8).map(float)


@st.composite
def instances(draw, max_n=14):
    n = draw(st.integers(3, max_n))
    pts = [[draw(coords), draw(coords)] for _ in range(n)]
    starts = [draw(times) for _ in range(n)]
    lengths = [draw(durs) for _ in range(n)]
    ends = [s + l for s, l in zip(starts, lengths)]
    return np.array(pts), np.array(starts), np.array(ends)


class TestTriangleProperties:
    @given(instances(), st.sampled_from([0.25, 0.5, 1.0]), st.sampled_from([1.0, 2.0, 4.0]))
    @settings(max_examples=60, deadline=None)
    def test_sandwich_holds(self, inst, epsilon, tau):
        pts, starts, ends = inst
        tps = TemporalPointSet(pts, starts, ends)
        idx = DurableTriangleIndex(tps, epsilon=epsilon)
        got = [r.key for r in idx.query(tau)]
        assert len(got) == len(set(got))
        must, may = triangle_bounds(tps, tau, epsilon)
        assert must <= set(got) <= may

    @given(instances(), st.sampled_from([1.0, 3.0]))
    @settings(max_examples=40, deadline=None)
    def test_linf_exact(self, inst, tau):
        pts, starts, ends = inst
        tps = TemporalPointSet(pts, starts, ends, metric="linf")
        got = {r.key for r in LinfTriangleIndex(tps).query(tau)}
        assert got == brute_force_triangle_keys(tps, tau)

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_count_equals_enumeration(self, inst):
        pts, starts, ends = inst
        tps = TemporalPointSet(pts, starts, ends)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        assert idx.count(2.0) == len(idx.query(2.0))


class TestIncrementalProperties:
    @given(
        instances(),
        st.lists(st.integers(1, 10).map(float), min_size=2, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_tau_sequences(self, inst, taus):
        pts, starts, ends = inst
        tps = TemporalPointSet(pts, starts, ends)
        session = IncrementalTriangleSession(tps, epsilon=0.5)
        for tau in taus:
            session.query(tau)
            got = {r.key for r in session.current_results()}
            must = brute_force_triangle_keys(tps, tau)
            may = brute_force_triangle_keys(tps, tau, threshold=1.5 + 1e-6)
            assert must <= got <= may

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_descending_deltas_disjoint_and_complete(self, inst):
        pts, starts, ends = inst
        tps = TemporalPointSet(pts, starts, ends)
        session = IncrementalTriangleSession(tps, epsilon=0.5)
        seen = set()
        prev = float("inf")
        for tau in (6.0, 3.0, 1.0):
            delta = {r.key for r in session.query(tau)}
            assert not (delta & seen)
            assert brute_delta_keys(tps, tau, prev) <= delta
            seen |= delta
            prev = tau


class TestDegenerateGeometry:
    def test_all_points_identical(self):
        tps = TemporalPointSet(np.zeros((6, 2)), [0] * 6, [10] * 6)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        assert len(idx.query(5.0)) == 20  # C(6,3)

    def test_collinear_points(self):
        pts = np.array([[i * 0.4, 0.0] for i in range(8)])
        tps = TemporalPointSet(pts, [0] * 8, [10] * 8)
        idx = DurableTriangleIndex(tps, epsilon=0.25)
        must, may = triangle_bounds(tps, 5.0, 0.25)
        got = {r.key for r in idx.query(5.0)}
        assert must <= got <= may

    def test_zero_length_lifespans_never_durable(self):
        tps = TemporalPointSet(np.zeros((4, 2)), [1, 1, 1, 1], [1, 1, 1, 1])
        assert DurableTriangleIndex(tps, epsilon=0.5).query(0.5) == []

    def test_huge_spread(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.05, 0.1], [5000.0, 5000.0]])
        tps = TemporalPointSet(pts, [0] * 4, [10] * 4)
        got = {r.key for r in DurableTriangleIndex(tps, epsilon=0.5).query(5.0)}
        assert got == {(0, 1, 2)}

    def test_tiny_epsilon_still_valid(self):
        tps = TemporalPointSet(
            np.random.default_rng(0).uniform(0, 2, (25, 2)), [0] * 25, [9] * 25
        )
        idx = DurableTriangleIndex(tps, epsilon=0.01)
        must, may = triangle_bounds(tps, 4.0, 0.01)
        got = {r.key for r in idx.query(4.0)}
        assert must <= got <= may
