"""Synthetic point-cloud generators.

The paper's complexity bounds are parameterised by the doubling
dimension ``ρ`` and the spread of the embedded point set (Section 2.1).
These generators expose both as knobs so the benchmark harness can
reproduce the claimed dependences:

* :func:`uniform_points` — i.i.d. uniform in a box (ρ ≈ d);
* :func:`clustered_points` — Gaussian-mixture communities, the shape of
  embedded social networks (Example 1.1);
* :func:`manifold_points` — an intrinsic low-dimensional manifold
  embedded in a higher ambient dimension: ρ stays near the intrinsic
  dimension however large the ambient one (experiment E12);
* :func:`grid_points` — the integer grid (a grid graph under unit
  threshold, one of the graph classes the introduction mentions).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ValidationError

__all__ = [
    "uniform_points",
    "clustered_points",
    "manifold_points",
    "grid_points",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_points(
    n: int, dim: int = 2, box: float = 4.0, seed: Optional[int] = 0
) -> np.ndarray:
    """``n`` i.i.d. uniform points in ``[0, box]^dim``."""
    if n <= 0 or dim <= 0 or box <= 0:
        raise ValidationError("n, dim and box must be positive")
    return _rng(seed).uniform(0.0, box, size=(n, dim))


def clustered_points(
    n: int,
    dim: int = 2,
    n_clusters: int = 8,
    box: float = 8.0,
    cluster_std: float = 0.35,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Gaussian-mixture communities: dense unit-ball neighbourhoods
    inside clusters, sparse across — the proximity shape of an embedded
    social network."""
    if n_clusters <= 0:
        raise ValidationError("n_clusters must be positive")
    rng = _rng(seed)
    centers = rng.uniform(0.0, box, size=(n_clusters, dim))
    assign = rng.integers(0, n_clusters, size=n)
    return centers[assign] + rng.normal(scale=cluster_std, size=(n, dim))


def manifold_points(
    n: int,
    intrinsic_dim: int,
    ambient_dim: int,
    extent: float = 6.0,
    noise: float = 0.01,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Points on a random ``intrinsic_dim``-flat inside ``R^ambient_dim``.

    The doubling dimension of the output tracks ``intrinsic_dim`` (plus
    the tiny noise), regardless of ``ambient_dim`` — the regime in which
    Table 2's ``ε^{-O(ρ)}`` factors stay small.
    """
    if intrinsic_dim <= 0 or intrinsic_dim > ambient_dim:
        raise ValidationError(
            f"need 0 < intrinsic_dim ({intrinsic_dim}) <= ambient_dim ({ambient_dim})"
        )
    rng = _rng(seed)
    latent = rng.uniform(0.0, extent, size=(n, intrinsic_dim))
    # A random orthonormal frame via QR of a Gaussian matrix.
    frame, _ = np.linalg.qr(rng.normal(size=(ambient_dim, intrinsic_dim)))
    pts = latent @ frame.T
    if noise > 0:
        pts = pts + rng.normal(scale=noise, size=pts.shape)
    return pts


def grid_points(side: int, dim: int = 2, jitter: float = 0.0, seed: Optional[int] = 0) -> np.ndarray:
    """The integer grid ``{0..side-1}^dim`` (optionally jittered).

    With unit distance threshold this point set *is* a grid graph under
    ``ℓ1``/``ℓ∞`` — one of the classes the paper's approach covers.
    """
    if side <= 0 or dim <= 0:
        raise ValidationError("side and dim must be positive")
    axes = [np.arange(side, dtype=float) for _ in range(dim)]
    mesh = np.meshgrid(*axes, indexing="ij")
    pts = np.stack([m.ravel() for m in mesh], axis=1)
    if jitter > 0:
        pts = pts + _rng(seed).uniform(-jitter, jitter, size=pts.shape)
    return pts
