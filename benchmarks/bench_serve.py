#!/usr/bin/env python3
"""Closed-loop load driver for the serving front end → ``BENCH_serve.json``.

Boots an in-process server (ephemeral port), registers **two datasets
on separate shards**, then runs six phases:

1. **warmup** — one batch per dataset so every index the load phase
   needs is built (the steady-state serving regime the paper's
   preprocess-once economics predict);
2. **load** — closed-loop: ``--clients`` worker threads per dataset,
   each issuing ``--requests`` streamed query batches back-to-back over
   a pooled keep-alive connection; per-request wall latencies are
   recorded;
3. **connection reuse** — a τ-sweep-plus-``/stats``-polling request
   stream (a client sweeping thresholds while a dashboard polls — the
   cheap, chatty traffic where connection setup is a real fraction of
   request cost) is replayed twice: once opening a fresh TCP connection
   per request with ``Connection: close``, once over pooled keep-alive
   connections.  Identical workload, so the latency delta is purely
   connection amortisation;
4. **overload** — the shard's admission queue is saturated and a burst
   of requests is fired to demonstrate bounded-queue 429 rejection;
5. **ingestion** — NDJSON event batches are streamed into the warm
   shard (``POST /datasets/social/events``), timing append throughput
   and the query that follows each epoch bump, then the merged point
   set is registered fresh and queried cold — the full re-registration
   baseline the incremental path is compared against.  Both paths must
   report identical per-query counts (the versioned-dataset identity);
6. **tracing overhead** — an identical cached τ-sweep is replayed
   against two fresh servers that differ only in ``tracing=``, with
   requests alternating between them so machine noise lands on both
   sides alike.  The traced mean latency is gated at ≤5% over the
   untraced mean (``tracing_overhead`` in the JSON) — the number
   ``docs/tracing.md`` promises.

Server-side facts come from **/metrics diffs**: the driver scrapes
``GET /metrics`` before and after each phase and derives latency
(``http_request_seconds`` / ``serve_query_seconds`` interval
histograms), throughput and overload counts (``http_requests_total``,
``serve_admission_rejected_total``) from the subtraction — the same
arithmetic a Prometheus ``rate()``/``histogram_quantile()`` pair would
do, so the bench exercises the exposition path itself and cross-checks
the server's own accounting against the client's request counts.  The
connection-reuse latency comparison stays *client*-measured (TCP setup
happens before the server's request clock starts), but its connection
counters are metrics diffs too.

The emitted JSON carries client latency percentiles, the metrics-diff
facts, per-shard cache statistics from ``GET /stats``, the overload
counts, and a ``connection_reuse`` section comparing the two reuse
modes; the driver fails (non-zero exit) unless keep-alive opened fewer
connections than it served requests *and* beat the
per-request-connection mean latency on the identical workload, and the
metrics-side request accounting matches the client's.  CI uploads the
JSON next to ``BENCH_smoke.json`` so the serving-path trajectory
accumulates run over run.

Usage::

    python benchmarks/bench_serve.py [--n 300] [--clients 4] [--requests 8]
"""

from __future__ import annotations

import argparse
import http.client
import json
import platform
import statistics
import sys
import threading
import time

from repro.obs import counter_value, histogram_snapshot, parse_exposition
from repro.serve import start_server_thread

DATASETS = {
    "social": {"workload": "social", "n": None, "seed": 7},
    "coauthor": {"workload": "coauthor", "n": None, "seed": 3},
}

#: One mixed batch per request: a τ-sweep plus pair aggregates — all
#: cache hits after warmup, which is the serving regime under test.
QUERIES = {
    "social": [
        {"kind": "triangles", "taus": [1.5, 2.0, 3.0], "label": "sweep"},
        {"kind": "pairs-sum", "tau": 2.0},
        {"kind": "cliques", "tau": 2.0, "m": 3},
    ],
    "coauthor": [
        {"kind": "triangles", "taus": [15.0, 25.0], "label": "sweep"},
        {"kind": "pairs-union", "tau": 15.0, "kappa": 2},
    ],
}


class Client:
    """Stdlib HTTP client that makes connection reuse measurable.

    ``pooled=True`` keeps one ``http.client.HTTPConnection`` open across
    requests (HTTP/1.1 keep-alive, with one transparent reconnect if the
    server closed the socket — idle timeout or max-requests cap);
    ``pooled=False`` opens a fresh connection per request and sends
    ``Connection: close``, the baseline the reuse numbers are compared
    against.  ``connections_opened`` counts real TCP connects either way.
    """

    def __init__(self, host, port, pooled=True, timeout=60):
        self.host = host
        self.port = port
        self.pooled = pooled
        self.timeout = timeout
        self.connections_opened = 0
        self._conn = None

    def _new_conn(self):
        self.connections_opened += 1
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    @staticmethod
    def _issue(conn, method, path, body, headers):
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        return resp.status, resp.read()

    def request(self, method, path, body=None):
        payload = json.dumps(body) if body is not None else None
        return self._request(method, path, payload, "application/json")

    def request_ndjson(self, method, path, payload):
        """Raw-body request (event batches are NDJSON, not JSON)."""
        return self._request(method, path, payload, "application/x-ndjson")

    def _request(self, method, path, payload, content_type):
        headers = {"Content-Type": content_type}
        if not self.pooled:
            headers["Connection"] = "close"
            conn = self._new_conn()
            try:
                return self._issue(conn, method, path, payload, headers)
            finally:
                conn.close()
        if self._conn is None:
            self._conn = self._new_conn()
        try:
            return self._issue(self._conn, method, path, payload, headers)
        except (http.client.HTTPException, OSError):
            self._conn.close()
            self._conn = self._new_conn()
            return self._issue(self._conn, method, path, payload, headers)

    def close(self):
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def scrape_metrics(client):
    """One strict ``GET /metrics`` scrape → ``{family: Family}``."""
    status, data = client.request("GET", "/metrics")
    if status != 200:
        raise RuntimeError(f"/metrics answered HTTP {status}")
    return parse_exposition(data.decode())


def _interval_latency_ms(before, after, name, labels=None):
    """Latency facts for one phase from two scrapes of a histogram."""
    delta = histogram_snapshot(after, name, labels) - histogram_snapshot(
        before, name, labels
    )
    return {
        "count": delta.count,
        "mean": delta.mean * 1e3,
        "p50": delta.quantile(0.50) * 1e3,
        "p90": delta.quantile(0.90) * 1e3,
        "p99": delta.quantile(0.99) * 1e3,
    }


def _query_once(client, dataset, include_records=False):
    t0 = time.perf_counter()
    status, data = client.request(
        "POST",
        "/query",
        {
            "dataset": dataset,
            "queries": QUERIES[dataset],
            "include_records": include_records,
        },
    )
    latency = time.perf_counter() - t0
    if status != 200:
        return status, latency, None
    last = json.loads(data.decode().strip().rsplit("\n", 1)[-1])
    return status, latency, last


def _query_counts(client, dataset, queries):
    """Per-query count dicts from one streamed batch (None on error)."""
    status, data = client.request(
        "POST", "/query",
        {"dataset": dataset, "queries": queries, "include_records": False},
    )
    if status != 200:
        return status, None
    counts = []
    for line in data.decode().strip().split("\n"):
        doc = json.loads(line)
        if doc.get("type") == "result":
            if not doc.get("ok"):
                return status, None
            counts.append(doc["counts"])
    return status, counts


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _latency_ms(values):
    values = sorted(values)
    return {
        "mean": statistics.fmean(values) * 1e3 if values else 0.0,
        "p50": _percentile(values, 0.50) * 1e3,
        "p90": _percentile(values, 0.90) * 1e3,
        "p99": _percentile(values, 0.99) * 1e3,
        "max": values[-1] * 1e3 if values else 0.0,
    }


def run_load(handle, clients, requests, pooled):
    """One closed-loop load phase; every worker owns one Client."""
    latencies = {name: [] for name in DATASETS}
    errors = {name: 0 for name in DATASETS}
    lock = threading.Lock()
    connections = []

    def worker(name):
        client = Client(handle.host, handle.port, pooled=pooled)
        try:
            for _ in range(requests):
                status, latency, end = _query_once(client, name)
                with lock:
                    if status == 200 and end is not None and end.get("ok"):
                        latencies[name].append(latency)
                    else:
                        errors[name] += 1
        finally:
            client.close()
            with lock:
                connections.append(client.connections_opened)

    threads = [
        threading.Thread(target=worker, args=(name,))
        for name in DATASETS
        for _ in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    all_latencies = [v for values in latencies.values() for v in values]
    return {
        "mode": "keep-alive" if pooled else "close",
        "latencies": latencies,
        "errors": errors,
        "requests": len(all_latencies),
        "connections_opened": sum(connections),
        "wall_seconds": wall,
        "latency_ms": _latency_ms(all_latencies),
    }


#: One reuse-phase iteration: a τ-sweep against the (cached) index,
#: then four ``/stats`` polls — the cheap per-request regime where TCP
#: setup is a measurable slice of every ``Connection: close`` request.
REUSE_SWEEP = {"kind": "triangles", "taus": [1.5, 2.0, 3.0], "label": "sweep"}


def run_reuse_phase(handle, clients, iterations, pooled, dataset="sweep"):
    """Replay the sweep-plus-polling stream in one connection mode."""
    latencies = []
    errors = [0]
    lock = threading.Lock()
    connections = []

    def one_request(client, method, path, body):
        t0 = time.perf_counter()
        status, data = client.request(method, path, body)
        latency = time.perf_counter() - t0
        ok = status == 200
        if ok and path == "/query":
            last = json.loads(data.decode().strip().rsplit("\n", 1)[-1])
            ok = last.get("type") == "batch-end" and last.get("ok", False)
        with lock:
            if ok:
                latencies.append(latency)
            else:
                errors[0] += 1

    query_body = {
        "dataset": dataset,
        "queries": [REUSE_SWEEP],
        "include_records": False,
    }

    def worker():
        client = Client(handle.host, handle.port, pooled=pooled)
        try:
            for _ in range(iterations):
                one_request(client, "POST", "/query", query_body)
                for _ in range(4):
                    one_request(client, "GET", "/stats", None)
        finally:
            client.close()
            with lock:
                connections.append(client.connections_opened)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    return {
        "mode": "keep-alive" if pooled else "close",
        "requests": len(latencies),
        "errors": errors[0],
        "connections_opened": sum(connections),
        "wall_seconds": wall,
        "latency_ms": _latency_ms(latencies),
    }


#: The tracing-overhead gate: the traced mean may exceed the untraced
#: mean by at most this percentage (docs/tracing.md quotes the 5%).
#: The absolute floor absorbs timer granularity on sub-millisecond
#: requests, where 5% of the mean is smaller than scheduler noise.
TRACING_OVERHEAD_GATE_PCT = 5.0
TRACING_NOISE_FLOOR_MS = 0.2


def run_tracing_overhead(queue_limit, n, rounds, failures):
    """Phase 6: the traced-vs-untraced latency comparison.

    Boots two fresh servers identical except for ``tracing=``, warms
    the same index on both, then replays ``rounds`` cached τ-sweep
    batches against each — alternating sides every request, order
    flipped every round, so drift and background noise cancel instead
    of biasing one mode.  Responses double as a sanity check that the
    knob did something: the traced side must echo a ``trace_id``, the
    untraced side must not (otherwise the gate would be vacuous).
    """
    spec = {"workload": "social", "n": n, "seed": 13}
    body = {"dataset": "ovh", "queries": [REUSE_SWEEP], "include_records": False}
    latencies = {"traced": [], "untraced": []}
    trace_ids = {"traced": set(), "untraced": set()}
    servers = []

    def one(label, client):
        t0 = time.perf_counter()
        status, data = client.request("POST", "/query", body)
        latency = time.perf_counter() - t0
        if status != 200:
            failures.append(f"tracing-overhead query ({label}): HTTP {status}")
            return
        last = json.loads(data.decode().strip().rsplit("\n", 1)[-1])
        if not last.get("ok"):
            failures.append(f"tracing-overhead query ({label}): batch not ok")
            return
        latencies[label].append(latency)
        trace_ids[label].add(last.get("trace_id"))

    try:
        for label, tracing in (("traced", True), ("untraced", False)):
            handle = start_server_thread(
                queue_limit=queue_limit, tracing=tracing, slow_query_ms=1e9
            )
            client = Client(handle.host, handle.port, pooled=True)
            status, data = client.request(
                "POST", "/datasets", {"name": "ovh", "dataset": spec}
            )
            if status != 201:
                failures.append(
                    f"tracing-overhead register ({label}): HTTP {status} {data!r}"
                )
            # Warm the sweep index so both sides measure pure serving
            # cost — the regime where per-span bookkeeping would show.
            client.request("POST", "/query", body)
            servers.append((label, handle, client))
        for r in range(rounds):
            order = servers if r % 2 == 0 else servers[::-1]
            for label, _handle, client in order:
                one(label, client)
    finally:
        for _label, handle, client in servers:
            client.close()
            try:
                handle.stop()
            except Exception as exc:  # noqa: BLE001
                failures.append(f"tracing-overhead shutdown: {exc}")

    if not all(trace_ids["traced"]):
        failures.append(
            "tracing-overhead: traced server responses missing trace_id"
        )
    if any(trace_ids["untraced"]):
        failures.append(
            "tracing-overhead: untraced server responses carried a trace_id"
        )
    traced_ms = _latency_ms(latencies["traced"])
    untraced_ms = _latency_ms(latencies["untraced"])
    overhead_pct = (
        (traced_ms["mean"] / untraced_ms["mean"] - 1.0) * 100.0
        if untraced_ms["mean"]
        else 0.0
    )
    gate_ms = (
        untraced_ms["mean"] * (1.0 + TRACING_OVERHEAD_GATE_PCT / 100.0)
        + TRACING_NOISE_FLOOR_MS
    )
    passed = traced_ms["mean"] <= gate_ms
    if latencies["traced"] and latencies["untraced"] and not passed:
        failures.append(
            "tracing overhead over gate: traced mean "
            f"{traced_ms['mean']:.3f} ms vs untraced "
            f"{untraced_ms['mean']:.3f} ms "
            f"({overhead_pct:+.1f}% > {TRACING_OVERHEAD_GATE_PCT:.0f}% "
            f"+ {TRACING_NOISE_FLOOR_MS} ms floor)"
        )
    return {
        "requests_per_mode": len(latencies["traced"]),
        "traced_latency_ms": traced_ms,
        "untraced_latency_ms": untraced_ms,
        "mean_overhead_pct": overhead_pct,
        "gate_pct": TRACING_OVERHEAD_GATE_PCT,
        "noise_floor_ms": TRACING_NOISE_FLOOR_MS,
        "passed": passed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=300, help="points per dataset")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop workers per dataset")
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per worker (per load mode)")
    parser.add_argument("--queue-limit", type=int, default=16,
                        help="per-shard admission bound")
    parser.add_argument("--append-batches", type=int, default=4,
                        help="event batches streamed in the ingestion phase")
    parser.add_argument("--events-per-batch", type=int, default=15,
                        help="events per appended batch")
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    failures = []
    handle = start_server_thread(queue_limit=args.queue_limit)
    admin = Client(handle.host, handle.port, pooled=True)
    try:
        # -- register two datasets, one shard each --------------------
        for name, spec in DATASETS.items():
            spec = dict(spec, n=args.n)
            status, data = admin.request(
                "POST", "/datasets", {"name": name, "dataset": spec}
            )
            if status != 201:
                failures.append(f"register {name}: HTTP {status} {data!r}")

        # -- warmup: build every index the load phase will hit --------
        build_seconds = {}
        for name in DATASETS:
            t0 = time.perf_counter()
            status, _latency, end = _query_once(admin, name)
            if status != 200 or end is None or not end.get("ok"):
                failures.append(f"warmup {name}: HTTP {status}, end={end}")
                continue
            build_seconds[name] = time.perf_counter() - t0

        # -- closed-loop load over both shards, pooled connections ----
        m_load0 = scrape_metrics(admin)
        load_phase = run_load(handle, args.clients, args.requests, pooled=True)
        m_load1 = scrape_metrics(admin)
        if any(load_phase["errors"].values()):
            failures.append(f"load-phase errors: {load_phase['errors']}")

        # Server-side view of the same phase, from the /metrics diff.
        served_200 = counter_value(
            m_load1, "http_requests_total", {"route": "/query", "status": "200"}
        ) - counter_value(
            m_load0, "http_requests_total", {"route": "/query", "status": "200"}
        )
        if served_200 != load_phase["requests"]:
            failures.append(
                "metrics accounting mismatch: server counted "
                f"{served_200:g} successful /query requests, clients made "
                f"{load_phase['requests']}"
            )
        load_metrics = {
            "request_latency_ms": _interval_latency_ms(
                m_load0, m_load1, "http_request_seconds", {"route": "/query"}
            ),
            "per_dataset_query_latency_ms": {
                name: _interval_latency_ms(
                    m_load0, m_load1, "serve_query_seconds", {"dataset": name}
                )
                for name in DATASETS
            },
            "stream_bytes": counter_value(m_load1, "serve_stream_bytes_total")
            - counter_value(m_load0, "serve_stream_bytes_total"),
        }

        # -- connection reuse: identical stream, both connection modes -
        status, data = admin.request(
            "POST", "/datasets",
            {"name": "sweep",
             "dataset": {"workload": "social", "n": min(args.n, 60), "seed": 11}},
        )
        if status != 201:
            failures.append(f"register sweep dataset: HTTP {status} {data!r}")
        # Warm the sweep index so both modes measure pure serving cost.
        admin.request(
            "POST", "/query",
            {"dataset": "sweep", "queries": [REUSE_SWEEP], "include_records": False},
        )
        reuse_iterations = max(args.requests * 2, 10)
        m_reuse0 = scrape_metrics(admin)
        close_phase = run_reuse_phase(handle, 2, reuse_iterations, pooled=False)
        m_reuse1 = scrape_metrics(admin)
        ka_phase = run_reuse_phase(handle, 2, reuse_iterations, pooled=True)
        m_reuse2 = scrape_metrics(admin)
        # The server's own accounting of the two modes: Connection:
        # close opens one TCP connection per request and never reuses;
        # keep-alive piles reuses onto a handful of connections.
        for phase, before, after in (
            (close_phase, m_reuse0, m_reuse1),
            (ka_phase, m_reuse1, m_reuse2),
        ):
            phase["server_connections_opened"] = counter_value(
                after, "http_connections_opened_total"
            ) - counter_value(before, "http_connections_opened_total")
            phase["server_keepalive_reuses"] = counter_value(
                after, "http_keepalive_reuses_total"
            ) - counter_value(before, "http_keepalive_reuses_total")
        if not ka_phase["server_keepalive_reuses"]:
            failures.append(
                "metrics saw no keep-alive reuse in the keep-alive phase"
            )
        for phase in (close_phase, ka_phase):
            if phase["errors"]:
                failures.append(
                    f"reuse-phase ({phase['mode']}) errors: {phase['errors']}"
                )

        # The whole point of keep-alive: far fewer connections than
        # requests, and a lower mean per-request wall time once setup
        # is amortised.
        if ka_phase["requests"] and not (
            ka_phase["connections_opened"] < ka_phase["requests"]
        ):
            failures.append(
                "keep-alive did not reuse connections: "
                f"{ka_phase['connections_opened']} opened for "
                f"{ka_phase['requests']} requests"
            )
        ka_mean = ka_phase["latency_ms"]["mean"]
        close_mean = close_phase["latency_ms"]["mean"]
        if ka_phase["requests"] and close_phase["requests"] and ka_mean >= close_mean:
            failures.append(
                "keep-alive mean latency did not beat Connection: close "
                f"({ka_mean:.3f} ms >= {close_mean:.3f} ms)"
            )

        # -- overload: prove the admission bound rejects, not buffers -
        shard = handle.app.registry.get("social")
        held = shard.admission.limit
        rejected = 0
        m_over0 = scrape_metrics(admin)
        if not shard.admission.try_acquire(held):
            failures.append("could not saturate the admission queue")
        else:
            try:
                for _ in range(5):
                    status, _latency, _end = _query_once(admin, "social")
                    if status == 429:
                        rejected += 1
            finally:
                shard.admission.release(held)
        m_over1 = scrape_metrics(admin)
        if rejected != 5:
            failures.append(f"expected 5 overload rejections, saw {rejected}")
        # The same burst, as the server accounted it.  Admission counts
        # rejected *plans* (all-or-nothing batches of len(QUERIES)),
        # the HTTP layer counts rejected *requests*.
        expect_plans = 5 * len(QUERIES["social"])
        metrics_rejected = counter_value(
            m_over1, "serve_admission_rejected_total", {"dataset": "social"}
        ) - counter_value(
            m_over0, "serve_admission_rejected_total", {"dataset": "social"}
        )
        metrics_429 = counter_value(
            m_over1, "http_requests_total", {"route": "/query", "status": "429"}
        ) - counter_value(
            m_over0, "http_requests_total", {"route": "/query", "status": "429"}
        )
        if metrics_rejected != expect_plans or metrics_429 != 5:
            failures.append(
                "overload metrics mismatch: serve_admission_rejected_total "
                f"+{metrics_rejected:g} (expected {expect_plans}), "
                f"429s +{metrics_429:g} (expected 5)"
            )
        status, _latency, end = _query_once(admin, "social")
        if status != 200:
            failures.append(f"post-overload query failed: HTTP {status}")

        # -- ingestion: append throughput + maintained-query latency --
        # Streams --append-batches NDJSON batches into the (warm)
        # social shard, timing each append and the query that follows
        # it (triangles ride incremental maintenance across the epoch
        # bump; the other families rebuild once).  The same merged
        # point set is then registered fresh under another name and
        # queried cold — the full re-registration baseline — and both
        # paths must report identical per-query counts.
        n_batches, per_batch = args.append_batches, args.events_per_batch
        events = [
            {
                "point": [0.31 + 0.003 * i, 0.42 + 0.002 * (i % 7)],
                "start": 0.0,
                "end": 20.0 + (i % 9),
            }
            for i in range(n_batches * per_batch)
        ]
        m_ing0 = scrape_metrics(admin)
        append_walls, post_query_latencies = [], []
        final_report = {}
        for b in range(n_batches):
            batch = "\n".join(
                json.dumps(e) for e in events[b * per_batch:(b + 1) * per_batch]
            ).encode()
            t0 = time.perf_counter()
            status, data = admin.request_ndjson(
                "POST", "/datasets/social/events", batch
            )
            append_walls.append(time.perf_counter() - t0)
            if status != 200:
                failures.append(f"append batch {b}: HTTP {status} {data!r}")
                continue
            final_report = json.loads(data)["appended"]
            if final_report["rejected"]:
                failures.append(
                    f"append batch {b} rejected events: {final_report['errors']}"
                )
            status, latency, end = _query_once(admin, "social")
            if status != 200 or end is None or not end.get("ok"):
                failures.append(f"post-append query {b}: HTTP {status}, {end}")
            else:
                post_query_latencies.append(latency)
        m_ing1 = scrape_metrics(admin)
        if final_report.get("epoch") != n_batches:
            failures.append(
                f"expected epoch {n_batches} after {n_batches} batches, "
                f"got {final_report.get('epoch')}"
            )
        appended_events = counter_value(
            m_ing1, "serve_events_appended_total", {"dataset": "social"}
        ) - counter_value(
            m_ing0, "serve_events_appended_total", {"dataset": "social"}
        )
        if appended_events != len(events):
            failures.append(
                f"metrics counted {appended_events:g} appended events, "
                f"client sent {len(events)}"
            )
        migrated = counter_value(
            m_ing1, "serve_cache_migrated_total", {"dataset": "social"}
        ) - counter_value(m_ing0, "serve_cache_migrated_total", {"dataset": "social"})
        invalidated = counter_value(
            m_ing1, "serve_cache_invalidated_total", {"dataset": "social"}
        ) - counter_value(
            m_ing0, "serve_cache_invalidated_total", {"dataset": "social"}
        )
        if not migrated:
            failures.append(
                "no index migrations during ingestion — incremental "
                "maintenance never ran on a warm shard"
            )

        # Full re-registration baseline: the merged point set, cold.
        import os
        import tempfile

        from repro.datasets import workload_from_spec

        merged = workload_from_spec(dict(DATASETS["social"], n=args.n)).with_events(
            [e["point"] for e in events],
            [e["start"] for e in events],
            [e["end"] for e in events],
        )
        csv = tempfile.NamedTemporaryFile(
            mode="w", suffix=".csv", delete=False
        )
        try:
            for i in range(merged.n):
                row = [*merged.points[i], merged.starts[i], merged.ends[i]]
                csv.write(",".join("%.17g" % v for v in row) + "\n")
            csv.close()
            t0 = time.perf_counter()
            status, data = admin.request(
                "POST", "/datasets",
                {"name": "social-fresh",
                 "dataset": {"csv": csv.name, "metric": merged.metric.name}},
            )
            register_seconds = time.perf_counter() - t0
            if status != 201:
                failures.append(
                    f"register social-fresh: HTTP {status} {data!r}"
                )
            t0 = time.perf_counter()
            status, fresh_counts = _query_counts(
                admin, "social-fresh", QUERIES["social"]
            )
            cold_query_seconds = time.perf_counter() - t0
            if fresh_counts is None:
                failures.append(f"cold query on social-fresh: HTTP {status}")
            # The acceptance identity, through HTTP: the appended shard
            # and the fresh registration answer every query alike.
            status, appended_counts = _query_counts(
                admin, "social", QUERIES["social"]
            )
            if appended_counts is None:
                failures.append(f"post-ingest query on social: HTTP {status}")
            elif fresh_counts is not None and appended_counts != fresh_counts:
                failures.append(
                    "append-then-query diverged from fresh registration: "
                    f"{appended_counts} != {fresh_counts}"
                )
            admin.request("DELETE", "/datasets/social-fresh")
        finally:
            os.unlink(csv.name)

        append_wall = sum(append_walls)
        ingestion = {
            "batches": n_batches,
            "events_per_batch": per_batch,
            "events_total": len(events),
            "final_epoch": final_report.get("epoch"),
            "append_wall_seconds": append_wall,
            "events_per_second": (
                len(events) / append_wall if append_wall else 0.0
            ),
            "append_latency_ms": _latency_ms(append_walls),
            "server_append_seconds": counter_value(
                m_ing1, "serve_append_seconds_total", {"dataset": "social"}
            ) - counter_value(
                m_ing0, "serve_append_seconds_total", {"dataset": "social"}
            ),
            "cache_migrated": migrated,
            "cache_invalidated": invalidated,
            "post_append_query_latency_ms": _latency_ms(post_query_latencies),
            "full_reregistration": {
                "register_seconds": register_seconds,
                "cold_query_seconds": cold_query_seconds,
            },
        }

        # -- tracing overhead: traced vs untraced, identical sweep ----
        tracing_overhead = run_tracing_overhead(
            args.queue_limit,
            min(args.n, 120),
            max(args.clients * args.requests, 30),
            failures,
        )

        # -- per-shard and connection statistics ----------------------
        status, data = admin.request("GET", "/stats")
        stats = json.loads(data) if status == 200 else {}
        shards = stats.get("shards", {})
        expected_shards = set(DATASETS) | {"sweep"}
        if set(shards) != expected_shards:
            failures.append(f"expected shards {expected_shards}, got {set(shards)}")
        server_connections = stats.get("server", {}).get("connections", {})
        if not server_connections.get("keepalive_reuses"):
            failures.append(
                f"server saw no keep-alive reuse: {server_connections}"
            )

        per_dataset = {}
        for name, values in load_phase["latencies"].items():
            per_dataset[name] = {
                "requests": len(values),
                "errors": load_phase["errors"][name],
                "warmup_seconds": build_seconds.get(name),
                "latency_ms": _latency_ms(values),
                "shard": shards.get(name, {}),
            }

        total_requests = load_phase["requests"]
        load_wall = load_phase["wall_seconds"]
        payload = {
            "bench": "serve",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "config": {
                "n": args.n,
                "clients_per_dataset": args.clients,
                "requests_per_client": args.requests,
                "queue_limit": args.queue_limit,
            },
            "load": {
                "wall_seconds": load_wall,
                "total_requests": total_requests,
                "throughput_rps": total_requests / load_wall if load_wall else 0.0,
                "server_requests_200": served_200,
                "metrics": load_metrics,
            },
            "connection_reuse": {
                mode["mode"]: {
                    "requests": mode["requests"],
                    "connections_opened": mode["connections_opened"],
                    "server_connections_opened": mode["server_connections_opened"],
                    "server_keepalive_reuses": mode["server_keepalive_reuses"],
                    "wall_seconds": mode["wall_seconds"],
                    "latency_ms": mode["latency_ms"],
                }
                for mode in (close_phase, ka_phase)
            },
            "server_connections": server_connections,
            "overload": {
                "burst": 5,
                "rejected_429": rejected,
            },
            "ingestion": ingestion,
            "tracing_overhead": tracing_overhead,
            "datasets": per_dataset,
            "failures": failures,
        }
        payload["connection_reuse"]["reuse_ratio"] = (
            ka_phase["requests"] / ka_phase["connections_opened"]
            if ka_phase["connections_opened"] else 0.0
        )
        payload["connection_reuse"]["mean_latency_improvement"] = (
            1.0 - ka_mean / close_mean if close_mean else 0.0
        )
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)

        for name, entry in per_dataset.items():
            lat = entry["latency_ms"]
            cache = entry["shard"].get("cache", {})
            print(
                f"{name:10s} {entry['requests']:4d} req  "
                f"p50 {lat['p50']:6.1f} ms  p99 {lat['p99']:6.1f} ms  "
                f"cache hits {cache.get('hits', '?')} "
                f"builds {cache.get('builds', '?')}"
            )
        print(
            f"keep-alive: {ka_phase['requests']} req over "
            f"{ka_phase['connections_opened']} conns "
            f"({payload['connection_reuse']['reuse_ratio']:.1f}x reuse)  "
            f"mean {ka_mean:.2f} ms  vs close {close_mean:.2f} ms  "
            f"({payload['connection_reuse']['mean_latency_improvement']:+.1%})"
        )
        served_lat = load_metrics["request_latency_ms"]
        print(
            f"metrics diff: {served_200:g} /query 200s  "
            f"server-side p50 {served_lat['p50']:.1f} ms  "
            f"p99 {served_lat['p99']:.1f} ms  "
            f"{load_metrics['stream_bytes']:.0f} B streamed"
        )
        print(
            f"ingestion: {ingestion['events_total']} events over "
            f"{ingestion['batches']} batches -> epoch "
            f"{ingestion['final_epoch']} at "
            f"{ingestion['events_per_second']:.0f} ev/s  "
            f"({ingestion['cache_migrated']:g} migrations, "
            f"{ingestion['cache_invalidated']:g} invalidations)  "
            f"post-append query p50 "
            f"{ingestion['post_append_query_latency_ms']['p50']:.1f} ms vs "
            "re-register+cold "
            f"{(ingestion['full_reregistration']['register_seconds'] + ingestion['full_reregistration']['cold_query_seconds']) * 1e3:.1f} ms"
        )
        print(
            f"tracing overhead: traced mean "
            f"{tracing_overhead['traced_latency_ms']['mean']:.2f} ms vs "
            f"untraced {tracing_overhead['untraced_latency_ms']['mean']:.2f} ms "
            f"({tracing_overhead['mean_overhead_pct']:+.1f}%, gate "
            f"{tracing_overhead['gate_pct']:.0f}%)"
        )
        print(
            f"serve bench: {total_requests} requests in {load_wall:.2f}s "
            f"({payload['load']['throughput_rps']:.1f} req/s), "
            f"{rejected}/5 overload rejections -> {args.out}"
        )
    finally:
        admin.close()
        try:
            handle.stop()
        except Exception as exc:  # noqa: BLE001
            failures.append(f"unclean shutdown: {exc}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
