"""Observability core shared by the serving tiers, benches and CI.

``repro.obs.metrics`` defines the instruments and the registry each
front end owns; ``repro.obs.expofmt`` reads scrapes back (the router's
worker re-export, the benches' before/after diffs, the conformance
test).  ``repro.obs.trace`` + ``repro.obs.tracestore`` are the
distributed-tracing layer: span recording, ``traceparent``-style
propagation between tiers, and bounded per-process trace retention
with a slow-query log.  See ``docs/metrics.md`` for the reference of
every exported metric family and ``docs/tracing.md`` for the span
catalog.
"""

from .metrics import (
    CONTENT_TYPE,
    DEFAULT_LATENCY_BUCKETS,
    CallbackMetric,
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    escape_label_value,
    format_value,
    render_families,
)
from .trace import (
    TRACEPARENT_HEADER,
    ExecTrace,
    Span,
    SpanHandle,
    TraceContext,
    TraceRecorder,
    format_traceparent,
    format_waterfall,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    span_tree,
)
from .tracestore import (
    DEFAULT_SLOW_QUERY_MS,
    DEFAULT_TRACE_CAPACITY,
    DEFAULT_TRACE_SAMPLE,
    TraceStore,
)
from .expofmt import (
    ExpositionError,
    HistogramSnapshot,
    counter_value,
    gauge_value,
    histogram_snapshot,
    merge,
    parse_exposition,
    relabel,
    render_merged,
)

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "CallbackMetric",
    "Counter",
    "Family",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "escape_label_value",
    "format_value",
    "render_families",
    "TRACEPARENT_HEADER",
    "ExecTrace",
    "Span",
    "SpanHandle",
    "TraceContext",
    "TraceRecorder",
    "TraceStore",
    "DEFAULT_SLOW_QUERY_MS",
    "DEFAULT_TRACE_CAPACITY",
    "DEFAULT_TRACE_SAMPLE",
    "format_traceparent",
    "format_waterfall",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "span_tree",
    "ExpositionError",
    "HistogramSnapshot",
    "counter_value",
    "gauge_value",
    "histogram_snapshot",
    "merge",
    "parse_exposition",
    "relabel",
    "render_merged",
]
