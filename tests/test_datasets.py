"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro import TemporalPointSet, ValidationError
from repro.datasets import (
    benchmark_workload,
    career_lifespans,
    clustered_points,
    coauthorship_workload,
    grid_points,
    heavy_tail_lifespans,
    manifold_points,
    session_lifespans,
    social_forum_workload,
    uniform_lifespans,
    uniform_points,
)
from repro.geometry import doubling_dimension_estimate


class TestPointGenerators:
    def test_uniform_shape_and_range(self):
        pts = uniform_points(100, dim=3, box=2.0, seed=1)
        assert pts.shape == (100, 3)
        assert pts.min() >= 0.0 and pts.max() <= 2.0

    def test_uniform_deterministic(self):
        assert np.array_equal(uniform_points(50, seed=7), uniform_points(50, seed=7))

    def test_uniform_validation(self):
        with pytest.raises(ValidationError):
            uniform_points(0)
        with pytest.raises(ValidationError):
            uniform_points(10, dim=0)

    def test_clustered_shape(self):
        pts = clustered_points(200, n_clusters=4, seed=2)
        assert pts.shape == (200, 2)

    def test_clustered_validation(self):
        with pytest.raises(ValidationError):
            clustered_points(10, n_clusters=0)

    def test_manifold_intrinsic_dim(self):
        low = manifold_points(400, intrinsic_dim=1, ambient_dim=6, seed=3)
        high = manifold_points(400, intrinsic_dim=3, ambient_dim=6, seed=3)
        assert low.shape == (400, 6)
        rho_low = doubling_dimension_estimate(low, n_centers=12, seed=0)
        rho_high = doubling_dimension_estimate(high, n_centers=12, seed=0)
        assert rho_low < rho_high

    def test_manifold_validation(self):
        with pytest.raises(ValidationError):
            manifold_points(10, intrinsic_dim=4, ambient_dim=2)

    def test_grid_points(self):
        pts = grid_points(3, dim=2)
        assert pts.shape == (9, 2)
        assert {tuple(p) for p in pts} == {
            (float(i), float(j)) for i in range(3) for j in range(3)
        }


class TestLifespanGenerators:
    @pytest.mark.parametrize(
        "gen",
        [uniform_lifespans, session_lifespans, career_lifespans, heavy_tail_lifespans],
    )
    def test_valid_lifespans(self, gen):
        starts, ends = gen(200, seed=5)
        assert len(starts) == len(ends) == 200
        assert np.all(ends >= starts)

    def test_uniform_length_bounds(self):
        starts, ends = uniform_lifespans(300, min_len=2.0, max_len=5.0, seed=1)
        lengths = ends - starts
        assert lengths.min() >= 2.0 and lengths.max() <= 5.0

    def test_uniform_validation(self):
        with pytest.raises(ValidationError):
            uniform_lifespans(10, min_len=5.0, max_len=1.0)

    def test_heavy_tail_validation(self):
        with pytest.raises(ValidationError):
            heavy_tail_lifespans(10, pareto_shape=0.0)


class TestWorkloads:
    def test_social_forum(self):
        tps = social_forum_workload(n=150, seed=4)
        assert isinstance(tps, TemporalPointSet)
        assert tps.n == 150 and tps.dim == 2

    def test_coauthorship(self):
        tps = coauthorship_workload(n=120, seed=4)
        assert tps.n == 120 and tps.dim == 6

    def test_benchmark_density_scales(self):
        small = benchmark_workload(200, density=10.0, seed=0)
        big = benchmark_workload(800, density=10.0, seed=0)
        # average unit-ball degree should stay roughly constant

        def avg_degree(tps):
            deg = []
            for i in range(0, tps.n, 10):
                d = tps.metric.dists(tps.points, tps.points[i])
                deg.append(int((d <= 1.0).sum()) - 1)
            return float(np.mean(deg))

        a, b = avg_degree(small), avg_degree(big)
        assert 0.3 * a <= b <= 3.0 * a
