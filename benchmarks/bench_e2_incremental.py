"""E2 — Theorem 4.2: incremental reporting beats recomputation.

The session's delta cost is ``Õ(ε^{-O(ρ)}·OUT_Δ)`` — *independent of n* —
while any from-scratch query pays its ``Ω(n)`` anchor sweep.  The regime
that exposes the gap is therefore a fine, selective τ ladder on a larger
input: each step changes few triangles, so the session touches only the
activated anchors while both recompute comparators rescan everything.

Comparators:
* ``session``       — Section 4 (activation thresholds + delta reports);
* ``index-recompute`` — re-run Algorithm 1 per τ on the prebuilt index
  and diff (the honest same-machinery baseline);
* ``brute-recompute`` — numpy brute force per τ and diff.
"""

from repro.baselines import RecomputeIncrementalBaseline

from helpers import fresh_session, triangle_index, workload

N = 2000
FIRST_TAU = 19.0
LADDER = [18.0, 17.5, 17.0, 16.5, 16.0, 15.5, 15.0]


def test_session_ladder(benchmark):
    def setup():
        return (fresh_session(N, first_tau=FIRST_TAU),), {}

    def run(session):
        total = 0
        for tau in LADDER:
            total += len(session.query(tau))
        return total

    out = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["algorithm"] = "session"
    benchmark.extra_info["delta_results"] = out
    benchmark.group = "E2 incremental ladder (n=2000, selective)"


def test_index_recompute_ladder(benchmark):
    idx = triangle_index(N)

    def run():
        seen = {r.key for r in idx.query(FIRST_TAU)}
        total = 0
        for tau in LADDER:
            full = idx.query(tau)
            fresh = [r for r in full if r.key not in seen]
            total += len(fresh)
            seen = {r.key for r in full}
        return total

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["algorithm"] = "index-recompute"
    benchmark.extra_info["delta_results"] = out
    benchmark.group = "E2 incremental ladder (n=2000, selective)"


def test_brute_recompute_ladder(benchmark):
    tps = workload(N)

    def setup():
        base = RecomputeIncrementalBaseline(tps)
        base.query(FIRST_TAU)
        return (base,), {}

    def run(base):
        total = 0
        for tau in LADDER:
            total += len(base.query(tau))
        return total

    out = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["algorithm"] = "brute-recompute"
    benchmark.extra_info["delta_results"] = out
    benchmark.group = "E2 incremental ladder (n=2000, selective)"


def test_session_build(benchmark):
    """One-off preprocessing cost (S_α construction, Õ(n·ε^{-O(ρ)}))."""
    from repro import IncrementalTriangleSession

    tps = workload(N)
    benchmark.pedantic(
        lambda: IncrementalTriangleSession(tps, epsilon=0.5), rounds=2, iterations=1
    )
    benchmark.group = "E2 session preprocessing (n=2000)"
