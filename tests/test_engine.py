"""Tests for the batched query engine (ISSUE 1 tentpole).

Covers the acceptance criterion — a batch of ≥10 mixed queries over one
dataset builds each distinct index exactly once and matches per-call
``repro.api`` results — plus cache accounting, τ-sweep equivalence,
concurrent-batch determinism, spec validation and serialisation, and
the ``cache_key()`` hooks on the core index classes.

The ISSUE 2 fault-isolation fixes are regression-tested here too: a
poisoned query no longer destroys its batch, waiters on a failed
single-flight build get chained per-thread exception copies (and are
counted as ``failed_waits``, not hits), and ``build_seconds`` survives
LRU eviction of the freshly built entry.
"""

import threading

import pytest

from repro import (
    QueryEngine,
    QuerySpec,
    ValidationError,
    find_durable_cliques,
    find_durable_triangles,
    find_sum_durable_pairs,
    find_union_durable_pairs,
)
from repro.engine import (
    IndexCache,
    IndexKey,
    QueryPlan,
    execute_plans,
    plan_batch,
    plan_query,
)
from repro.engine.planner import distinct_index_keys

from conftest import random_tps


# ----------------------------------------------------------------------
# QuerySpec
# ----------------------------------------------------------------------
class TestQuerySpec:
    def test_scalar_tau_normalised(self):
        spec = QuerySpec(kind="triangles", taus=5)
        assert spec.taus == (5.0,) and spec.tau == 5.0 and not spec.is_sweep

    def test_sweep(self):
        spec = QuerySpec(kind="triangles", taus=[2, 4, 8])
        assert spec.is_sweep
        with pytest.raises(ValidationError):
            spec.tau

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "nonsense", "taus": 1.0},
            {"kind": "triangles", "taus": ()},
            {"kind": "triangles", "taus": 0.0},
            {"kind": "triangles", "taus": -3.0},
            {"kind": "triangles", "taus": float("inf")},
            {"kind": "triangles", "taus": 1.0, "epsilon": 0.0},
            {"kind": "triangles", "taus": 1.0, "epsilon": 1.5},
            {"kind": "triangles", "taus": 1.0, "backend": "bogus"},
            {"kind": "pairs-union", "taus": 1.0},  # missing kappa
            {"kind": "pairs-union", "taus": 1.0, "kappa": 0},
            {"kind": "triangles", "taus": 1.0, "kappa": 2},
            {"kind": "cliques", "taus": 1.0, "m": 1},
            {"kind": "triangles", "taus": 1.0, "m": 3},
            {"kind": "pairs-sum", "taus": 1.0, "exact": True},
            {"kind": "triangles", "taus": 1.0, "backend": "linf-exact", "exact": False},
            {"kind": "pairs-sum", "taus": 1.0, "sum_backend": "bogus"},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            QuerySpec(**kwargs)

    def test_pattern_m_defaults_to_three(self):
        assert QuerySpec(kind="cliques", taus=2.0).m == 3

    def test_string_tau_is_a_scalar_not_a_sweep(self):
        # A quoted number in a hand-written batch file must not be
        # iterated character-by-character into a sweep.
        assert QuerySpec(kind="triangles", taus="12").taus == (12.0,)
        assert QuerySpec.from_dict({"kind": "triangles", "tau": "6"}).taus == (6.0,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "triangles", "taus": "abc"},
            {"kind": "triangles", "taus": [3.0, "x"]},
            {"kind": "triangles", "taus": 3.0, "epsilon": "half"},
            {"kind": "triangles", "taus": None},
        ],
    )
    def test_non_numeric_parameters_raise_validation_error(self, kwargs):
        # Never a bare ValueError/TypeError: the CLI's error contract
        # (message + exit 2) depends on ReproError subclasses.
        with pytest.raises(ValidationError):
            QuerySpec(**kwargs)

    def test_round_trip(self):
        spec = QuerySpec(
            kind="pairs-union", taus=(3.0, 6.0), kappa=2, epsilon=0.25, label="x"
        )
        assert QuerySpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_scalar_tau(self):
        assert QuerySpec.from_dict({"kind": "triangles", "tau": 4}).taus == (4.0,)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValidationError):
            QuerySpec.from_dict({"kind": "triangles", "tau": 4, "tua": 5})

    def test_from_dict_rejects_tau_and_taus(self):
        with pytest.raises(ValidationError):
            QuerySpec.from_dict({"kind": "triangles", "tau": 4, "taus": [4]})

    def test_hashable(self):
        assert len({QuerySpec(kind="triangles", taus=4.0)} | {
            QuerySpec(kind="triangles", taus=4.0)
        }) == 1


# ----------------------------------------------------------------------
# Planner / cache keys
# ----------------------------------------------------------------------
class TestPlanner:
    def test_same_parameters_share_a_key(self, small_tps):
        plans = plan_batch(
            [
                QuerySpec(kind="triangles", taus=3.0),
                QuerySpec(kind="triangles", taus=7.0),
                QuerySpec(kind="triangles", taus=(2.0, 4.0)),
            ],
            small_tps,
        )
        assert len(distinct_index_keys(plans)) == 1

    def test_epsilon_fragments_the_key(self, small_tps):
        plans = plan_batch(
            [
                QuerySpec(kind="triangles", taus=3.0, epsilon=0.5),
                QuerySpec(kind="triangles", taus=3.0, epsilon=0.25),
            ],
            small_tps,
        )
        assert len(distinct_index_keys(plans)) == 2

    def test_auto_shares_with_its_resolved_explicit_backend(self, small_tps):
        # ``auto`` resolves through the registry's cost model to a
        # concrete backend name; a query naming that backend explicitly
        # must land on the same cached index.
        from repro.backends import default_registry

        spec = QuerySpec(kind="triangles", taus=3.0, backend="auto")
        resolved = default_registry().resolve(spec, small_tps).name
        plans = plan_batch(
            [spec, QuerySpec(kind="triangles", taus=3.0, backend=resolved)],
            small_tps,
        )
        assert plans[0].key.backend == resolved
        assert len(distinct_index_keys(plans)) == 1

    def test_pattern_kinds_share_one_index(self, small_tps):
        plans = plan_batch(
            [
                QuerySpec(kind="cliques", taus=3.0),
                QuerySpec(kind="paths", taus=3.0, m=4),
                QuerySpec(kind="stars", taus=3.0),
            ],
            small_tps,
        )
        assert len(distinct_index_keys(plans)) == 1

    def test_linf_auto_promotes_to_exact(self):
        tps = random_tps(n=30, seed=2, metric="linf")
        plan = plan_query(0, QuerySpec(kind="triangles", taus=3.0), tps)
        assert plan.key.family == "linf-triangles"
        # ...and ε no longer fragments the shared exact index.
        other = plan_query(
            0, QuerySpec(kind="triangles", taus=3.0, epsilon=0.25), tps
        )
        assert other.key == plan.key

    def test_exact_false_stays_approximate_on_linf(self):
        tps = random_tps(n=30, seed=2, metric="linf")
        plan = plan_query(
            0, QuerySpec(kind="triangles", taus=3.0, exact=False), tps
        )
        assert plan.key.family == "triangles"

    def test_exact_requires_linf_metric(self, small_tps):
        for spec in (
            QuerySpec(kind="triangles", taus=3.0, backend="linf-exact"),
            QuerySpec(kind="triangles", taus=3.0, exact=True),
        ):
            with pytest.raises(ValidationError):
                plan_query(0, spec, small_tps)

    def test_batch_error_names_the_query(self, small_tps):
        with pytest.raises(ValidationError, match="query #1"):
            plan_batch(
                [
                    QuerySpec(kind="triangles", taus=3.0),
                    QuerySpec(kind="triangles", taus=3.0, backend="linf-exact"),
                ],
                small_tps,
            )

    def test_index_cache_key_hook_matches_plan_key(self, small_tps):
        engine = QueryEngine()
        for spec in (
            QuerySpec(kind="triangles", taus=3.0),
            QuerySpec(kind="pairs-sum", taus=3.0),
            QuerySpec(kind="pairs-union", taus=3.0, kappa=2),
            QuerySpec(kind="cliques", taus=3.0),
        ):
            plan = plan_query(0, spec, small_tps)
            index = engine.get_index(small_tps, spec)
            ck = index.cache_key()
            assert ck[0] == plan.key.family
            assert ck[1] == plan.key.fingerprint == small_tps.fingerprint()
            assert ck[2] == plan.key.epsilon
            assert ck[3] == plan.key.backend
            assert tuple(ck[4:]) == plan.key.extra

    def test_fingerprint_tracks_content_not_identity(self):
        a, b = random_tps(n=25, seed=3), random_tps(n=25, seed=3)
        c = random_tps(n=25, seed=4)
        assert a.fingerprint() == b.fingerprint() != c.fingerprint()
        linf = random_tps(n=25, seed=3, metric="linf")
        assert linf.fingerprint() != a.fingerprint()


# ----------------------------------------------------------------------
# IndexCache
# ----------------------------------------------------------------------
class TestIndexCache:
    KEY = IndexKey("f", "fp", 0.5, "cover-tree")

    def test_hit_miss_accounting(self):
        cache = IndexCache()
        obj, hit, build_s, source = cache.get_or_build(self.KEY, lambda: object())
        assert not hit and cache.stats.misses == 1 and cache.stats.builds == 1
        assert build_s >= 0.0 and source == "build"
        again, hit, _, source = cache.get_or_build(self.KEY, lambda: object())
        assert hit and again is obj and cache.stats.hits == 1
        assert source == "hit"

    def test_failed_build_is_not_cached(self):
        cache = IndexCache()

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            cache.get_or_build(self.KEY, boom)
        assert self.KEY not in cache
        obj, hit, _, _source = cache.get_or_build(self.KEY, lambda: "ok")
        assert obj == "ok" and not hit

    def test_lru_eviction(self):
        cache = IndexCache(max_entries=2)
        keys = [IndexKey("f", str(i), 0.5, "b") for i in range(3)]
        for k in keys:
            cache.get_or_build(k, lambda: object())
        assert len(cache) == 2
        assert keys[0] not in cache and keys[2] in cache
        assert cache.stats.evictions == 1

    def test_single_flight_under_contention(self):
        cache = IndexCache()
        builds = []
        gate = threading.Event()

        def slow_build():
            gate.wait(timeout=5)
            builds.append(1)
            return object()

        results = [None] * 8

        def worker(i):
            results[i] = cache.get_or_build(self.KEY, slow_build)[0]

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert len(builds) == 1
        assert all(r is results[0] for r in results)
        assert cache.stats.builds == 1 and cache.stats.hits == 7


# ----------------------------------------------------------------------
# Fault isolation (ISSUE 2 bugfixes)
# ----------------------------------------------------------------------
def _fake_plan(i, key_id, builder=None, runner=None, taus=(1.0,), label=None):
    """A synthetic plan whose builder/runner the test controls."""
    spec = QuerySpec(kind="triangles", taus=taus, label=label or f"q{i}")
    return QueryPlan(
        order=i,
        spec=spec,
        key=IndexKey("fake", f"fp-{key_id}", 0.5, "b"),
        builder=builder if builder is not None else (lambda: object()),
        runner=runner if runner is not None else (lambda index, tau: [])
    )


def _boom():
    raise RuntimeError("poisoned builder")


class TestFaultIsolation:
    def test_batch_with_poisoned_builders_keeps_other_results(self):
        """The ISSUE 2 acceptance criterion: 8 queries, 2 raise, 6 survive."""
        plans = [
            _fake_plan(i, key_id=i, builder=_boom if i in (2, 5) else None)
            for i in range(8)
        ]
        results = execute_plans(
            plans, IndexCache(), max_workers=4, raise_on_error=False
        )
        assert len(results) == 8
        assert [r.spec.label for r in results] == [f"q{i}" for i in range(8)]
        good = [r for r in results if r.ok]
        bad = [r for r in results if not r.ok]
        assert len(good) == 6 and len(bad) == 2
        assert all(r.error is None and r.records_by_tau for r in good)
        for r in bad:
            assert r.spec.label in ("q2", "q5")
            assert "RuntimeError: poisoned builder" in r.error
            assert r.records_by_tau == {} and r.count == 0

    def test_poisoned_runner_is_isolated_too(self):
        def bad_runner(index, tau):
            raise ValueError("runner blew up")

        plans = [
            _fake_plan(0, key_id=0),
            _fake_plan(1, key_id=1, runner=bad_runner),
            _fake_plan(2, key_id=2),
        ]
        results = execute_plans(plans, IndexCache(), raise_on_error=False)
        assert [r.ok for r in results] == [True, False, True]
        assert "ValueError: runner blew up" in results[1].error

    def test_raise_on_error_raises_first_failure_in_submission_order(self):
        plans = [
            _fake_plan(0, key_id=0),
            _fake_plan(1, key_id=1, builder=_boom),
            _fake_plan(2, key_id=2, runner=lambda i, t: 1 / 0),
        ]
        with pytest.raises(RuntimeError, match="poisoned builder"):
            execute_plans(plans, IndexCache(), max_workers=3, raise_on_error=True)

    def test_sequential_isolation_matches_parallel(self):
        plans = [
            _fake_plan(0, key_id=0, builder=_boom),
            _fake_plan(1, key_id=1),
        ]
        results = execute_plans(
            plans, IndexCache(), parallel=False, raise_on_error=False
        )
        assert [r.ok for r in results] == [False, True]

    def test_engine_run_batch_isolates_faults(self, small_tps, monkeypatch):
        """End-to-end through QueryEngine.run_batch with real specs."""
        import repro.engine.engine as engine_mod

        real_plan_batch = engine_mod.plan_batch

        def poisoning_plan_batch(specs, tps):
            plans = real_plan_batch(specs, tps)
            return [
                QueryPlan(p.order, p.spec, p.key, _boom, p.runner)
                if p.spec.label == "poison" else p
                for p in plans
            ]

        monkeypatch.setattr(engine_mod, "plan_batch", poisoning_plan_batch)
        engine = QueryEngine()
        specs = [
            QuerySpec(kind="triangles", taus=3.0),
            # ε=0.99 keeps the poisoned keys off the healthy queries' keys.
            QuerySpec(kind="triangles", taus=3.0, epsilon=0.99, label="poison"),
            QuerySpec(kind="pairs-sum", taus=3.0),
            QuerySpec(kind="pairs-sum", taus=3.0, epsilon=0.99, label="poison"),
            QuerySpec(kind="pairs-union", taus=3.0, kappa=2),
            QuerySpec(kind="cliques", taus=3.0),
            QuerySpec(kind="stars", taus=3.0),
            QuerySpec(kind="triangles", taus=(2.0, 4.0)),
        ]
        batch = engine.run_batch(small_tps, specs)
        assert len(batch) == 8
        assert batch.n_errors == 2 and not batch.ok
        assert [not r.ok for r in batch] == [
            s.label == "poison" for s in specs
        ]
        expected = find_durable_triangles(small_tps, 3.0)
        assert [r.key for r in batch[0].records] == [r.key for r in expected]
        # raise_on_error=True restores the historical contract.
        with pytest.raises(RuntimeError, match="poisoned builder"):
            engine.run_batch(small_tps, specs, raise_on_error=True)

    def test_error_results_serialise(self):
        plans = [_fake_plan(0, key_id=0, builder=_boom)]
        [result] = execute_plans(plans, IndexCache(), raise_on_error=False)
        payload = result.to_dict()
        assert payload["ok"] is False
        assert "poisoned builder" in payload["error"]
        ok_payload = execute_plans(
            [_fake_plan(1, key_id=1)], IndexCache(), raise_on_error=False
        )[0].to_dict()
        assert ok_payload["ok"] is True and ok_payload["error"] is None

    def test_batch_result_reports_error_count(self, small_tps):
        engine = QueryEngine()
        batch = engine.run_batch(small_tps, [QuerySpec(kind="triangles", taus=3.0)])
        assert batch.ok and batch.n_errors == 0
        assert batch.to_dict()["errors"] == 0 and batch.to_dict()["ok"] is True


class TestFailedFlightAccounting:
    KEY = IndexKey("f", "fp", 0.5, "cover-tree")

    def test_waiters_on_failed_build_get_chained_copies(self):
        cache = IndexCache()
        gate = threading.Event()

        class BoomError(Exception):
            pass

        def failing_build():
            gate.wait(timeout=5)
            raise BoomError("kaboom")

        n_waiters = 5
        errors = [None] * (n_waiters + 1)

        def worker(i):
            try:
                cache.get_or_build(self.KEY, failing_build)
            except BaseException as exc:  # noqa: BLE001
                errors[i] = exc

        owner = threading.Thread(target=worker, args=(0,))
        owner.start()
        # Wait until the owner's in-flight entry is visible, then let the
        # waiters pile onto that flight before releasing the gate.
        for _ in range(200):
            if len(cache) == 1:
                break
            threading.Event().wait(0.005)
        waiters = [
            threading.Thread(target=worker, args=(i,))
            for i in range(1, n_waiters + 1)
        ]
        for t in waiters:
            t.start()
        threading.Event().wait(0.3)
        gate.set()
        owner.join()
        for t in waiters:
            t.join()

        assert all(isinstance(e, BoomError) for e in errors)
        originals = [e for e in errors if e.__cause__ is None]
        copies = [e for e in errors if e.__cause__ is not None]
        assert len(originals) == 1 and len(copies) == n_waiters
        # Each waiter raised its own instance, chained to the original.
        assert len({id(e) for e in errors}) == n_waiters + 1
        assert all(e.__cause__ is originals[0] for e in copies)

        # Stats: one miss (the failed flight's owner), no hits, no
        # builds; the waiters are failed_waits, not hits.
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 0
        assert stats.builds == 0
        assert stats.failed_waits == n_waiters
        assert stats.requests == n_waiters + 1

    def test_failed_waits_in_dict_and_since(self):
        cache = IndexCache()
        before = cache.stats.snapshot()
        assert "failed_waits" in cache.stats.as_dict()
        assert cache.stats.snapshot().since(before).failed_waits == 0

    def test_successful_waiters_still_count_as_hits(self):
        # The happy path of the old accounting must be unchanged.
        cache = IndexCache()
        cache.get_or_build(self.KEY, lambda: "idx")
        cache.get_or_build(self.KEY, lambda: "idx")
        assert cache.stats.hits == 1 and cache.stats.failed_waits == 0


class TestBuildSecondsUnderEviction:
    def test_outcome_carries_build_seconds_past_eviction(self):
        import time

        cache = IndexCache(max_entries=1)
        k1 = IndexKey("f", "one", 0.5, "b")
        k2 = IndexKey("f", "two", 0.5, "b")

        def slow_build():
            time.sleep(0.01)
            return "a"

        out1 = cache.get_or_build(k1, slow_build)
        cache.get_or_build(k2, lambda: "b")  # evicts k1
        assert k1 not in cache
        assert out1.build_seconds >= 0.01
        # ...which is exactly the after-the-fact lookup's blind spot:
        assert cache.build_seconds_for(k1) == 0.0

    def test_executor_reports_build_time_despite_eviction(self):
        """A mid-query eviction (guaranteed at max_entries=1) must not
        zero the reported build time."""
        import time

        cache = IndexCache(max_entries=1)
        other_key = IndexKey("fake", "fp-other", 0.5, "b")

        def evicting_runner(index, tau):
            # Building another index evicts this plan's entry before the
            # executor assembles its QueryResult.
            cache.get_or_build(other_key, lambda: "other")
            return []

        plan = _fake_plan(
            0,
            key_id="self",
            builder=lambda: (time.sleep(0.01), "idx")[1],
            runner=evicting_runner,
        )
        [result] = execute_plans(plans=[plan], cache=cache, parallel=False)
        assert plan.key not in cache  # the eviction really happened
        assert result.build_seconds >= 0.01


# ----------------------------------------------------------------------
# QueryEngine end-to-end
# ----------------------------------------------------------------------
def _mixed_specs():
    """≥10 mixed queries over one dataset (4 distinct indexes)."""
    return [
        QuerySpec(kind="triangles", taus=3.0),
        QuerySpec(kind="triangles", taus=5.0),
        QuerySpec(kind="triangles", taus=(2.0, 4.0, 6.0)),
        QuerySpec(kind="pairs-sum", taus=4.0),
        QuerySpec(kind="pairs-sum", taus=6.0),
        QuerySpec(kind="pairs-union", taus=4.0, kappa=2),
        QuerySpec(kind="pairs-union", taus=4.0, kappa=3),
        QuerySpec(kind="cliques", taus=3.0, m=3),
        QuerySpec(kind="cliques", taus=4.0, m=4),
        QuerySpec(kind="stars", taus=4.0, m=3),
        QuerySpec(kind="paths", taus=4.0, m=3),
    ]


class TestQueryEngine:
    def test_batch_builds_each_distinct_index_once_and_matches_api(self, medium_tps):
        """The ISSUE 1 acceptance criterion."""
        specs = _mixed_specs()
        assert len(specs) >= 10
        engine = QueryEngine()
        batch = engine.run_batch(medium_tps, specs)

        # Each distinct index was built exactly once, asserted via stats.
        assert batch.distinct_indexes == 4
        assert engine.stats.builds == 4
        assert engine.stats.misses == 4
        assert engine.stats.hits == len(specs) - 4

        # Results are identical to per-call api.py invocations.
        tps = medium_tps
        expect = {
            0: find_durable_triangles(tps, 3.0),
            1: find_durable_triangles(tps, 5.0),
            3: find_sum_durable_pairs(tps, 4.0),
            4: find_sum_durable_pairs(tps, 6.0),
            5: find_union_durable_pairs(tps, 4.0, kappa=2),
            6: find_union_durable_pairs(tps, 4.0, kappa=3),
            # The core helper builds its PatternIndex directly, so pin it
            # to the backend the engine's registry resolution picked.
            7: find_durable_cliques(tps, 3, 3.0, backend=batch[7].key.backend),
            8: find_durable_cliques(tps, 4, 4.0, backend=batch[8].key.backend),
        }
        for i, records in expect.items():
            assert [r.key for r in batch[i].records] == [r.key for r in records], i
        for tau in (2.0, 4.0, 6.0):
            assert [r.key for r in batch[2].records_by_tau[tau]] == [
                r.key for r in find_durable_triangles(tps, tau)
            ]

    def test_tau_sweep_equivalence(self, small_tps):
        engine = QueryEngine()
        taus = (1.0, 3.0, 5.0, 9.0)
        result = engine.run(small_tps, QuerySpec(kind="triangles", taus=taus))
        for tau in taus:
            per_call = find_durable_triangles(small_tps, tau)
            assert [r.key for r in result.records_by_tau[tau]] == [
                r.key for r in per_call
            ]

    def test_concurrent_batch_is_deterministic(self, medium_tps):
        specs = _mixed_specs()
        runs = []
        for parallel in (True, True, False):
            engine = QueryEngine(max_workers=4)
            batch = engine.run_batch(medium_tps, specs, parallel=parallel)
            runs.append(
                [
                    [(tau, tuple(r.key for r in recs))
                     for tau, recs in res.records_by_tau.items()]
                    for res in batch
                ]
            )
        assert runs[0] == runs[1] == runs[2]

    def test_dict_specs_accepted(self, small_tps):
        engine = QueryEngine()
        batch = engine.run_batch(
            small_tps,
            [{"kind": "triangles", "tau": 3.0}, {"kind": "pairs-sum", "tau": 3.0}],
        )
        assert len(batch) == 2
        assert batch[0].records == [
            r for r in find_durable_triangles(small_tps, 3.0)
        ]

    def test_results_order_matches_submission_order(self, small_tps):
        engine = QueryEngine(max_workers=4)
        specs = _mixed_specs()
        batch = engine.run_batch(small_tps, specs)
        assert [r.spec for r in batch] == specs

    def test_cache_shared_across_batches(self, small_tps):
        engine = QueryEngine()
        engine.run_batch(small_tps, [QuerySpec(kind="triangles", taus=3.0)])
        batch = engine.run_batch(small_tps, [QuerySpec(kind="triangles", taus=6.0)])
        assert batch[0].cache_hit
        assert engine.stats.builds == 1

    def test_batch_cache_stats_are_per_batch(self, small_tps):
        engine = QueryEngine()
        first = engine.run_batch(small_tps, [QuerySpec(kind="triangles", taus=3.0)])
        second = engine.run_batch(small_tps, [QuerySpec(kind="triangles", taus=6.0)])
        assert first.cache_stats["builds"] == 1
        # The second batch built nothing; cumulative figures stay on
        # engine.stats.
        assert second.cache_stats["builds"] == 0
        assert second.cache_stats["hits"] == 1
        assert engine.stats.builds == 1

    def test_reset_clears_cache_and_stats(self, small_tps):
        engine = QueryEngine()
        engine.run(small_tps, QuerySpec(kind="triangles", taus=3.0))
        engine.reset()
        assert engine.stats.requests == 0
        result = engine.run(small_tps, QuerySpec(kind="triangles", taus=3.0))
        assert not result.cache_hit

    def test_batch_result_serialises(self, small_tps):
        import json

        engine = QueryEngine()
        batch = engine.run_batch(
            small_tps,
            [
                QuerySpec(kind="triangles", taus=(2.0, 4.0)),
                QuerySpec(kind="pairs-union", taus=3.0, kappa=2),
                QuerySpec(kind="stars", taus=3.0),
            ],
        )
        payload = json.loads(json.dumps(batch.to_dict()))
        assert len(payload["queries"]) == 3
        sweep = payload["queries"][0]["results"]
        assert [e["tau"] for e in sweep] == [2.0, 4.0]
        assert all("records" in e for e in sweep)
        lean = batch.to_dict(include_records=False)
        assert all(
            "records" not in e for q in lean["queries"] for e in q["results"]
        )
