"""Max-overlap structures — ``IT∪`` (Section 5.2, Appendix E).

``ComputeMaxUnionD`` must find, for a query interval ``J``, the indexed
interval maximising ``|I ∩ J|``.  Appendix E decomposes the optimum into
three candidates:

* among intervals stabbing ``J⁻``: the one with the largest right end;
* among intervals stabbing ``J⁺``: the one with the smallest left end;
* among intervals contained in ``J``: the longest one.

The greedy max-κ-coverage loop of Algorithm 8 must additionally *skip*
the lifespans of the pair ``(p, q)`` under evaluation, so every
candidate list is maintained as a top-3 (three best, distinct ids):
excluding at most two ids always leaves the true best reachable.

Structures:

* :class:`MaxOverlapIndex` — per canonical group; ``best_overlap``
  answers the three-candidate query with exclusions in ``O(log² m)``.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Set, Tuple

from ..errors import ValidationError

__all__ = ["MaxOverlapIndex", "OverlapCandidate"]

#: ``(overlap_length, point_id, start, end)`` of the winning interval.
OverlapCandidate = Tuple[float, int, float, float]

_Entry = Tuple[float, int, float, float]  # (value, id, start, end)


def _push_top3(top: List[_Entry], entry: _Entry) -> List[_Entry]:
    """Insert into a best-first top-3 list ordered by descending value."""
    out = list(top)
    out.append(entry)
    out.sort(key=lambda e: (-e[0], e[1]))
    return out[:3]


class _PrefixTop3:
    """For a fixed ordering of items, ``best(i)`` = top-3 among the first i."""

    __slots__ = ("_tables",)

    def __init__(self, entries: Sequence[_Entry]) -> None:
        tables: List[List[_Entry]] = [[]]
        cur: List[_Entry] = []
        for e in entries:
            cur = _push_top3(cur, e)
            tables.append(cur)
        self._tables = tables

    def best(self, prefix_len: int) -> List[_Entry]:
        return self._tables[prefix_len]


class _ContainedTree:
    """Merge-sort tree for "longest interval contained in [a, b]" queries.

    Items sorted by start ascending; an implicit segment tree over that
    order; each segment node keeps its items sorted by end ascending with
    prefix-top-3 by *length*.  A query takes the start-suffix
    ``start ≥ a`` (``O(log m)`` nodes) and, inside each node, the
    end-prefix ``end ≤ b``.
    """

    __slots__ = ("_size", "_m", "_starts", "_node_ends", "_node_top")

    def __init__(self, items: Sequence[Tuple[float, float, int]]) -> None:
        ordered = sorted(items, key=lambda t: (t[0], t[2]))
        m = len(ordered)
        self._m = m
        self._starts = [t[0] for t in ordered]
        size = 1
        while size < max(m, 1):
            size *= 2
        self._size = size
        node_items: List[List[Tuple[float, float, int]]] = [[] for _ in range(2 * size)]
        for pos, (lo, hi, pid) in enumerate(ordered):
            node_items[size + pos] = [(lo, hi, pid)]
        for node in range(size - 1, 0, -1):
            both = node_items[2 * node] + node_items[2 * node + 1]
            both.sort(key=lambda t: (t[1], t[2]))
            node_items[node] = both
        self._node_ends: List[List[float]] = [
            [t[1] for t in items_] for items_ in node_items
        ]
        self._node_top: List[_PrefixTop3] = [
            _PrefixTop3([(hi - lo, pid, lo, hi) for lo, hi, pid in items_])
            for items_ in node_items
        ]

    def candidates(self, a: float, b: float) -> List[_Entry]:
        """Top candidates (value = interval length) contained in ``[a, b]``."""
        t = bisect.bisect_left(self._starts, a)
        if t >= self._m:
            return []
        out: List[_Entry] = []
        lo = self._size + t
        hi = self._size + self._m
        nodes: List[int] = []
        while lo < hi:
            if lo & 1:
                nodes.append(lo)
                lo += 1
            if hi & 1:
                hi -= 1
                nodes.append(hi)
            lo //= 2
            hi //= 2
        best: List[_Entry] = []
        for node in nodes:
            k = bisect.bisect_right(self._node_ends[node], b)
            for entry in self._node_top[node].best(k):
                best = _push_top3(best, entry)
        out.extend(best)
        return out


class MaxOverlapIndex:
    """``IT∪`` for one canonical group (Appendix E).

    Parameters
    ----------
    starts, ends, ids:
        Parallel arrays of member lifespans and global point ids.
    """

    __slots__ = ("_m", "_starts_asc", "_top_end_by_start", "_ends_desc", "_top_start_by_end", "_contained")

    def __init__(
        self,
        starts: Sequence[float],
        ends: Sequence[float],
        ids: Sequence[int],
    ) -> None:
        m = len(starts)
        if not (len(ends) == len(ids) == m):
            raise ValidationError("starts/ends/ids must have equal length")
        items = [
            (float(s), float(e), int(i)) for s, e, i in zip(starts, ends, ids)
        ]
        for s, e, _ in items:
            if e < s:
                raise ValidationError(f"interval end ({e!r}) precedes start ({s!r})")
        self._m = m
        # Candidate (a): stab J⁻, maximise end.  Sorted by start asc.
        by_start = sorted(items, key=lambda t: (t[0], t[2]))
        self._starts_asc = [t[0] for t in by_start]
        self._top_end_by_start = _PrefixTop3(
            [(hi, pid, lo, hi) for lo, hi, pid in by_start]
        )
        # Candidate (b): stab J⁺, minimise start.  Sorted by end desc;
        # top-3 value = −start so the "best" is the smallest start.
        by_end_desc = sorted(items, key=lambda t: (-t[1], t[2]))
        self._ends_desc = [t[1] for t in by_end_desc]
        self._top_start_by_end = _PrefixTop3(
            [(-lo, pid, lo, hi) for lo, hi, pid in by_end_desc]
        )
        # Candidate (c): longest contained interval.
        self._contained = _ContainedTree(items)

    def __len__(self) -> int:
        return self._m

    # ------------------------------------------------------------------
    @staticmethod
    def _count_ge(desc: List[float], t: float) -> int:
        lo, hi = 0, len(desc)
        while lo < hi:
            mid = (lo + hi) // 2
            if desc[mid] >= t:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def best_overlap(
        self,
        a: float,
        b: float,
        exclude: Optional[Set[int]] = None,
    ) -> Optional[OverlapCandidate]:
        """The member interval maximising ``|I ∩ [a, b]|``.

        ``exclude`` may hold up to two point ids (the pair being
        evaluated) whose lifespans must not be used as witnesses.
        Returns ``None`` when no non-excluded member intersects ``[a,b]``
        with positive overlap.
        """
        if b <= a or self._m == 0:
            return None
        excl: Set[int] = exclude or set()
        best: Optional[OverlapCandidate] = None

        # (a) stab a, maximise end.
        k = bisect.bisect_right(self._starts_asc, a)
        for value, pid, lo, hi in self._top_end_by_start.best(k):
            if pid in excl or value < a:
                continue
            overlap = min(hi, b) - a
            if overlap > 0 and (best is None or overlap > best[0]):
                best = (overlap, pid, lo, hi)
            break  # entries are end-descending; the first usable is optimal

        # (b) stab b, minimise start.
        k = self._count_ge(self._ends_desc, b)
        for neg_start, pid, lo, hi in self._top_start_by_end.best(k):
            if pid in excl or -neg_start > b:
                continue
            overlap = b - max(lo, a)
            if overlap > 0 and (best is None or overlap > best[0]):
                best = (overlap, pid, lo, hi)
            break

        # (c) longest contained.
        for value, pid, lo, hi in self._contained.candidates(a, b):
            if pid in excl:
                continue
            if value > 0 and (best is None or value > best[0]):
                best = (value, pid, lo, hi)
            break

        return best
