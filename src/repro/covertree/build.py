"""Greedy net hierarchy — the modified cover tree of Appendix A.

The hierarchy consists of nets ``N_ℓ ⊆ N_{ℓ-1} ⊆ … ⊆ P`` at dyadic
scales ``2^ℓ``.  Each level satisfies the cover-tree invariants:

* *separation*: reps at level ``ℓ`` are pairwise ``> 2^ℓ`` apart;
* *covering*: every rep at level ``ℓ-1`` is within ``2^ℓ`` of its parent;
* *nesting*: ``N_ℓ ⊆ N_{ℓ-1}``.

Greedy net construction is grid-accelerated for ``ℓ_p`` metrics (cells of
side ``2^ℓ``: a net point within ``2^ℓ`` must fall in one of the ``3^d``
neighbouring cells) and falls back to vectorised linear scans for
arbitrary metric oracles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..geometry.metrics import Metric

__all__ = ["NetLevel", "NetHierarchy", "build_hierarchy", "greedy_net"]


@dataclass(slots=True)
class NetLevel:
    """One level of the hierarchy.

    ``rep_ids`` are point ids forming the net; ``children[r]`` lists the
    level-below rep ids assigned to parent ``r`` (for the bottom level,
    the member point ids).
    """

    level: int
    radius: float
    rep_ids: List[int]
    children: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def cover_bound(self) -> float:
        """Upper bound on the distance from the rep to any point in its subtree."""
        return 2.0 * self.radius


@dataclass(slots=True)
class NetHierarchy:
    """The full net hierarchy, bottom (finest) level first."""

    levels: List[NetLevel]
    assign_bottom: Dict[int, int]  # point id -> bottom rep id

    @property
    def bottom(self) -> NetLevel:
        return self.levels[0]

    @property
    def top(self) -> NetLevel:
        return self.levels[-1]


def greedy_net(
    points: np.ndarray,
    ids: Sequence[int],
    radius: float,
    metric: Metric,
) -> Tuple[List[int], Dict[int, int]]:
    """Greedy ``radius``-net of the given ids.

    Returns ``(net_ids, assignment)`` where every id is assigned to a net
    id within ``radius`` and net ids are pairwise ``> radius`` apart.
    Iteration order is by id, so the construction is deterministic.
    """
    net_ids: List[int] = []
    assignment: Dict[int, int] = {}
    ordered = sorted(int(i) for i in ids)
    if not ordered:
        return net_ids, assignment

    if metric.supports_grid and radius > 0:
        cells: Dict[Tuple[int, ...], List[int]] = {}
        side = radius
        inv = 1.0 / side
        dim = points.shape[1]
        offsets = _box_offsets(dim)
        for i in ordered:
            p = points[i]
            key = tuple(int(math.floor(c * inv)) for c in p)
            chosen = -1
            for off in offsets:
                cell = tuple(k + o for k, o in zip(key, off))
                for j in cells.get(cell, ()):
                    if metric.dist(points[j], p) <= radius:
                        chosen = j
                        break
                if chosen >= 0:
                    break
            if chosen < 0:
                net_ids.append(i)
                cells.setdefault(key, []).append(i)
                assignment[i] = i
            else:
                assignment[i] = chosen
        return net_ids, assignment

    # General metric fallback: vectorised scan over current net points.
    net_pts: List[np.ndarray] = []
    for i in ordered:
        p = points[i]
        chosen = -1
        if net_pts:
            d = metric.dists(np.vstack(net_pts), p)
            hits = np.nonzero(d <= radius)[0]
            if hits.size:
                chosen = net_ids[int(hits[0])]
        if chosen < 0:
            net_ids.append(i)
            net_pts.append(points[i])
            assignment[i] = i
        else:
            assignment[i] = chosen
    return net_ids, assignment


def _box_offsets(dim: int) -> List[Tuple[int, ...]]:
    from itertools import product

    return list(product((-1, 0, 1), repeat=dim))


def build_hierarchy(
    points: np.ndarray,
    metric: Metric,
    resolution: float,
    max_levels: int = 64,
) -> NetHierarchy:
    """Build the net hierarchy down to balls of radius ≤ ``resolution``.

    The bottom level lives at scale ``2^⌊log2(resolution)⌋`` so every
    bottom ball has radius at most ``resolution``; levels are added
    upward (doubling the scale) until a single net point remains.
    """
    if resolution <= 0:
        raise ValidationError(f"resolution must be positive, got {resolution!r}")
    n = len(points)
    if n == 0:
        raise ValidationError("cannot build a hierarchy over zero points")

    bottom_level = math.floor(math.log2(resolution))
    radius = 2.0**bottom_level
    all_ids = list(range(n))
    net_ids, assignment = greedy_net(points, all_ids, radius, metric)
    bottom = NetLevel(level=bottom_level, radius=radius, rep_ids=net_ids)
    for pid, rep in assignment.items():
        bottom.children.setdefault(rep, []).append(pid)
    levels = [bottom]
    assign_bottom = dict(assignment)

    current = net_ids
    level = bottom_level
    while len(current) > 1 and len(levels) < max_levels:
        level += 1
        radius = 2.0**level
        net, assign = greedy_net(points, current, radius, metric)
        lvl = NetLevel(level=level, radius=radius, rep_ids=net)
        for child, parent in assign.items():
            lvl.children.setdefault(parent, []).append(child)
        levels.append(lvl)
        current = net
    return NetHierarchy(levels=levels, assign_bottom=assign_bottom)
