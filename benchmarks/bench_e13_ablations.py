"""E13 — micro-ablations.

* ``ITΣ`` (paper-faithful annotated interval tree, ``O(log² n)``) vs the
  coverage profile (``O(log n)``) on the ``ComputeSumD`` primitive and
  end-to-end on ``ReportSUMPair``;
* the delay-guaranteed enumerator (Remark 2): maximum inter-yield work
  stays flat while ``n`` grows.
"""

import numpy as np
import pytest

from repro.core.enumeration import DelayGuaranteedEnumerator
from repro.temporal import AnnotatedIntervalTree, CoverageProfile

from helpers import TAU, sum_index, triangle_index


def _random_intervals(n, seed=0):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, 1000, size=n)
    return [(float(s), float(s + l)) for s, l in zip(starts, rng.uniform(0, 100, n))]


@pytest.mark.parametrize("cls", [AnnotatedIntervalTree, CoverageProfile])
def test_compute_sum_primitive(benchmark, cls):
    ivs = _random_intervals(4000)
    struct = cls(ivs)
    rng = np.random.default_rng(1)
    queries = [(float(a), float(a + w)) for a, w in
               zip(rng.uniform(0, 1000, 200), rng.uniform(1, 200, 200))]

    def run():
        return sum(struct.sum_intersections(a, b) for a, b in queries)

    benchmark(run)
    benchmark.extra_info["structure"] = cls.__name__
    benchmark.group = "E13 ComputeSumD primitive (4000 intervals, 200 queries)"


@pytest.mark.parametrize("sum_backend", ["profile", "tree"])
def test_sum_pair_end_to_end(benchmark, sum_backend):
    idx = sum_index(800, sum_backend=sum_backend)
    result = benchmark.pedantic(idx.query, args=(TAU,), rounds=3, iterations=1)
    benchmark.extra_info["sum_backend"] = sum_backend
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E13 ReportSUMPair backend ablation (n=800)"


@pytest.mark.parametrize("n", [400, 800, 1600])
def test_delay_guarantee(benchmark, n):
    idx = triangle_index(n)

    def run():
        enum = DelayGuaranteedEnumerator(idx, TAU)
        count = sum(1 for _ in enum)
        return enum, count

    enum, count = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["out"] = count
    benchmark.extra_info["max_delay_ops"] = enum.max_delay_ops
    benchmark.group = "E13 delay-guaranteed enumeration"
