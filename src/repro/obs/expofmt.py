"""Parse, merge and summarise Prometheus text exposition scrapes.

Three consumers sit on the reading side of the ``/metrics`` seam and
share this module so they agree on what a scrape means:

* the **router** scrapes each worker's ``/metrics``, relabels every
  sample with ``worker="<slot>"`` and merges the result into its own
  scrape (:func:`parse_exposition`, :func:`relabel`, :func:`merge`);
* the **benches** diff a before/after pair of scrapes to derive
  latency and throughput facts (:func:`counter_value`,
  :func:`histogram_totals`, :class:`HistogramSnapshot` arithmetic);
* the **conformance test** parses a live scrape strictly and rejects
  malformed output (:func:`parse_exposition` raises
  :class:`ExpositionError` instead of guessing).

The parser is deliberately strict — ``# TYPE`` must precede a family's
samples, label syntax must be exact, histogram buckets must be
cumulative with ``_count`` equal to the ``+Inf`` bucket — because its
job is to prove our own output well-formed, not to accept the wild.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Optional, Tuple

from .metrics import Family, Sample, render_families

__all__ = [
    "ExpositionError",
    "parse_exposition",
    "relabel",
    "merge",
    "counter_value",
    "gauge_value",
    "HistogramSnapshot",
    "histogram_snapshot",
]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class ExpositionError(ValueError):
    """A scrape violated the text exposition format."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _unescape_label(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 1 >= len(value):
                raise ValueError("dangling backslash in label value")
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                raise ValueError(f"invalid escape \\{nxt} in label value")
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _parse_labels(text: str, lineno: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_RE.match(text, pos)
        if not match:
            raise ExpositionError(lineno, f"bad label syntax at {text[pos:]!r}")
        name = match.group(1)
        if name in labels:
            raise ExpositionError(lineno, f"duplicate label {name!r}")
        try:
            labels[name] = _unescape_label(match.group(2))
        except ValueError as exc:
            raise ExpositionError(lineno, str(exc)) from exc
        pos = match.end()
        if pos < len(text):
            if text[pos] != ",":
                raise ExpositionError(lineno, f"expected ',' at {text[pos:]!r}")
            pos += 1
    return labels


def _base_name(sample_name: str, family: Family) -> str:
    if family.type == "histogram":
        for suffix in _HISTOGRAM_SUFFIXES:
            if sample_name == family.name + suffix:
                return family.name
        return sample_name
    return sample_name


def parse_exposition(text: str) -> Dict[str, Family]:
    """Strictly parse a scrape into ``{family_name: Family}``.

    Raises :class:`ExpositionError` on any malformed line, a sample
    preceding its ``# TYPE``, samples interleaved across families, or a
    histogram whose buckets are non-cumulative / inconsistent with
    ``_sum``/``_count``.
    """
    families: Dict[str, Family] = {}
    current: Optional[Family] = None
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            if not name:
                raise ExpositionError(lineno, "HELP line without a metric name")
            if name in families:
                raise ExpositionError(lineno, f"duplicate HELP for {name!r}")
            current = Family(name, "untyped", help_text)
            families[name] = current
        elif line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            parts = rest.split(" ")
            if len(parts) != 2:
                raise ExpositionError(lineno, f"malformed TYPE line {line!r}")
            name, type_ = parts
            if type_ not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ExpositionError(lineno, f"unknown metric type {type_!r}")
            family = families.get(name)
            if family is None:
                family = Family(name, type_, "")
                families[name] = family
            elif family.samples:
                raise ExpositionError(lineno, f"TYPE for {name!r} after its samples")
            else:
                family.type = type_
            current = family
        elif line.startswith("#"):
            continue  # comment
        else:
            match = _SAMPLE_RE.match(line)
            if not match:
                raise ExpositionError(lineno, f"malformed sample line {line!r}")
            sample_name = match.group("name")
            labels = _parse_labels(match.group("labels") or "", lineno)
            try:
                value = _parse_value(match.group("value"))
            except ValueError:
                raise ExpositionError(
                    lineno, f"bad sample value {match.group('value')!r}"
                ) from None
            if current is None:
                raise ExpositionError(
                    lineno, f"sample {sample_name!r} before any HELP/TYPE line"
                )
            base = _base_name(sample_name, current)
            if base != current.name:
                raise ExpositionError(
                    lineno,
                    f"sample {sample_name!r} outside its family "
                    f"(current family is {current.name!r})",
                )
            current.samples.append(Sample(sample_name, labels, value))
    for family in families.values():
        if family.type == "histogram":
            _check_histogram(family)
    return families


def _series_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def _check_histogram(family: Family) -> None:
    """Buckets cumulative and ordered; ``_count`` == ``+Inf`` bucket."""
    series: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = {}
    for sample in family.samples:
        labels = sample.labels
        key = _series_key(labels)
        entry = series.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if sample.name == family.name + "_bucket":
            if "le" not in labels:
                raise ExpositionError(0, f"{sample.name} without an 'le' label")
            entry["buckets"].append((_parse_value(labels["le"]), sample.value))
        elif sample.name == family.name + "_sum":
            entry["sum"] = sample.value
        elif sample.name == family.name + "_count":
            entry["count"] = sample.value
    for key, entry in series.items():
        buckets = sorted(entry["buckets"], key=lambda pair: pair[0])
        if not buckets:
            raise ExpositionError(0, f"histogram {family.name} series {key!r} has no buckets")
        if buckets[-1][0] != math.inf:
            raise ExpositionError(0, f"histogram {family.name} lacks a +Inf bucket")
        last = -1.0
        for bound, cumulative in buckets:
            if cumulative < last:
                raise ExpositionError(
                    0,
                    f"histogram {family.name} buckets not monotonic at le={bound}",
                )
            last = cumulative
        if entry["count"] is None or entry["sum"] is None:
            raise ExpositionError(0, f"histogram {family.name} missing _sum or _count")
        if entry["count"] != buckets[-1][1]:
            raise ExpositionError(
                0,
                f"histogram {family.name}: _count {entry['count']} != "
                f"+Inf bucket {buckets[-1][1]}",
            )


def relabel(families: Dict[str, Family], **labels: str) -> Dict[str, Family]:
    """A copy of *families* with *labels* added to every sample.

    Used by the router to tag each worker's scrape with
    ``worker="<slot>"`` before merging.  Existing labels win — a sample
    that already carries one of the keys is left untouched.
    """
    out: Dict[str, Family] = {}
    for name, family in families.items():
        copied = Family(name, family.type, family.help)
        for sample in family.samples:
            merged = dict(labels)
            merged.update(sample.labels)
            copied.samples.append(Sample(sample.name, merged, sample.value))
        out[name] = copied
    return out


def merge(*family_maps: Dict[str, Family]) -> List[Family]:
    """Merge scrapes into one sorted family list.

    Same-named families concatenate their samples; the first map to
    define a family supplies its type and help text.
    """
    merged: Dict[str, Family] = {}
    for family_map in family_maps:
        for name, family in family_map.items():
            target = merged.get(name)
            if target is None:
                target = Family(name, family.type, family.help)
                merged[name] = target
            target.samples.extend(family.samples)
    return sorted(merged.values(), key=lambda f: f.name)


def render_merged(*family_maps: Dict[str, Family]) -> str:
    return render_families(merge(*family_maps))


def _match(sample_labels: Dict[str, str], wanted: Dict[str, str]) -> bool:
    return all(sample_labels.get(k) == v for k, v in wanted.items())


def counter_value(
    families: Dict[str, Family], name: str, labels: Optional[Dict[str, str]] = None
) -> float:
    """Sum of a counter/gauge family's samples matching *labels*."""
    family = families.get(name)
    if family is None:
        return 0.0
    wanted = labels or {}
    return sum(s.value for s in family.samples if _match(s.labels, wanted))


gauge_value = counter_value


class HistogramSnapshot:
    """One histogram series reduced to (bounds, cumulative counts, sum, count).

    Subtraction yields the interval histogram between two scrapes, from
    which the benches derive mean and interpolated percentiles.
    """

    def __init__(
        self,
        bounds: Tuple[float, ...],
        cumulative: Tuple[float, ...],
        sum_: float,
        count: float,
    ) -> None:
        self.bounds = bounds
        self.cumulative = cumulative
        self.sum = sum_
        self.count = count

    def __sub__(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        # A series that had no observations yet renders no samples at
        # all, so its snapshot has no bounds; treat it as all-zero over
        # the other side's bounds (the common "scrape before first
        # request" diff).
        if not other.bounds and not other.count:
            other = HistogramSnapshot(
                self.bounds, (0.0,) * len(self.bounds), other.sum, other.count
            )
        elif not self.bounds and not self.count:
            self = HistogramSnapshot(
                other.bounds, (0.0,) * len(other.bounds), self.sum, self.count
            )
        if other.bounds != self.bounds:
            raise ValueError("histogram snapshots have different bucket bounds")
        return HistogramSnapshot(
            self.bounds,
            tuple(a - b for a, b in zip(self.cumulative, other.cumulative)),
            self.sum - other.sum,
            self.count - other.count,
        )

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear interpolation inside the bucket holding quantile *q*.

        The +Inf bucket has no finite upper edge; values landing there
        report the largest finite bound (a floor on the true value).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count <= 0:
            return 0.0
        rank = q * self.count
        prev_cum = 0.0
        prev_bound = 0.0
        for bound, cum in zip(self.bounds, self.cumulative):
            if cum >= rank:
                if bound == math.inf:
                    return prev_bound
                width = cum - prev_cum
                if width <= 0:
                    return bound
                return prev_bound + (bound - prev_bound) * (rank - prev_cum) / width
            prev_cum = cum
            prev_bound = bound if bound != math.inf else prev_bound
        return prev_bound


def histogram_snapshot(
    families: Dict[str, Family], name: str, labels: Optional[Dict[str, str]] = None
) -> HistogramSnapshot:
    """Aggregate a histogram family's matching series into one snapshot.

    Series with identical bucket bounds sum element-wise, so per-label
    breakdowns (e.g. per-dataset) roll up into fleet totals.
    """
    family = families.get(name)
    wanted = labels or {}
    per_bound: Dict[float, float] = {}
    total_sum = 0.0
    total_count = 0.0
    if family is not None:
        for sample in family.samples:
            # Copy before popping ``le``: the caller's parsed families
            # must survive repeated snapshot calls untouched.
            slabels = dict(sample.labels)
            if sample.name == name + "_bucket":
                le = slabels.pop("le", None)
                if le is None or not _match(slabels, wanted):
                    continue
                bound = _parse_value(le)
                per_bound[bound] = per_bound.get(bound, 0.0) + sample.value
            elif sample.name == name + "_sum" and _match(slabels, wanted):
                total_sum += sample.value
            elif sample.name == name + "_count" and _match(slabels, wanted):
                total_count += sample.value
    bounds = tuple(sorted(per_bound))
    cumulative = tuple(per_bound[b] for b in bounds)
    return HistogramSnapshot(bounds, cumulative, total_sum, total_count)
