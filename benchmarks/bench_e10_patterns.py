"""E10 — Appendix D.2: cliques, paths, and stars.

The pattern reporters share Algorithm 1's near-linear regime; their
extra cost is the wider search radius (paths, stars) and the output
itself (combinatorial for stars).
"""

import pytest

from repro.core.patterns import PatternIndex

from helpers import workload

N = 400
TAU = 8.0


@pytest.fixture(scope="module")
def pattern_index():
    return PatternIndex(workload(N), epsilon=0.5)


def test_cliques_m4(benchmark, pattern_index):
    result = benchmark.pedantic(
        lambda: list(pattern_index.iter_cliques(4, TAU)), rounds=3, iterations=1
    )
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E10 patterns (n=400)"


def test_paths_m3(benchmark, pattern_index):
    result = benchmark.pedantic(
        lambda: list(pattern_index.iter_paths(3, TAU)), rounds=3, iterations=1
    )
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E10 patterns (n=400)"


def test_stars_m4(benchmark, pattern_index):
    result = benchmark.pedantic(
        lambda: list(pattern_index.iter_stars(4, TAU)), rounds=3, iterations=1
    )
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E10 patterns (n=400)"


def test_star_summaries(benchmark, pattern_index):
    """The implicit star representation the paper reports (centers +
    witness sets) versus the full Cartesian expansion above."""
    result = benchmark.pedantic(
        lambda: pattern_index.star_summaries(4, TAU), rounds=3, iterations=1
    )
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E10 patterns (n=400)"
