"""Setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed editable in offline environments whose pip
cannot build PEP 660 wheels (no `wheel` package available).
"""

from setuptools import setup

setup()
