"""Direct tests of the durable-ball structures D and D' (Section 2.2)."""

import pytest

from repro import TemporalPointSet, ValidationError
from repro.errors import BackendError
from repro.structures import DurableBallStructure, make_decomposition

from conftest import random_tps


def brute_partners(tps, p, tau, radius):
    key = tps.anchor_key(p)
    d = tps.metric.dists(tps.points, tps.points[p])
    sp = float(tps.starts[p])
    return {
        int(q)
        for q in range(tps.n)
        if d[q] <= radius
        and tps.anchor_key(int(q)) < key
        and tps.ends[q] >= sp + tau
    }


class TestQuery:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("backend", ["cover-tree", "grid"])
    def test_sandwich_per_anchor(self, seed, backend):
        tps = random_tps(n=80, seed=seed)
        st = DurableBallStructure(tps, resolution=0.125, backend=backend)
        for p in range(0, tps.n, 7):
            for tau in (1.0, 5.0):
                got = set()
                for subset in st.query(p, tau):
                    got.update(subset.ids())
                must = brute_partners(tps, p, tau, 1.0)
                may = brute_partners(tps, p, tau, 1.0 + 2 * 0.125 + 1e-6)
                assert must <= got <= may

    def test_radius_parameter(self):
        tps = random_tps(n=60, seed=5)
        st = DurableBallStructure(tps, resolution=0.125)
        p = 10
        small = set()
        for s in st.query(p, 1.0, radius=1.0):
            small.update(s.ids())
        big = set()
        for s in st.query(p, 1.0, radius=2.0):
            big.update(s.ids())
        assert small <= big
        assert brute_partners(tps, p, 1.0, 2.0) <= big

    def test_min_end_override(self):
        tps = random_tps(n=50, seed=7)
        st = DurableBallStructure(tps, resolution=0.125)
        p = 5
        sp = float(tps.starts[p])
        loose = {q for s in st.query(p, 1.0) for q in s.ids()}
        tight = {q for s in st.query(p, 1.0, min_end=sp + 50.0) for q in s.ids()}
        assert tight <= loose
        for q in tight:
            assert tps.ends[q] >= sp + 50.0

    def test_subsets_disjoint(self):
        tps = random_tps(n=70, seed=9)
        st = DurableBallStructure(tps, resolution=0.125)
        for p in range(0, tps.n, 11):
            seen = []
            for s in st.query(p, 1.0):
                seen.extend(s.ids())
            assert len(seen) == len(set(seen))


class TestSplitQuery:
    @pytest.mark.parametrize("seed", range(3))
    def test_split_is_partition(self, seed):
        tps = random_tps(n=60, seed=seed + 20)
        st = DurableBallStructure(tps, resolution=0.125)
        for p in range(0, tps.n, 9):
            sp = float(tps.starts[p])
            plain = {q for s in st.query(p, 2.0) for q in s.ids()}
            lam_all, bar_all = set(), set()
            for s in st.query_split(p, 2.0, 6.0):
                lam_all.update(s.lam.ids())
                bar_all.update(s.lam_bar.ids())
            assert lam_all | bar_all == plain
            assert not (lam_all & bar_all)
            for q in lam_all:
                assert sp + 2.0 <= tps.ends[q] < sp + 6.0
            for q in bar_all:
                assert tps.ends[q] >= sp + 6.0

    def test_split_rejects_inverted(self):
        tps = random_tps(n=20, seed=0)
        st = DurableBallStructure(tps, resolution=0.125)
        with pytest.raises(ValidationError):
            st.query_split(0, 5.0, 2.0)

    def test_infinite_split_means_all_lam(self):
        tps = random_tps(n=30, seed=1)
        st = DurableBallStructure(tps, resolution=0.125)
        for s in st.query_split(3, 1.0, float("inf")):
            assert s.lam_bar.count == 0


class TestConstruction:
    def test_bad_resolution(self):
        tps = random_tps(n=10, seed=0)
        with pytest.raises(ValidationError):
            DurableBallStructure(tps, resolution=0.0)

    def test_unknown_backend(self):
        tps = random_tps(n=10, seed=0)
        with pytest.raises(BackendError):
            make_decomposition(tps, 0.25, backend="voronoi")

    def test_grid_backend_requires_lp(self):
        tps = random_tps(n=10, seed=0)
        custom = TemporalPointSet(
            tps.points, tps.starts, tps.ends, metric=lambda x, y: 0.0
        )
        with pytest.raises(BackendError):
            make_decomposition(custom, 0.25, backend="grid")

    def test_group_index_of(self):
        tps = random_tps(n=40, seed=3)
        st = DurableBallStructure(tps, resolution=0.25)
        for p in range(tps.n):
            g = st.groups[st.group_index_of(p)]
            assert p in g.member_ids

    def test_linked_reflexive(self):
        tps = random_tps(n=30, seed=4)
        st = DurableBallStructure(tps, resolution=0.25)
        for g in st.groups[:5]:
            assert st.linked(g, g)
