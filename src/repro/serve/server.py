"""The asyncio serving front end: routes, streaming, lifecycle.

:class:`ServeApp` wires the sharded :class:`~repro.serve.registry.
DatasetRegistry` and the bounded async bridge into an HTTP/NDJSON
protocol:

* ``GET  /health``   — liveness probe (used by CI to await boot);
* ``GET  /datasets`` — registered dataset identities;
* ``POST /datasets`` — register ``{"name": ..., "dataset": {spec}}``;
* ``POST /query``    — ``{"dataset": ..., "queries": [QuerySpec...]}``,
  answered as a chunked NDJSON stream: a ``batch-start`` line, then per
  query its ``records`` lines (one per τ, so a huge τ-sweep is never
  buffered as one document) and a ``result`` status line, then a
  ``batch-end`` line with per-batch cache stats;
* ``GET  /stats``    — per-shard cache/admission statistics;
* ``POST /shutdown`` — graceful stop (CI smoke asserts a clean exit).

Every query failure is isolated per the engine contract: an erroring
query emits ``{"type": "result", "ok": false, "error": ...}`` and its
batch keeps streaming.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, Mapping, Optional

from ..engine.planner import plan_batch
from ..engine.results import QueryResult, record_to_dict
from ..engine.spec import QuerySpec
from ..errors import ValidationError
from .bridge import OverloadedError, submit_plans
from .http import (
    ProtocolError,
    Request,
    end_chunked,
    read_request,
    send_chunk,
    send_json,
    start_chunked,
)
from .registry import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_QUEUE_LIMIT,
    DatasetRegistry,
    DuplicateDatasetError,
    UnknownDatasetError,
)

__all__ = ["ServeApp", "ServerHandle", "run_server", "start_server_thread"]


class ServeApp:
    """Route requests onto the registry and the async bridge."""

    def __init__(
        self,
        registry: Optional[DatasetRegistry] = None,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        max_workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        self.registry = registry if registry is not None else DatasetRegistry(
            max_entries=max_entries,
            max_workers=max_workers,
            queue_limit=queue_limit,
        )
        self.started_at = time.time()
        self.requests_total = 0
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection, one request (``Connection: close``)."""
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                await send_json(writer, exc.status, {"error": str(exc)})
                return
            if request is None:
                return
            self.requests_total += 1
            try:
                await self._dispatch(request, writer)
            except ProtocolError as exc:
                await send_json(writer, exc.status, {"error": str(exc)})
            except ValidationError as exc:
                await send_json(writer, 400, {"error": str(exc)})
            except UnknownDatasetError as exc:
                await send_json(writer, 404, {"error": str(exc)})
            except OverloadedError as exc:
                await send_json(
                    writer,
                    429,
                    {"error": str(exc), "retry_after": exc.retry_after},
                    extra_headers={"Retry-After": str(int(exc.retry_after) or 1)},
                )
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                await send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        except (ConnectionError, asyncio.TimeoutError):
            pass  # peer went away; admission slots are freed by callbacks
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.TimeoutError):
                pass

    async def _dispatch(self, request: Request, writer: asyncio.StreamWriter) -> None:
        route = (request.method, request.path)
        if route == ("GET", "/health"):
            await send_json(writer, 200, {"ok": True, "datasets": len(self.registry)})
        elif route == ("GET", "/stats"):
            await send_json(writer, 200, self.stats())
        elif route == ("GET", "/datasets"):
            await send_json(
                writer,
                200,
                {
                    "datasets": [
                        self.registry.get(name).describe()
                        for name in self.registry.names()
                    ]
                },
            )
        elif route == ("POST", "/datasets"):
            await self._handle_register(request, writer)
        elif route == ("POST", "/query"):
            await self._handle_query(request, writer)
        elif route == ("POST", "/shutdown"):
            await send_json(writer, 200, {"ok": True, "stopping": True})
            self._shutdown.set()
        elif request.path in ("/health", "/stats", "/datasets", "/query", "/shutdown"):
            raise ProtocolError(405, f"{request.method} not allowed on {request.path}")
        else:
            raise ProtocolError(404, f"no route for {request.path!r}")

    # ------------------------------------------------------------------
    async def _handle_register(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        doc = request.json()
        if not isinstance(doc, Mapping) or "name" not in doc or "dataset" not in doc:
            raise ProtocolError(
                400, "register body must be {'name': ..., 'dataset': {spec}}"
            )
        name = doc["name"]
        replace = bool(doc.get("replace", False))
        loop = asyncio.get_running_loop()
        # Materialising a workload can be seconds of numpy work — keep it
        # off the event loop so health checks and queries stay live.  The
        # registry reserves the name before building, so duplicates (racy
        # or not) are rejected without wasting a build.
        try:
            shard = await loop.run_in_executor(
                None,
                lambda: self.registry.register(
                    name,
                    doc["dataset"],
                    max_entries=doc.get("max_entries"),
                    max_workers=doc.get("max_workers"),
                    queue_limit=doc.get("queue_limit"),
                    replace=replace,
                ),
            )
        except DuplicateDatasetError as exc:
            await send_json(writer, 409, {"error": str(exc)})
            return
        await send_json(writer, 201, {"registered": shard.describe()})

    async def _handle_query(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        doc = request.json()
        if not isinstance(doc, Mapping):
            raise ProtocolError(400, "query body must be a JSON object")
        queries = doc.get("queries")
        if isinstance(doc.get("dataset"), Mapping):
            raise ProtocolError(
                400,
                "inline dataset specs are not accepted here; register the "
                "dataset via POST /datasets and query it by name",
            )
        name = doc.get("dataset")
        if not isinstance(name, str):
            raise ProtocolError(400, "query body needs a 'dataset' name")
        if not isinstance(queries, list) or not queries:
            raise ProtocolError(400, "query body needs a non-empty 'queries' list")
        include_records = bool(doc.get("include_records", True))

        shard = self.registry.get(name)
        specs = [QuerySpec.from_dict(q) for q in queries]
        plans = plan_batch(specs, shard.tps)
        before = shard.cache.stats.snapshot()
        futures = submit_plans(shard, plans)  # may raise OverloadedError → 429

        t0 = time.perf_counter()
        await start_chunked(writer, 200)
        await send_chunk(
            writer,
            {"type": "batch-start", "dataset": name, "queries": len(plans)},
        )
        n_errors = 0
        try:
            for i, future in enumerate(futures):
                result = await future
                if not result.ok:
                    n_errors += 1
                for line in _result_lines(i, result, include_records):
                    await send_chunk(writer, line)
            await send_chunk(
                writer,
                {
                    "type": "batch-end",
                    "dataset": name,
                    "queries": len(plans),
                    "errors": n_errors,
                    "ok": n_errors == 0,
                    "wall_seconds": time.perf_counter() - t0,
                    "cache": shard.cache.stats.snapshot().since(before).as_dict(),
                },
            )
            await end_chunked(writer)
        except Exception:
            # The response status line is already on the wire: a second
            # one (send_json's 500) would splice a malformed response
            # into the chunked body.  Whatever went wrong mid-stream —
            # client hang-up, socket error, a worker torn down by
            # shutdown — the only sound move is to stop writing; the
            # truncated stream (no terminal 0-chunk) tells the client
            # the batch did not finish, and in-flight work still
            # completes on the shard executor, releasing admission via
            # the done-callbacks.
            pass

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "server": {
                "uptime_seconds": time.time() - self.started_at,
                "requests_total": self.requests_total,
                "datasets": len(self.registry),
            },
            "shards": self.registry.stats(),
        }

    async def serve(self, host: str, port: int) -> "asyncio.AbstractServer":
        return await asyncio.start_server(self.handle_connection, host, port)

    async def run_until_shutdown(self, host: str, port: int) -> None:
        """Serve until ``POST /shutdown`` (or cancellation), then clean up."""
        server = await self.serve(host, port)
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            self.registry.close()

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger for embedding runners."""
        self._shutdown.set()


def _result_lines(index: int, result: QueryResult, include_records: bool):
    """The NDJSON lines one finished query contributes to the stream."""
    if result.ok and include_records:
        for tau, records in result.records_by_tau.items():
            yield {
                "type": "records",
                "query": index,
                "tau": tau,
                "count": len(records),
                "records": [record_to_dict(r) for r in records],
            }
    yield {
        "type": "result",
        "query": index,
        "label": result.spec.label,
        "kind": result.spec.kind,
        "taus": list(result.spec.taus),
        "ok": result.ok,
        "error": result.error,
        "counts": {str(tau): len(r) for tau, r in result.records_by_tau.items()},
        "cache_hit": result.cache_hit,
        "build_seconds": result.build_seconds,
        "query_seconds": result.query_seconds,
    }


# ----------------------------------------------------------------------
def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    registry: Optional[DatasetRegistry] = None,
    max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    max_workers: Optional[int] = None,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    datasets: Optional[Mapping[str, Mapping[str, Any]]] = None,
    announce=None,
) -> None:
    """Blocking entry point for ``python -m repro serve``."""
    app = ServeApp(
        registry=registry,
        max_entries=max_entries,
        max_workers=max_workers,
        queue_limit=queue_limit,
    )
    for name, spec in (datasets or {}).items():
        app.registry.register(name, spec)

    async def _main() -> None:
        server = await app.serve(host, port)
        if announce is not None:
            sockets = server.sockets or ()
            bound = sockets[0].getsockname()[:2] if sockets else (host, port)
            announce(bound[0], bound[1], app)
        try:
            await app._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            app.registry.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class ServerHandle:
    """An in-process server running on a background thread.

    Used by the tests, the bench driver and the example client: start on
    an ephemeral port, poke it over real sockets, stop it cleanly.
    """

    def __init__(self, app: ServeApp, host: str, port: int,
                 thread: threading.Thread, loop: asyncio.AbstractEventLoop) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        """Request shutdown and join the server thread (idempotent)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.app.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise RuntimeError("server thread did not stop in time")


def start_server_thread(
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[DatasetRegistry] = None,
    max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    max_workers: Optional[int] = None,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    boot_timeout: float = 15.0,
) -> ServerHandle:
    """Start a server on a daemon thread; returns once it is listening."""
    app = ServeApp(
        registry=registry,
        max_entries=max_entries,
        max_workers=max_workers,
        queue_limit=queue_limit,
    )
    booted = threading.Event()
    state: Dict[str, Any] = {}

    def _run() -> None:
        async def _main() -> None:
            server = await app.serve(host, port)
            sockets = server.sockets or ()
            bound = sockets[0].getsockname() if sockets else (host, port)
            state["host"], state["port"] = bound[0], bound[1]
            state["loop"] = asyncio.get_running_loop()
            booted.set()
            try:
                await app._shutdown.wait()
            finally:
                server.close()
                await server.wait_closed()
                app.registry.close()

        try:
            asyncio.run(_main())
        except BaseException as exc:  # pragma: no cover - surfaced via boot
            state["error"] = exc
            booted.set()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not booted.wait(boot_timeout) or "error" in state:
        raise RuntimeError(f"server failed to boot: {state.get('error')!r}")
    return ServerHandle(app, state["host"], state["port"], thread, state["loop"])
