"""Declarative query specifications for the batched engine.

A :class:`QuerySpec` names *what* to report — pattern kind, durability
threshold(s), approximation and backend parameters — without touching
any index machinery.  The planner (:mod:`repro.engine.planner`) maps a
spec onto an index family and a cache key so that all specs that can
legally share one preprocessing pass do so (the "one index, many
reports" regime the paper's Theorems 3.1/4.2/5.1/5.2 are built around).

Specs are plain frozen dataclasses: hashable, comparable, serialisable
via :meth:`QuerySpec.to_dict` / :meth:`QuerySpec.from_dict` (the wire
format of ``python -m repro batch``).
"""

from __future__ import annotations

import math
from dataclasses import MISSING, dataclass, field, fields
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

import numpy as np

from ..backends.registry import default_registry
from ..errors import ValidationError

__all__ = ["KINDS", "QuerySpec", "apply_default_backend", "known_backends"]

#: Integral types accepted for κ and m (numpy scalars included, as the
#: core solvers always have).
_INTEGRAL = (int, np.integer)


def _as_float(value: Any, what: str) -> float:
    """Coerce a numeric parameter, raising :class:`ValidationError` (not a
    bare ``ValueError``/``TypeError``) on junk so CLI error handling holds."""
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{what} must be a number, got {value!r}") from exc

#: The built-in legacy query kinds — each is a registered plan template
#: (:mod:`repro.engine.templates`); the full kind set a spec accepts is
#: the template registry's, which additionally holds ``"pattern-dsl"``
#: and anything installed via ``register_template``.
KINDS = (
    "triangles",
    "cliques",
    "paths",
    "stars",
    "pairs-sum",
    "pairs-union",
)

#: Kinds served by the shared :class:`~repro.core.patterns.PatternIndex`.
PATTERN_KINDS = ("cliques", "paths", "stars")

#: The declarative-pattern kind compiled by :mod:`repro.lang`.
DSL_KIND = "pattern-dsl"


def _registered_kinds() -> Tuple[str, ...]:
    """Every kind the template registry currently accepts.

    Imported lazily: the template registry imports this module for
    :data:`KINDS`, so validation consults it at call time only.
    """
    from .templates import template_names

    return template_names()

def known_backends() -> Tuple[str, ...]:
    """``'auto'`` plus every backend registered right now.

    Backend names are validated against the live
    :func:`~repro.backends.registry.default_registry` — registering a
    custom backend makes it spec-valid everywhere (api, batch CLI,
    serve) with no further wiring.  The module attribute ``BACKENDS``
    resolves to this tuple for backwards compatibility.
    """
    return ("auto", *default_registry().names())


def __getattr__(name: str):  # pragma: no cover - thin compat shim
    if name == "BACKENDS":
        return known_backends()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def apply_default_backend(
    queries: Iterable[Any], default: Optional[str]
) -> list:
    """Inject a default backend into query mappings that name none.

    The one precedence rule for both ``python -m repro batch
    --backend`` and the serving layer's per-dataset ``default_backend``
    (keep them in lockstep — change it here, both surfaces follow):

    * an explicit per-query ``"backend"`` always wins;
    * the default applies only to queries whose kind the backend
      actually serves — a triangles-only default (``linf-exact``) on a
      mixed batch pins the triangle queries and leaves the rest on
      ``auto`` dispatch instead of failing them;
    * ``None``/``"auto"`` defaults are no-ops;
    * an unknown default name raises immediately
      (:class:`~repro.errors.BackendError`), even when every query
      names its own backend.

    Non-mapping entries pass through untouched for
    :meth:`QuerySpec.from_dict` to reject with its usual message.
    """
    items = list(queries)
    if default is None or default == "auto":
        return items
    descriptor = default_registry().get(default)  # unknown name -> BackendError
    return [
        {**q, "backend": default}
        if isinstance(q, Mapping)
        and "backend" not in q
        and descriptor.serves(q.get("kind"))
        else q
        for q in items
    ]


_SUM_BACKENDS = ("profile", "tree")

TauInput = Union[float, int, Iterable[float]]


@dataclass(frozen=True)
class QuerySpec:
    """One declarative query in a batch.

    Parameters
    ----------
    kind:
        One of :data:`KINDS`.
    taus:
        Durability threshold(s).  A scalar is normalised to a 1-tuple; a
        sequence requests a τ-sweep answered from one shared index.
    epsilon:
        Distance approximation ``ε ∈ (0, 1]`` (ignored by the exact ℓ∞
        triangle solver).
    backend:
        Backend name — ``"auto"`` (registry cost-model dispatch) or any
        name registered on the backend registry
        (:func:`known_backends` lists the current set).
    kappa:
        Witness budget κ — required for ``pairs-union``, rejected
        elsewhere.
    m:
        Pattern size for ``cliques``/``paths``/``stars`` (default 3),
        rejected elsewhere.
    sum_backend:
        ``"profile"`` or ``"tree"`` for ``pairs-sum``.
    exact:
        Triangle-only override of the exact/approximate choice:
        ``True`` forces the ℓ∞-exact solver, ``False`` forbids the
        automatic promotion that ``backend="auto"`` performs on ℓ∞
        inputs, ``None`` keeps the promotion rules of ``repro.api``.
    label:
        Free-form tag echoed into results (useful in batch files).
    pattern:
        Declarative pattern payload for ``kind="pattern-dsl"`` — a
        compact-JSON mapping, a text-form string, or a parsed
        :class:`~repro.lang.ast.PatternNode`; normalised to the AST
        root (hashable) at construction.  Rejected on every other kind.
    """

    kind: str
    taus: Tuple[float, ...] = field(default=())
    epsilon: float = 0.5
    backend: str = "auto"
    kappa: Optional[int] = None
    m: Optional[int] = None
    sum_backend: str = "profile"
    exact: Optional[bool] = None
    label: Optional[str] = None
    pattern: Optional[Any] = None

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.kind not in _registered_kinds():
            raise ValidationError(
                f"unknown query kind {self.kind!r}; "
                f"expected one of {', '.join(_registered_kinds())}"
            )
        object.__setattr__(self, "taus", self._normalise_taus(self.taus))
        object.__setattr__(self, "epsilon", _as_float(self.epsilon, "epsilon"))
        if not 0 < self.epsilon <= 1:
            raise ValidationError(
                f"epsilon must lie in (0, 1], got {self.epsilon!r}"
            )
        if self.kind == DSL_KIND or self.kind not in KINDS:
            # DSL and custom-template kinds: the backend name must be
            # registered (or 'auto'); kind/backend serving is checked
            # per lowered primitive at plan time.
            names = default_registry().names()
            if self.backend != "auto" and self.backend not in names:
                raise ValidationError(
                    f"unknown backend {self.backend!r}; "
                    f"registered backends: {', '.join(names)}"
                )
        else:
            # Registry-backed: rejects unknown names AND kind/backend
            # combos no descriptor serves (e.g. pairs/pattern kinds
            # under the triangle-only 'linf-exact' — previously coerced
            # to 'auto').
            default_registry().validate_combination(self.kind, self.backend)
        if self.sum_backend not in _SUM_BACKENDS:
            raise ValidationError(
                f"unknown sum backend {self.sum_backend!r}; "
                f"expected one of {', '.join(_SUM_BACKENDS)}"
            )
        self._validate_kind_params()
        self._validate_pattern()

    @staticmethod
    def _normalise_taus(taus: TauInput) -> Tuple[float, ...]:
        # Strings are scalars here, never iterables: a quoted "12" in a
        # hand-written batch file must not become the sweep (1.0, 2.0).
        if isinstance(taus, (int, float, str, bytes, np.integer, np.floating)):
            taus = (taus,)
        try:
            items = tuple(taus)
        except TypeError as exc:
            raise ValidationError(
                f"tau must be a number or a sequence of numbers, got {taus!r}"
            ) from exc
        out = tuple(_as_float(t, "durability parameter") for t in items)
        if not out:
            raise ValidationError("a query needs at least one durability value tau")
        for t in out:
            if not (math.isfinite(t) and t > 0):
                raise ValidationError(
                    f"durability parameter must be positive and finite, got {t!r}"
                )
        return out

    def _validate_kind_params(self) -> None:
        if self.kind == "pairs-union":
            if not (isinstance(self.kappa, _INTEGRAL) and self.kappa >= 1):
                raise ValidationError(
                    f"pairs-union requires a positive integer kappa, got {self.kappa!r}"
                )
            object.__setattr__(self, "kappa", int(self.kappa))
        elif self.kappa is not None:
            raise ValidationError("kappa is only valid for pairs-union queries")
        if self.kind in PATTERN_KINDS:
            m = 3 if self.m is None else self.m
            if not (isinstance(m, _INTEGRAL) and m >= 2):
                raise ValidationError(
                    f"pattern size m must be an integer >= 2, got {self.m!r}"
                )
            object.__setattr__(self, "m", int(m))
        elif self.m is not None:
            raise ValidationError("m is only valid for clique/path/star queries")
        if self.exact is not None and self.kind != "triangles":
            raise ValidationError("exact is only valid for triangle queries")
        if self.exact is False and self.backend == "linf-exact":
            raise ValidationError(
                "exact=False contradicts backend='linf-exact'"
            )

    def _validate_pattern(self) -> None:
        if self.kind != DSL_KIND:
            if self.pattern is not None:
                raise ValidationError(
                    "pattern is only valid for pattern-dsl queries"
                )
            return
        if self.pattern is None:
            raise ValidationError(
                "pattern-dsl queries require a 'pattern' payload"
            )
        # Imported lazily (the engine package must not hard-depend on
        # the language package at import time).
        from ..lang.parser import parse_pattern

        object.__setattr__(self, "pattern", parse_pattern(self.pattern))

    # ------------------------------------------------------------------
    @property
    def tau(self) -> float:
        """The single durability value of a non-sweep spec."""
        if len(self.taus) != 1:
            raise ValidationError(
                f"spec sweeps {len(self.taus)} tau values; use .taus"
            )
        return self.taus[0]

    @property
    def is_sweep(self) -> bool:
        return len(self.taus) > 1

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`).

        Walks the dataclass fields instead of a hand-maintained list, so
        *every* optional field — present and future — round-trips: a
        field is emitted whenever it differs from its declared default
        (serve forwarding must never silently re-default a parameter).
        """
        out: Dict[str, Any] = {"kind": self.kind, "taus": list(self.taus)}
        for spec_field in fields(self):
            if spec_field.name in ("kind", "taus"):
                continue
            value = getattr(self, spec_field.name)
            default = (
                spec_field.default if spec_field.default is not MISSING else None
            )
            if value != default:
                if spec_field.name == "pattern":
                    value = value.to_json()
                out[spec_field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuerySpec":
        """Build a spec from a batch-file entry.

        Accepts ``tau`` (scalar) or ``taus`` (scalar or list); every
        other key must be a spec field.
        """
        if not isinstance(data, Mapping):
            raise ValidationError(f"query entry must be a mapping, got {data!r}")
        payload = dict(data)
        if "tau" in payload and "taus" in payload:
            raise ValidationError("give either 'tau' or 'taus', not both")
        if "tau" in payload:
            payload["taus"] = payload.pop("tau")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(
                f"unknown query field(s) {sorted(unknown)}; expected a subset of "
                f"{sorted(known | {'tau'})}"
            )
        if "kind" not in payload:
            raise ValidationError("query entry is missing 'kind'")
        return cls(**payload)
