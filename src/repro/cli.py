"""Command-line interface: ``python -m repro <command> …``.

Runs the library's solvers over built-in synthetic workloads (or a CSV
of ``x1..xd,start,end`` rows) and prints result summaries — a quick way
to poke at the algorithms without writing a script.

Commands::

    python -m repro info       --workload social --n 400
    python -m repro backends   [--explain --workload uniform --n 200]
    python -m repro triangles  --workload uniform --n 500 --tau 6
    python -m repro cliques    --m 4 --tau 4
    python -m repro pairs-sum  --workload coauthor --tau 30
    python -m repro pairs-union --tau 12 --kappa 3
    python -m repro stream     --tau 6
    python -m repro batch      queries.json --output results.json
    python -m repro serve      --port 8765 --dataset 'soc={"workload":"social","n":400}'
    python -m repro route      --port 8766 --workers 4
    python -m repro append     soc events.ndjson --port 8765
    python -m repro trace      --slow --port 8765

Backend dispatch is uniform across the CLI: every query-running command
takes ``--backend`` (default ``auto`` — the registry's cost model picks
the cheapest capable backend for the dataset shape; see ``python -m
repro backends``).  The one-shot commands (``triangles``, ``cliques``,
``pairs-sum``, ``pairs-union``) run through the same engine/planner
path as ``batch`` and ``serve``, so ``auto`` means the same thing
everywhere.  ``backends`` lists the registered descriptors and, with
``--explain``, shows the per-kind resolution and cost scores for a
concrete workload.

``batch`` runs a whole file of queries through the shared-index
:class:`~repro.engine.QueryEngine`: every query that can legally reuse
a preprocessing pass does, and independent queries execute concurrently.
The file is JSON (or YAML when PyYAML is installed): either a list of
query objects, or ``{"dataset": {...}, "queries": [...]}`` where the
dataset spec follows :func:`repro.datasets.workload_from_spec`.
Faults are isolated per query: a failing query is reported as an ERROR
line (and in the JSON output) while the rest of the batch completes;
the exit code is 1 when any query failed, 0 when all succeeded.

``serve`` runs the long-lived asyncio front end (:mod:`repro.serve`):
datasets are registered — at boot via ``--dataset NAME=SPEC`` or at
runtime via ``POST /datasets`` — each on its own shard (private index
cache, thread pool, bounded admission queue), and queries stream back
as NDJSON over HTTP.

``route`` runs the multi-process routing tier (:mod:`repro.router`):
``--workers N`` serve processes are spawned on loopback ports and
supervised (restart-with-replay on death), datasets are placed by
cost-weighted rendezvous hashing, and the same NDJSON protocol is
exposed on one public port.

``append`` streams an NDJSON event batch (file or stdin) into a served
dataset via ``POST /datasets/<name>/events``, printing the new epoch
and the accepted/rejected counts.  It works identically against a
``serve`` process and the ``route`` tier.

``trace`` renders a request's span waterfall from a live server's
trace ring (``GET /debug/traces/<id>``) — stitched across the router
and the owning worker when the ``route`` tier answers — or, with
``--slow``, lists the slowest retained traces.  Every query envelope
and error body carries the ``trace_id`` to pass here; see
``docs/tracing.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

import numpy as np

from . import DynamicTriangleStream, TemporalPointSet
from .api import default_engine
from .backends import default_registry
from .datasets import workload_from_spec
from .engine import KINDS, QueryEngine, QueryResult, QuerySpec
from .engine.spec import apply_default_backend
from .errors import ReproError, ValidationError
from .geometry import doubling_dimension_estimate, spread

__all__ = ["main", "build_parser", "load_workload"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Durable patterns in temporal proximity graphs (PODS 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", default="uniform",
                       choices=["uniform", "social", "coauthor"],
                       help="built-in synthetic workload")
        p.add_argument("--csv", default=None,
                       help="CSV file of x1..xd,start,end rows (overrides --workload)")
        p.add_argument("--n", type=int, default=400, help="number of points")
        p.add_argument("--seed", type=int, default=0, help="random seed")
        p.add_argument("--metric", default="l2", help="metric name (l1/l2/linf/l<α>)")
        p.add_argument("--epsilon", type=float, default=0.5,
                       help="distance approximation ε")
        p.add_argument("--top", type=int, default=5, help="rows to print")
        p.add_argument("--backend", default="auto",
                       help="backend name, or 'auto' for registry cost-model "
                            "dispatch (see `python -m repro backends`)")

    p_info = sub.add_parser("info", help="workload diagnostics (spread, doubling dim)")
    common(p_info)

    p_back = sub.add_parser(
        "backends",
        help="list registered backends, capabilities and cost coefficients",
    )
    common(p_back)
    p_back.add_argument("--json", action="store_true",
                        help="emit the descriptor list as JSON")
    p_back.add_argument("--explain", action="store_true",
                        help="resolve every query kind against the selected "
                             "workload and print the cost scores")

    p_tri = sub.add_parser("triangles", help="report durable triangles (Section 3)")
    common(p_tri)
    p_tri.add_argument("--tau", type=float, required=True, help="durability τ")
    p_tri.add_argument("--count-only", action="store_true",
                       help="count without enumerating (future-work extension)")

    p_cli = sub.add_parser("cliques", help="report durable m-cliques (Appendix D)")
    common(p_cli)
    p_cli.add_argument("--tau", type=float, required=True)
    p_cli.add_argument("--m", type=int, default=4, help="clique size")

    p_sum = sub.add_parser("pairs-sum", help="SUM aggregate-durable pairs (Section 5.1)")
    common(p_sum)
    p_sum.add_argument("--tau", type=float, required=True)

    p_uni = sub.add_parser("pairs-union", help="UNION aggregate-durable pairs (Section 5.2)")
    common(p_uni)
    p_uni.add_argument("--tau", type=float, required=True)
    p_uni.add_argument("--kappa", type=int, default=3, help="witness budget κ")

    p_str = sub.add_parser("stream", help="replay lifespans dynamically (Appendix C)")
    common(p_str)
    p_str.add_argument("--tau", type=float, required=True)

    p_qry = sub.add_parser(
        "query",
        help="run one declarative pattern query (the pattern-dsl kind)",
    )
    common(p_qry)
    p_qry.add_argument(
        "--pattern", required=True,
        help="pattern in text form, e.g. "
             "\"seq(pairs(agg=sum), triangles(), gap=[0,5])\", "
             "or as a compact-JSON object (docs/query_language.md)",
    )
    p_qry.add_argument(
        "--tau", type=float, action="append", required=True,
        help="durability τ (repeat the flag for a τ-sweep)",
    )

    p_bat = sub.add_parser(
        "batch",
        help="run a JSON/YAML file of queries through the shared-index engine",
    )
    common(p_bat)
    p_bat.add_argument("file", help="batch file (JSON, or YAML with PyYAML)")
    p_bat.add_argument("--workers", type=int, default=None,
                       help="thread-pool width (default: one per query, CPU-capped)")
    p_bat.add_argument("--sequential", action="store_true",
                       help="execute queries one at a time")
    p_bat.add_argument("--output", default=None,
                       help="write full JSON results to PATH ('-' for stdout)")
    p_bat.add_argument("--no-records", action="store_true",
                       help="emit per-tau counts only, not the records")

    p_srv = sub.add_parser(
        "serve",
        help="run the async NDJSON-over-HTTP serving front end",
    )
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_srv.add_argument("--port", type=int, default=8765,
                       help="bind port (0 picks an ephemeral port)")
    p_srv.add_argument("--queue-limit", type=int, default=64,
                       help="per-shard bound on in-flight queries "
                            "(excess requests get 429)")
    p_srv.add_argument("--max-entries", type=int, default=32,
                       help="per-shard bound on resident indexes (LRU)")
    p_srv.add_argument("--workers", type=int, default=None,
                       help="per-shard thread-pool width")
    p_srv.add_argument("--dataset", action="append", default=[],
                       metavar="NAME=SPEC",
                       help="register a dataset at boot; SPEC is the JSON "
                            "accepted by POST /datasets (repeatable)")
    p_srv.add_argument("--backend", default=None, metavar="NAME",
                       help="default backend applied to queries that name "
                            "none, for every dataset that doesn't set its "
                            "own default_backend")
    p_srv.add_argument("--idle-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="close a keep-alive connection idle for this long "
                            "(default: 30)")
    p_srv.add_argument("--max-requests-per-conn", type=int, default=None,
                       metavar="N",
                       help="requests served on one connection before the "
                            "server closes it (default: 1000)")
    p_srv.add_argument("--api-keys", default=None, metavar="PATH",
                       help="tenant file (JSON) enabling per-tenant QoS: "
                            "POST /query then requires X-API-Key and is "
                            "metered by weighted fair shares and quotas "
                            "(see docs/operations.md)")
    p_srv.add_argument("--trace-sample", type=float, default=None,
                       metavar="P",
                       help="head-sampling probability for trace retention "
                            "(slow and error traces are always kept; "
                            "default: 1.0 — see docs/tracing.md)")
    p_srv.add_argument("--slow-query-ms", type=float, default=None,
                       metavar="MS",
                       help="requests at or above this duration are logged "
                            "to the slow-query NDJSON log and always "
                            "retained in the trace ring (default: 500)")

    p_rt = sub.add_parser(
        "route",
        help="run the multi-process routing tier (N serve workers behind "
             "one port)",
    )
    p_rt.add_argument("--host", default="127.0.0.1", help="router bind address")
    p_rt.add_argument("--port", type=int, default=8766,
                      help="router bind port (0 picks an ephemeral port)")
    p_rt.add_argument("--workers", type=int, default=2,
                      help="worker processes to spawn (each a full "
                           "`repro serve` on a loopback port)")
    p_rt.add_argument("--worker-backends", action="append", default=[],
                      metavar="NAMES",
                      help="comma-separated backend subset the i-th worker "
                           "advertises for placement scoring ('any' = all; "
                           "repeat per worker, in order)")
    p_rt.add_argument("--manifest", default=None, metavar="PATH",
                      help="persist the placement manifest to PATH; an "
                           "existing manifest is restored at boot")
    p_rt.add_argument("--probe-interval", type=float, default=None,
                      metavar="SECONDS",
                      help="supervision tick: liveness poll + /health probe "
                           "(default: 0.5)")
    p_rt.add_argument("--dataset", action="append", default=[],
                      metavar="NAME=SPEC",
                      help="register a dataset at boot; SPEC is the JSON "
                           "accepted by POST /datasets (repeatable)")
    p_rt.add_argument("--queue-limit", type=int, default=None,
                      help="per-shard admission bound, forwarded to every "
                           "worker")
    p_rt.add_argument("--max-entries", type=int, default=None,
                      help="per-shard resident-index bound, forwarded to "
                           "every worker")
    p_rt.add_argument("--api-keys", default=None, metavar="PATH",
                      help="tenant file (JSON), forwarded to every worker; "
                           "the router passes X-API-Key through, workers "
                           "enforce fair shares and quotas")
    p_rt.add_argument("--trace-sample", type=float, default=None,
                      metavar="P",
                      help="head-sampling probability for trace retention, "
                           "applied on the router and forwarded to every "
                           "worker (default: 1.0)")
    p_rt.add_argument("--slow-query-ms", type=float, default=None,
                      metavar="MS",
                      help="slow-query threshold in milliseconds, applied "
                           "on the router and forwarded to every worker "
                           "(default: 500)")

    p_trc = sub.add_parser(
        "trace",
        help="fetch a request trace from a serve or route process and "
             "print its span waterfall",
    )
    p_trc.add_argument("trace_id", nargs="?", default=None,
                       help="trace id echoed on the query envelope "
                            "(omit with --slow to list recent slow traces)")
    p_trc.add_argument("--slow", action="store_true",
                       help="list the slowest recent traces instead of "
                            "fetching one id")
    p_trc.add_argument("--min-ms", type=float, default=None, metavar="MS",
                       help="with --slow: only traces at least this slow")
    p_trc.add_argument("--limit", type=int, default=10,
                       help="with --slow: how many traces to list")
    p_trc.add_argument("--dataset", default=None,
                       help="with --slow: only traces for this dataset")
    p_trc.add_argument("--host", default="127.0.0.1",
                       help="serve or route address")
    p_trc.add_argument("--port", type=int, default=8765,
                       help="serve or route port")

    p_app = sub.add_parser(
        "append",
        help="append an NDJSON event batch to a served dataset "
             "(POST /datasets/<name>/events)",
    )
    p_app.add_argument("dataset", help="dataset name on the server or router")
    p_app.add_argument("file", nargs="?", default="-",
                       help="NDJSON events file, one "
                            "{'point': […], 'start': s, 'end': e} object "
                            "per line ('-' or omitted: stdin)")
    p_app.add_argument("--host", default="127.0.0.1",
                       help="serve or route address")
    p_app.add_argument("--port", type=int, default=8765,
                       help="serve or route port")
    return parser


def load_workload(args: argparse.Namespace) -> TemporalPointSet:
    """Materialise the requested input (see :func:`workload_from_spec`)."""
    if args.csv:
        return workload_from_spec({"csv": args.csv, "metric": args.metric})
    return workload_from_spec(
        {
            "workload": args.workload,
            "n": args.n,
            "seed": args.seed,
            "metric": args.metric,
        }
    )


def _load_batch_file(path: str) -> Dict[str, Any]:
    """Parse a batch file into ``{"dataset": ..., "queries": [...]}``.

    JSON always works; ``.yaml``/``.yml`` files use PyYAML when
    available and fail with a clear error otherwise.
    """
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise ValidationError(f"cannot read batch file {path!r}: {exc}") from exc
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - environment-specific
            raise ValidationError(
                "YAML batch files need the optional PyYAML dependency; "
                "install it or convert the file to JSON"
            ) from exc
        try:
            doc = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ValidationError(f"invalid YAML in {path!r}: {exc}") from exc
    else:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid JSON in {path!r}: {exc}") from exc
    if isinstance(doc, list):
        doc = {"queries": doc}
    if not isinstance(doc, dict) or "queries" not in doc:
        raise ValidationError(
            "batch file must be a list of queries or an object with a "
            "'queries' key (optionally a 'dataset' key)"
        )
    if not isinstance(doc["queries"], list) or not doc["queries"]:
        raise ValidationError("batch file declares no queries")
    return doc


def _run_batch(args: argparse.Namespace, out) -> int:
    doc = _load_batch_file(args.file)
    # --backend fills in queries that name none (explicit entries win,
    # kinds the backend cannot serve stay on auto) — one precedence
    # rule shared with the serving layer via apply_default_backend.
    doc["queries"] = apply_default_backend(doc["queries"], args.backend)
    # Validate the query specs before materialising any dataset, so a
    # typo in the file fails fast — naming the offending entry, which
    # matters in long files of declarative patterns.
    specs = []
    for i, q in enumerate(doc["queries"]):
        try:
            specs.append(QuerySpec.from_dict(q))
        except ValidationError as exc:
            raise ValidationError(f"query #{i}: {exc}") from exc
    if "dataset" in doc:
        tps = workload_from_spec(doc["dataset"])
    else:
        tps = load_workload(args)
    print(f"workload: {tps}", file=out)

    engine = QueryEngine(max_workers=args.workers)
    batch = engine.run_batch(tps, specs, parallel=not args.sequential)

    for i, res in enumerate(batch):
        taus = ",".join(f"{t:g}" for t in res.spec.taus)
        label = f" ({res.spec.label})" if res.spec.label else ""
        if not res.ok:
            print(
                f"[{i}] {res.spec.kind}{label} tau={taus}: ERROR {res.error}",
                file=out,
            )
            continue
        source = "cache" if res.cache_hit else f"build {res.build_seconds * 1e3:.1f} ms"
        print(
            f"[{i}] {res.spec.kind}{label} tau={taus}: {res.count} records "
            f"({source}, query {res.query_seconds * 1e3:.1f} ms)",
            file=out,
        )
    stats = batch.cache_stats
    errors = f", {batch.n_errors} FAILED" if batch.n_errors else ""
    print(
        f"batch: {len(batch)} queries, {batch.distinct_indexes} distinct "
        f"indexes, {stats['builds']} built, {stats['hits']} cache hits, "
        f"{batch.wall_seconds * 1e3:.1f} ms total{errors}",
        file=out,
    )
    if args.output:
        payload = batch.to_dict(include_records=not args.no_records)
        payload["dataset"] = {
            "n": tps.n,
            "dim": tps.dim,
            "metric": tps.metric.name,
            "fingerprint": tps.fingerprint(),
        }
        if args.output == "-":
            json.dump(payload, out, indent=2)
            print(file=out)
        else:
            with open(args.output, "w") as fh:
                json.dump(payload, fh, indent=2)
            print(f"results written to {args.output}", file=out)
    # Per-query failures were isolated, not raised: signal them in the
    # exit code (0 = all good, 1 = partial, 2 = the whole run errored).
    return 1 if batch.n_errors else 0


def _spec_for_kind(kind: str, args: argparse.Namespace) -> QuerySpec:
    """A representative spec for ``--explain`` resolution demos."""
    extras: Dict[str, Any] = {}
    if kind == "pairs-union":
        extras["kappa"] = 3
    tau = getattr(args, "tau", None)
    return QuerySpec(
        kind=kind,
        taus=tau if tau is not None else 4.0,
        epsilon=args.epsilon,
        backend=args.backend,
        **extras,
    )


def _run_backends(args: argparse.Namespace, out) -> int:
    registry = default_registry()
    if args.json:
        json.dump(
            {
                "backends": registry.describe(),
                "cost_coefficients": registry.cost_model.as_dict(),
            },
            out,
            indent=2,
        )
        print(file=out)
    else:
        print(f"registered backends: {len(registry)}", file=out)
        for card in registry.describe():
            flags = []
            if card["exact"]:
                flags.append("exact")
            if card["spatial"]:
                flags.append("spatial")
            coef = card["cost_coefficients"]
            coef_text = (
                f"build {coef['build']:.2e}, query {coef['query']:.2e}"
                if coef
                else "uncalibrated"
            )
            print(f"  {card['name']}  [{', '.join(flags) or '-'}]", file=out)
            print(f"    {card['description']}", file=out)
            print(f"    metric: {card['metric']}", file=out)
            print(f"    kinds:  {', '.join(card['kinds'])}", file=out)
            print(f"    cost:   {coef_text}", file=out)
    if args.explain:
        tps = load_workload(args)
        print(f"resolution for {tps} (backend={args.backend!r}):", file=out)
        for kind in KINDS:
            try:
                resolution = default_registry().resolve(_spec_for_kind(kind, args), tps)
            except ValidationError as exc:
                print(f"  {kind:<11} -> error: {exc}", file=out)
                continue
            scores = ", ".join(
                f"{name}={cost * 1e3:.2f}ms"
                for name, cost in sorted(resolution.costs.items())
            )
            print(
                f"  {kind:<11} -> {resolution.name}  ({resolution.reason}; "
                f"est {scores})",
                file=out,
            )
    return 0


def _parse_boot_datasets(entries: List[str]) -> Dict[str, Dict[str, Any]]:
    """Parse repeated ``--dataset NAME=SPECJSON`` flags."""
    datasets: Dict[str, Dict[str, Any]] = {}
    for entry in entries:
        name, sep, spec_text = entry.partition("=")
        if not sep or not name:
            raise ValidationError(
                f"--dataset expects NAME=SPECJSON, got {entry!r}"
            )
        try:
            spec = json.loads(spec_text)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"--dataset {name}: invalid JSON spec: {exc}"
            ) from exc
        if not isinstance(spec, dict):
            raise ValidationError(
                f"--dataset {name}: spec must be a JSON object, got {spec!r}"
            )
        datasets[name] = spec
    return datasets


def _run_serve(args: argparse.Namespace, out) -> int:
    from .serve import run_server

    def announce(host: str, port: int, app) -> None:
        names = app.registry.names()
        print(f"serving on http://{host}:{port}", file=out)
        print(
            f"datasets: {', '.join(names) if names else '(none — POST /datasets)'}",
            file=out,
        )
        out.flush()

    keepalive_kwargs = {}
    if args.idle_timeout is not None:
        keepalive_kwargs["idle_timeout"] = args.idle_timeout
    if args.max_requests_per_conn is not None:
        keepalive_kwargs["max_requests_per_connection"] = args.max_requests_per_conn
    if args.trace_sample is not None:
        keepalive_kwargs["trace_sample"] = args.trace_sample
    if args.slow_query_ms is not None:
        keepalive_kwargs["slow_query_ms"] = args.slow_query_ms
    run_server(
        host=args.host,
        port=args.port,
        max_entries=args.max_entries,
        max_workers=args.workers,
        queue_limit=args.queue_limit,
        default_backend=args.backend,
        datasets=_parse_boot_datasets(args.dataset),
        api_keys=args.api_keys,
        announce=announce,
        **keepalive_kwargs,
    )
    print("server stopped", file=out)
    return 0


def _parse_worker_backends(entries: List[str]) -> Optional[List[Optional[List[str]]]]:
    """Parse repeated ``--worker-backends NAMES`` flags (one per worker)."""
    if not entries:
        return None
    parsed: List[Optional[List[str]]] = []
    for entry in entries:
        if entry.strip().lower() in ("any", "all", "*"):
            parsed.append(None)
            continue
        names = [name.strip() for name in entry.split(",") if name.strip()]
        if not names:
            raise ValidationError(
                f"--worker-backends expects comma-separated backend names "
                f"or 'any', got {entry!r}"
            )
        parsed.append(names)
    return parsed


def _run_route(args: argparse.Namespace, out) -> int:
    from .router import run_router

    serve_args: List[str] = []
    if args.queue_limit is not None:
        serve_args += ["--queue-limit", str(args.queue_limit)]
    if args.max_entries is not None:
        serve_args += ["--max-entries", str(args.max_entries)]
    if args.api_keys is not None:
        serve_args += ["--api-keys", args.api_keys]
    route_kwargs = {}
    if args.probe_interval is not None:
        route_kwargs["probe_interval"] = args.probe_interval
    # Tracing settings apply to the router itself AND ride serve_args so
    # every worker keeps/logs by the same policy — a trace either has
    # its worker half or was sampled out on both sides consistently.
    if args.trace_sample is not None:
        serve_args += ["--trace-sample", str(args.trace_sample)]
        route_kwargs["trace_sample"] = args.trace_sample
    if args.slow_query_ms is not None:
        serve_args += ["--slow-query-ms", str(args.slow_query_ms)]
        route_kwargs["slow_query_ms"] = args.slow_query_ms

    def announce(host: str, port: int, app) -> None:
        statuses = app.pool.statuses()
        print(f"routing on http://{host}:{port}", file=out)
        for status in statuses:
            print(
                f"  {status.slot}: pid {status.pid} on "
                f"{status.host}:{status.port}",
                file=out,
            )
        names = app.manifest.names()
        print(
            f"datasets: {', '.join(names) if names else '(none — POST /datasets)'}",
            file=out,
        )
        out.flush()

    run_router(
        host=args.host,
        port=args.port,
        workers=args.workers,
        worker_backends=_parse_worker_backends(args.worker_backends),
        manifest_path=args.manifest,
        serve_args=serve_args,
        datasets=_parse_boot_datasets(args.dataset),
        announce=announce,
        **route_kwargs,
    )
    print("router stopped", file=out)
    return 0


def _run_trace(args: argparse.Namespace, out) -> int:
    """``repro trace``: span waterfalls from a live serve/route process.

    ``repro trace <id>`` prints one trace (stitched across processes
    when the router answers); ``repro trace --slow`` lists the slowest
    recent traces so an operator can pick an id without grepping the
    slow-query log.  Exit code 0 on success, 1 when the id is unknown.
    """
    from .obs.trace import format_waterfall
    from .serve.client import connect, fetch_trace, fetch_traces, probe

    if args.slow == (args.trace_id is not None):
        raise ValidationError(
            "pass exactly one of a trace id or --slow "
            "(`repro trace <id>` or `repro trace --slow`)"
        )
    try:
        probe(args.host, args.port)
    except OSError as exc:
        raise ValidationError(
            f"no server on {args.host}:{args.port} ({exc}); start one with "
            "`repro serve` or `repro route`"
        ) from exc
    conn = connect(args.host, args.port)
    try:
        if args.slow:
            status, doc = fetch_traces(
                conn,
                min_duration_ms=args.min_ms,
                limit=args.limit,
                dataset=args.dataset,
            )
            if status != 200 or not isinstance(doc, dict):
                print(f"trace listing failed: HTTP {status} {doc}", file=out)
                return 1
            traces = sorted(
                doc.get("traces", []),
                key=lambda t: -(t.get("duration_ms") or 0.0),
            )
            if not traces:
                print("no traces retained (check --trace-sample and "
                      "whether the server has taken traffic)", file=out)
                return 0
            for t in traces:
                flags = []
                if t.get("slow"):
                    flags.append("slow")
                if t.get("status") not in (None, "ok"):
                    flags.append(t["status"])
                suffix = f"  [{','.join(flags)}]" if flags else ""
                dataset = f"  dataset={t['dataset']}" if t.get("dataset") else ""
                print(
                    f"{t.get('trace_id')}  {t.get('duration_ms', 0.0):8.1f} ms  "
                    f"{t.get('route', '?')}{dataset}{suffix}",
                    file=out,
                )
            print(
                f"({len(traces)} traces; `repro trace <id>` for a waterfall)",
                file=out,
            )
            return 0
        status, doc = fetch_trace(conn, args.trace_id)
        if status == 404:
            print(
                f"trace {args.trace_id!r} not found "
                f"({doc.get('error', 'sampled out, evicted, or unknown')})",
                file=out,
            )
            return 1
        if status != 200 or not isinstance(doc, dict):
            print(f"trace fetch failed: HTTP {status} {doc}", file=out)
            return 1
        print(format_waterfall(doc), file=out)
        return 0
    finally:
        conn.close()


def _run_append(args: argparse.Namespace, out) -> int:
    """``repro append``: NDJSON file or stdin → the events endpoint.

    Works identically against a single ``repro serve`` process and the
    routing tier (which forwards to the owning worker and records the
    batch for replay).  Exit code 0 when the server accepted at least
    one event, 1 otherwise.
    """
    from .serve.client import append_events, connect, probe

    if args.file == "-":
        batch = sys.stdin.buffer.read()
    else:
        try:
            with open(args.file, "rb") as fh:
                batch = fh.read()
        except OSError as exc:
            raise ValidationError(
                f"cannot read events file {args.file!r}: {exc}"
            ) from exc
    if not batch.strip():
        raise ValidationError("event batch is empty")
    try:
        probe(args.host, args.port)
    except OSError as exc:
        raise ValidationError(
            f"no server on {args.host}:{args.port} ({exc}); start one with "
            "`repro serve` or `repro route`"
        ) from exc
    conn = connect(args.host, args.port)
    try:
        status, doc = append_events(conn, args.dataset, batch)
    finally:
        conn.close()
    if status != 200:
        print(f"append failed: HTTP {status} {doc}", file=out)
        return 1
    report = doc.get("appended", {})
    where = f" (worker {doc['worker']})" if "worker" in doc else ""
    print(
        f"dataset {report.get('name')!r}{where}: epoch {report.get('epoch')}, "
        f"n={report.get('n')}", file=out,
    )
    print(
        f"accepted {report.get('accepted', 0)}, "
        f"rejected {report.get('rejected', 0)}", file=out,
    )
    for err in report.get("errors", []):
        print(f"  rejected: {err}", file=out)
    maintained = report.get("maintained_families", [])
    invalidated = report.get("invalidated_families", [])
    if maintained or invalidated:
        print(
            f"indexes: maintained {', '.join(maintained) or '(none)'}; "
            f"invalidated {', '.join(invalidated) or '(none)'}", file=out,
        )
    return 0 if report.get("accepted", 0) else 1


def _timed(label: str, fn, out=sys.stdout):
    t0 = time.perf_counter()
    result = fn()
    dt = time.perf_counter() - t0
    print(f"{label}: {dt * 1000:.1f} ms", file=out)
    return result


def _run_one_shot(spec: QuerySpec, tps: TemporalPointSet, out) -> QueryResult:
    """Run a single-query command through the shared engine.

    One path for everything: the registry resolves the backend (so
    ``--backend auto`` means exactly what it means in ``batch`` and
    ``serve``), the process-wide cache shares preprocessing across
    commands in one interpreter, and the result carries build/query
    timing equivalent to the old hand-timed prints.
    """
    result = default_engine().run(tps, spec)
    print(f"backend: {result.key.backend}", file=out)
    source = "cache hit" if result.cache_hit else f"{result.build_seconds * 1000:.1f} ms"
    print(f"build: {source}", file=out)
    print(f"query: {result.query_seconds * 1000:.1f} ms", file=out)
    return result


def main(argv: Optional[List[str]] = None, out=sys.stdout) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "batch":
            return _run_batch(args, out)
        if args.command == "serve":
            return _run_serve(args, out)
        if args.command == "route":
            return _run_route(args, out)
        if args.command == "append":
            return _run_append(args, out)
        if args.command == "trace":
            return _run_trace(args, out)
        if args.command == "backends":
            return _run_backends(args, out)
        tps = load_workload(args)
        print(f"workload: {tps}", file=out)

        if args.command == "info":
            print(f"spread        ≈ {spread(tps.points, tps.metric):.1f}", file=out)
            rho = doubling_dimension_estimate(tps.points, tps.metric, n_centers=16)
            print(f"doubling dim  ≈ {rho:.2f}", file=out)
            degs = []
            for i in range(0, tps.n, max(tps.n // 64, 1)):
                d = tps.metric.dists(tps.points, tps.points[i])
                degs.append(int((d <= 1.0).sum()) - 1)
            print(f"unit-ball deg ≈ {np.mean(degs):.1f}", file=out)
            print(f"mean lifespan ≈ {(tps.ends - tps.starts).mean():.2f}", file=out)

        elif args.command == "triangles":
            spec = QuerySpec(
                kind="triangles", taus=args.tau,
                epsilon=args.epsilon, backend=args.backend,
            )
            if args.count_only:
                idx = default_engine().get_index(tps, spec)
                if not hasattr(idx, "count"):
                    raise ValidationError(
                        "--count-only needs the approximate triangle index; "
                        "pass --backend cover-tree or grid (the resolved "
                        "exact backend enumerates instead of counting)"
                    )
                count = _timed("count", lambda: idx.count(args.tau), out)
                print(f"durable triangles: {count}", file=out)
            else:
                recs = _run_one_shot(spec, tps, out).records
                print(f"durable triangles: {len(recs)}", file=out)
                for r in sorted(recs, key=lambda r: -r.durability)[: args.top]:
                    print(f"  {r.ids}  durability {r.durability:.2f}", file=out)

        elif args.command == "cliques":
            spec = QuerySpec(
                kind="cliques", taus=args.tau, m=args.m,
                epsilon=args.epsilon, backend=args.backend,
            )
            recs = _run_one_shot(spec, tps, out).records
            print(f"durable {args.m}-cliques: {len(recs)}", file=out)
            for r in sorted(recs, key=lambda r: -r.durability)[: args.top]:
                print(f"  {r.members}  durability {r.durability:.2f}", file=out)

        elif args.command == "pairs-sum":
            spec = QuerySpec(
                kind="pairs-sum", taus=args.tau,
                epsilon=args.epsilon, backend=args.backend,
            )
            recs = _run_one_shot(spec, tps, out).records
            print(f"SUM-durable pairs: {len(recs)}", file=out)
            for r in sorted(recs, key=lambda r: -r.score)[: args.top]:
                print(f"  ({r.p}, {r.q})  witness sum {r.score:.2f}", file=out)

        elif args.command == "pairs-union":
            spec = QuerySpec(
                kind="pairs-union", taus=args.tau, kappa=args.kappa,
                epsilon=args.epsilon, backend=args.backend,
            )
            recs = _run_one_shot(spec, tps, out).records
            print(f"(τ,κ)-UNION-durable pairs: {len(recs)}", file=out)
            for r in sorted(recs, key=lambda r: -r.score)[: args.top]:
                print(f"  ({r.p}, {r.q})  covered {r.score:.2f}", file=out)

        elif args.command == "query":
            spec = QuerySpec(
                kind="pattern-dsl", taus=tuple(args.tau),
                epsilon=args.epsilon, backend=args.backend,
                pattern=args.pattern,
            )
            recs = _run_one_shot(spec, tps, out).records
            print(f"pattern matches: {len(recs)}", file=out)

            def _rank(r):
                return -getattr(r, "durability", getattr(r, "score", 0.0))

            for r in sorted(recs, key=_rank)[: args.top]:
                members = getattr(r, "members", None) or getattr(r, "ids", None)
                if members is None:
                    members = (r.p, r.q)
                value = getattr(r, "durability", getattr(r, "score", 0.0))
                print(f"  {tuple(members)}  durability {value:.2f}", file=out)

        elif args.command == "stream":
            stream = DynamicTriangleStream(
                tps, args.tau, args.epsilon, backend=args.backend
            )
            recs = _timed("replay", stream.run, out)
            st = stream.structure
            print(
                f"streamed triangles: {len(recs)} "
                f"(rebuilds {st.n_group_rebuilds}, compactions {st.n_full_rebuilds})",
                file=out,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
