#!/usr/bin/env python3
"""Appendix D — the durable-pattern zoo: cliques, paths and stars.

Also demonstrates the graph classes of Section 1 (grid graphs as exact
proximity graphs) and the exact ℓ∞ backend of Appendix B.

Run:  python examples/pattern_zoo.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    TemporalPointSet,
    find_durable_cliques,
    find_durable_paths,
    find_durable_stars,
    find_durable_triangles,
)
from repro.datasets import uniform_lifespans
from repro.graphs import as_temporal, grid_graph_points


def main() -> None:
    rng = np.random.default_rng(5)

    # --- a clustered playground ----------------------------------------
    pts = rng.uniform(0, 3.0, size=(120, 2))
    starts, ends = uniform_lifespans(120, horizon=30, max_len=15, seed=5)
    tps = TemporalPointSet(pts, starts, ends)
    tau = 4.0

    for name, recs in [
        ("3-cliques (triangles)", find_durable_cliques(tps, 3, tau)),
        ("4-cliques", find_durable_cliques(tps, 4, tau)),
        ("3-paths", find_durable_paths(tps, 3, tau)),
        ("4-stars", find_durable_stars(tps, 4, tau)),
    ]:
        print(f"τ = {tau}: {len(recs):6d} durable {name}")
        if recs:
            best = max(recs, key=lambda r: r.durability)
            print(f"          most durable: {best.members} ({best.durability:.2f})")

    # --- grid graphs are proximity graphs, exactly ----------------------
    grid = grid_graph_points(6, 6)
    n = len(grid)
    starts, ends = uniform_lifespans(n, horizon=20, max_len=12, seed=9)
    grid_tps = as_temporal(grid, starts, ends, metric="linf")

    # Under l-inf, Appendix B reports exactly T_tau, no approximation.
    triangles = find_durable_triangles(grid_tps, tau=2.0)
    paths = find_durable_paths(grid_tps, 3, 2.0, epsilon=0.25)
    print(
        f"\n6×6 grid graph (ℓ∞ exact): {len(triangles)} durable triangles "
        f"(diagonal neighbours), {len(paths)} durable 3-paths"
    )

    # Axis-aligned neighbours at l1-distance 1 only give paths, never
    # triangles, under the l1 metric:
    grid_l1 = as_temporal(grid, starts, ends, metric="l1")
    tri_l1 = find_durable_triangles(grid_l1, tau=2.0, epsilon=0.25)
    exact_tri = [r for r in tri_l1 if all(
        np.abs(grid_l1.points[a] - grid_l1.points[b]).sum() <= 1.0
        for a, b in [(r.anchor, r.q), (r.anchor, r.s), (r.q, r.s)]
    )]
    print(f"under ℓ1 the same grid has {len(exact_tri)} exact triangles (expected 0)")


if __name__ == "__main__":
    main()
