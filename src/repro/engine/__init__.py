"""Batched query engine with shared-index caching (ISSUE 1 tentpole).

One preprocessing pass over a temporal proximity graph supports many
durable-pattern reports; this package makes that operational:

* :class:`~repro.engine.spec.QuerySpec` — declarative query description
  (kind, τ or τ-sweep, κ, m, ε, metric-backend, or a ``pattern-dsl``
  payload compiled by :mod:`repro.lang`);
* :class:`~repro.engine.templates.PlanTemplate` — the open registry
  behind ``kind``: legacy kinds and the DSL compiler are built-in
  templates, :func:`register_template` adds new pattern shapes without
  touching spec/planner/serve/CLI;
* :class:`~repro.engine.cache.IndexCache` — single-flight shared-index
  cache keyed by ``(family, dataset fingerprint, ε, backend)``; staged
  ``pattern-dsl`` plans share sub-indexes with legacy queries here;
* :class:`~repro.engine.engine.QueryEngine` — plans batches, shares
  indexes, executes independent queries on a thread pool, and reports
  per-query (and per-stage) timing plus cache statistics.

``repro.api``, ``python -m repro batch`` and ``benchmarks/helpers.py``
are all thin layers over this package.
"""

from .cache import CacheOutcome, CacheStats, IndexCache, IndexKey
from .engine import QueryEngine
from .executor import execute_plan, execute_plans
from .planner import (
    PlanStage,
    QueryPlan,
    distinct_index_keys,
    plan_batch,
    plan_query,
)
from .results import BatchResult, QueryResult, record_to_dict
from .spec import KINDS, QuerySpec
from .templates import PlanTemplate, register_template, template_names

__all__ = [
    "KINDS",
    "QuerySpec",
    "IndexKey",
    "IndexCache",
    "CacheOutcome",
    "CacheStats",
    "PlanStage",
    "PlanTemplate",
    "QueryPlan",
    "plan_query",
    "plan_batch",
    "distinct_index_keys",
    "execute_plan",
    "execute_plans",
    "register_template",
    "template_names",
    "QueryEngine",
    "QueryResult",
    "BatchResult",
    "record_to_dict",
]
