"""Multi-level range tree with temporal leaves — ``D_R`` (Appendix B.1).

A ``d``-level range tree over the points; each canonical node of the
last coordinate level stores a :class:`StabArray` over the lifespans of
its points.  A τ-durable range query ``Q_R(p, τ, R)`` decomposes the
rectangle ``R`` into ``O(log^d n)`` canonical nodes and, inside each,
reports the members ``q`` with ``(I⁻_q, id_q) <lex (I⁻_p, id_p)`` and
``I⁺_q ≥ I⁻_p + τ`` (the same temporal predicate as ``durableBallQ``).

Boxes carry per-side openness flags because Algorithm 5 partitions the
neighbourhood of ``p`` into *half-open* unit cubes (so each point falls
in exactly one cube).

Leaves are plain sorted arrays with prefix-max-end pruning — a
deliberate simplification over a third nested logarithmic structure
(DESIGN.md note 7): emptiness tests stay ``O(1)`` per node and
enumeration is a filtered scan of the stab prefix.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from ..errors import ValidationError

__all__ = ["Box", "Side", "StabArray", "RangeTree", "box_intersect", "closed_box"]

_INF = float("inf")

#: One side of a box: (lo, lo_open, hi, hi_open).
Side = Tuple[float, bool, float, bool]
#: An axis-aligned box: one Side per dimension.
Box = Sequence[Side]


def closed_box(lows: Sequence[float], highs: Sequence[float]) -> List[Side]:
    """A fully closed box ``[lo_i, hi_i]`` per dimension."""
    return [(float(lo), False, float(hi), False) for lo, hi in zip(lows, highs)]


def box_intersect(a: Box, b: Box) -> Optional[List[Side]]:
    """Intersection of two boxes (``None`` when provably empty)."""
    out: List[Side] = []
    for (alo, alo_o, ahi, ahi_o), (blo, blo_o, bhi, bhi_o) in zip(a, b):
        if alo > blo or (alo == blo and alo_o):
            lo, lo_o = alo, alo_o
        else:
            lo, lo_o = blo, blo_o
        if ahi < bhi or (ahi == bhi and ahi_o):
            hi, hi_o = ahi, ahi_o
        else:
            hi, hi_o = bhi, bhi_o
        if lo > hi or (lo == hi and (lo_o or hi_o)):
            return None
        out.append((lo, lo_o, hi, hi_o))
    return out


class StabArray:
    """Leaf-level temporal index: members sorted by ``(start, id)``.

    Supports the ``durableBallQ`` predicate over a prefix of the sort
    order with optional upper end bound (the ``Λ`` band of Section 4).
    """

    __slots__ = ("keys", "ends", "ids", "prefix_max_end")

    def __init__(self, items: Sequence[Tuple[float, int, float]]) -> None:
        """``items``: ``(start, id, end)`` triples (any order)."""
        ordered = sorted(items, key=lambda t: (t[0], t[1]))
        self.keys = [(t[0], t[1]) for t in ordered]
        self.ends = [t[2] for t in ordered]
        self.ids = [t[1] for t in ordered]
        best = -_INF
        self.prefix_max_end: List[float] = []
        for e in self.ends:
            if e > best:
                best = e
            self.prefix_max_end.append(best)

    def __len__(self) -> int:
        return len(self.ids)

    def prefix_len(self, key: Tuple[float, int]) -> int:
        return bisect.bisect_left(self.keys, key)

    def has_match(self, key: Tuple[float, int], y_lo: float) -> bool:
        """``O(log)`` emptiness test for the unbounded-end predicate."""
        t = self.prefix_len(key)
        return t > 0 and self.prefix_max_end[t - 1] >= y_lo

    def collect(
        self,
        key: Tuple[float, int],
        y_lo: float,
        y_hi: float = _INF,
        limit: Optional[int] = None,
    ) -> List[int]:
        """Member ids with ``(start, id) < key`` and ``end ∈ [y_lo, y_hi)``."""
        t = self.prefix_len(key)
        if t == 0 or self.prefix_max_end[t - 1] < y_lo:
            return []
        out: List[int] = []
        for pos in range(t):
            e = self.ends[pos]
            if y_lo <= e < y_hi:
                out.append(self.ids[pos])
                if limit is not None and len(out) >= limit:
                    break
        return out


class _AxisNode:
    __slots__ = ("coords", "size", "children")

    def __init__(self) -> None:
        self.coords: List[float] = []
        self.size = 1
        self.children: List[object] = []


class RangeTree:
    """Nested range tree over ``(point, lifespan)`` records (``D_R``)."""

    def __init__(
        self,
        points,
        starts: Sequence[float],
        ends: Sequence[float],
        ids: Optional[Sequence[int]] = None,
    ) -> None:
        import numpy as np

        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or len(pts) == 0:
            raise ValidationError("points must be a non-empty (n, d) array")
        if ids is None:
            ids = range(len(pts))
        self.dim = pts.shape[1]
        items = [
            (tuple(map(float, pts[i])), float(starts[i]), float(ends[i]), int(pid))
            for i, pid in enumerate(ids)
        ]
        self._root = self._build_axis(items, axis=0)

    # ------------------------------------------------------------------
    def _build_axis(self, items, axis: int):
        node = _AxisNode()
        items = sorted(items, key=lambda t: t[0][axis])
        node.coords = [t[0][axis] for t in items]
        m = len(items)
        size = 1
        while size < max(m, 1):
            size *= 2
        node.size = size
        node.children = [None] * (2 * size)
        last = axis == self.dim - 1
        self._fill(node, items, 1, 0, size, axis, last)
        return node

    def _fill(self, node: _AxisNode, items, v: int, lo: int, hi: int, axis: int, last: bool) -> None:
        m = len(items)
        if lo >= m:
            return
        slice_items = items[lo:min(hi, m)]
        if last:
            node.children[v] = StabArray(
                [(s, pid, e) for (_, s, e, pid) in slice_items]
            )
        else:
            node.children[v] = self._build_axis(slice_items, axis + 1)
        if hi - lo > 1:
            mid = (lo + hi) // 2
            self._fill(node, items, 2 * v, lo, mid, axis, last)
            self._fill(node, items, 2 * v + 1, mid, hi, axis, last)

    # ------------------------------------------------------------------
    def query_nodes(self, box: Box) -> List[StabArray]:
        """The ``O(log^d n)`` canonical leaves covering ``box``."""
        if len(box) != self.dim:
            raise ValidationError(
                f"box has {len(box)} sides, expected {self.dim}"
            )
        out: List[StabArray] = []
        self._query_axis(self._root, box, 0, out)
        return out

    def _query_axis(self, node: _AxisNode, box: Box, axis: int, out: List[StabArray]) -> None:
        lo, lo_open, hi, hi_open = box[axis]
        coords = node.coords
        lo_pos = (
            bisect.bisect_right(coords, lo) if lo_open else bisect.bisect_left(coords, lo)
        )
        hi_pos = (
            bisect.bisect_left(coords, hi) if hi_open else bisect.bisect_right(coords, hi)
        )
        if lo_pos >= hi_pos:
            return
        last = axis == self.dim - 1
        a = node.size + lo_pos
        b = node.size + hi_pos
        while a < b:
            if a & 1:
                self._emit(node.children[a], box, axis, last, out)
                a += 1
            if b & 1:
                b -= 1
                self._emit(node.children[b], box, axis, last, out)
            a //= 2
            b //= 2

    def _emit(self, child, box: Box, axis: int, last: bool, out: List[StabArray]) -> None:
        if child is None:
            return
        if last:
            out.append(child)
        else:
            self._query_axis(child, box, axis + 1, out)
