"""Tests for delay-guaranteed enumeration (Section 3, Remark 2)."""

import pytest

from repro import DurableTriangleIndex, ValidationError
from repro.baselines import triangle_bounds
from repro.core.enumeration import DelayGuaranteedEnumerator, anchor_has_triangle

from conftest import random_tps


class TestCompleteness:
    @pytest.mark.parametrize("seed", range(4))
    def test_same_results_as_query(self, seed):
        tps = random_tps(n=60, seed=seed)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        eager = sorted(r.key for r in idx.query(3.0))
        lazy = sorted(r.key for r in idx.iter_query(3.0))
        assert eager == lazy

    def test_sandwich(self):
        eps = 0.5
        tps = random_tps(n=60, seed=12)
        idx = DurableTriangleIndex(tps, epsilon=eps)
        got = {r.key for r in idx.iter_query(2.0)}
        must, may = triangle_bounds(tps, 2.0, eps)
        assert must <= got <= may

    def test_invalid_tau(self):
        idx = DurableTriangleIndex(random_tps(n=20, seed=0), epsilon=0.5)
        with pytest.raises(ValidationError):
            list(idx.iter_query(-1.0))


class TestDelayBound:
    def test_active_anchors_all_yield(self):
        tps = random_tps(n=80, seed=21)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        enum = DelayGuaranteedEnumerator(idx, 2.0)
        yielded_anchors = {r.anchor for r in enum}
        assert set(enum.active) == yielded_anchors

    def test_existence_test_matches_enumeration(self):
        tps = random_tps(n=70, seed=23)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        anchors_with_output = {r.anchor for r in idx.query(3.0)}
        for p in range(tps.n):
            has = anchor_has_triangle(idx.structure, p, 3.0)
            assert has == (p in anchors_with_output)

    def test_max_delay_recorded_and_bounded(self):
        """The inter-yield work stays far below total work (the point of
        Remark 2: no long silent stretches)."""
        tps = random_tps(n=120, seed=25)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        enum = DelayGuaranteedEnumerator(idx, 2.0)
        total = sum(1 for _ in enum)
        assert enum.max_delay_ops is not None
        if total > 0:
            # An un-guarded enumerator would scan all n anchors between
            # yields in the worst case; the guarantee keeps the gap to
            # the per-anchor canonical-ball work.
            assert enum.max_delay_ops < tps.n

    def test_empty_result_stream(self):
        tps = random_tps(n=30, seed=27)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        enum = DelayGuaranteedEnumerator(idx, 1e9)
        assert list(enum) == []
        assert enum.active == []
