"""Explicit proximity-graph materialisation.

The paper's algorithms deliberately never build the graph (its edge set
can be quadratic in ``n`` — Section 1.2); the baselines and validation
utilities here *do* build it, via grid hashing so construction stays
near ``O(n + m)`` for bounded-spread inputs.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..geometry.grid import UniformGrid
from ..geometry.metrics import Metric
from ..types import TemporalPointSet

__all__ = ["ProximityGraph", "build_proximity_graph"]


class ProximityGraph:
    """Adjacency-list view of ``G_φ(P, threshold)``."""

    def __init__(self, n: int, edges: List[Tuple[int, int]]) -> None:
        self.n = n
        self.edges = edges
        self.adj: List[List[int]] = [[] for _ in range(n)]
        for a, b in edges:
            self.adj[a].append(b)
            self.adj[b].append(a)

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self.edges)

    def degree(self, v: int) -> int:
        return len(self.adj[v])

    def neighbors(self, v: int) -> List[int]:
        return self.adj[v]

    def triangles(self) -> Iterator[Tuple[int, int, int]]:
        """Degree-ordered triangle listing (the ``Õ(m^{3/2})`` classic).

        Orients each edge from lower to higher degeneracy rank and
        intersects out-neighbourhoods — Itai–Rodeh / edge-iterator style,
        the comparator of Section 1.2.
        """
        rank = sorted(range(self.n), key=lambda v: (self.degree(v), v))
        pos = {v: i for i, v in enumerate(rank)}
        fwd: List[List[int]] = [[] for _ in range(self.n)]
        for a, b in self.edges:
            if pos[a] < pos[b]:
                fwd[a].append(b)
            else:
                fwd[b].append(a)
        fwd_sets = [set(out) for out in fwd]
        for v in range(self.n):
            out = fwd[v]
            for i in range(len(out)):
                a = out[i]
                for j in range(i + 1, len(out)):
                    b = out[j]
                    if b in fwd_sets[a] or a in fwd_sets[b]:
                        yield tuple(sorted((v, a, b)))  # type: ignore[misc]

    def to_networkx(self):
        """Optional networkx view (requires the ``analysis`` extra)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self.edges)
        return g


def build_proximity_graph(
    tps: TemporalPointSet, threshold: float = 1.0, grid_side: float = None
) -> ProximityGraph:
    """Materialise ``G_φ(P, threshold)`` with grid hashing.

    Falls back to the quadratic scan for metrics without grid support.
    """
    metric: Metric = tps.metric
    if metric.supports_grid:
        side = grid_side if grid_side is not None else max(threshold, 1e-9)
        grid = UniformGrid(tps.points, side)
        edges = list(grid.pairs_within(threshold, metric))
    else:
        edges = []
        for i in range(tps.n):
            d = metric.dists(tps.points[i + 1 :], tps.points[i])
            for off in np.nonzero(d <= threshold)[0]:
                edges.append((i, i + 1 + int(off)))
    return ProximityGraph(tps.n, edges)
