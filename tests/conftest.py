"""Shared fixtures and generators for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TemporalPointSet

# ----------------------------------------------------------------------
# Random workload helpers (deterministic per seed)
# ----------------------------------------------------------------------


def random_tps(
    n: int = 60,
    dim: int = 2,
    seed: int = 0,
    metric: str = "l2",
    box: float = 4.0,
    horizon: float = 20.0,
    max_len: float = 12.0,
    integer_times: bool = True,
) -> TemporalPointSet:
    """A reproducible random temporal point set.

    Coordinates are uniform in ``[0, box]^dim`` so that with box ≈ 4 a
    unit-ball query sees a non-trivial neighbourhood.  Lifespans default
    to integer endpoints to keep durability comparisons exact.
    """
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, box, size=(n, dim))
    if integer_times:
        starts = rng.integers(0, int(horizon), size=n).astype(float)
        lengths = rng.integers(0, int(max_len) + 1, size=n).astype(float)
    else:
        starts = rng.uniform(0, horizon, size=n)
        lengths = rng.uniform(0, max_len, size=n)
    return TemporalPointSet(pts, starts, starts + lengths, metric=metric)


def random_intervals(n: int, seed: int = 0, horizon: int = 50):
    """Random integer-endpoint (start, end) pairs."""
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, horizon, size=n)
    lengths = rng.integers(0, horizon // 2 + 1, size=n)
    return [(float(s), float(s + l)) for s, l in zip(starts, lengths)]


@pytest.fixture
def small_tps() -> TemporalPointSet:
    return random_tps(n=40, seed=7)


@pytest.fixture
def medium_tps() -> TemporalPointSet:
    return random_tps(n=120, seed=11)
