"""The built-in backends: cover tree, grid, exact ℓ∞ range tree, vector.

Each :func:`register_builtin_backends` call installs four descriptors:

* ``cover-tree`` — the paper's general-metric net hierarchy
  (Appendix A).  Serves every query kind under any metric; the safe
  default and the only choice for opaque :class:`~repro.geometry.
  metrics.FunctionMetric` distances.
* ``grid`` — the one-level quadtree of Remark 1 / Appendix D.1.
  Serves every query kind but only under ``ℓ_α`` metrics
  (``supports_grid``); builds ~4–5× faster than the cover tree on such
  inputs (see ``BENCH_backends.json``), which is why the cost model
  usually picks it for ``auto``.
* ``linf-exact`` — the exact ℓ∞ triangle reporter of Appendix B
  (Algorithm 5, Theorem B.3).  Triangles only, ℓ∞ only, and the only
  backend with an exactness guarantee, so ``auto`` promotes eligible
  triangle queries to it.
* ``vector`` — the structure-of-arrays backend
  (:mod:`repro.backends.vector`): the same grid cells as ``grid`` but
  built and queried by batched numpy kernels.  Record sets are
  identical to ``grid``'s; the calibrated cost model prices it below
  the object-graph backends on ``ℓ_α`` inputs, so ``auto`` usually
  picks it there.

The hooks reproduce the historical planner's cache identities
bit-for-bit: for every pre-existing backend name the
:class:`~repro.engine.cache.IndexKey` a descriptor emits equals what
``repro.engine.planner`` produced before the registry existed
(asserted by ``tests/test_backends.py::TestKeyStability``).

Index-class imports happen inside the hooks: the core solvers import
:mod:`repro.structures.durable_ball`, which consults this registry for
spatial lookups, so importing them at module scope would be circular.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..engine.cache import IndexKey
from ..errors import ValidationError
from ..geometry.metrics import ChebyshevMetric, Metric
from .descriptor import BackendDescriptor
from .registry import BackendRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.spec import QuerySpec
    from ..types import TemporalPointSet

__all__ = ["register_builtin_backends", "spatial_descriptor"]

#: Query kind → shared-index family (one PatternIndex serves all three
#: pattern kinds, so they share the ``patterns`` family).
_FAMILY = {
    "triangles": "triangles",
    "pairs-sum": "pairs-sum",
    "pairs-union": "pairs-union",
    "cliques": "patterns",
    "paths": "patterns",
    "stars": "patterns",
}

_ALL_KINDS = frozenset(_FAMILY)


def _spatial_identity(name: str) -> Callable[["QuerySpec", str], IndexKey]:
    """Identity hook for a durable-ball backend — must stay bit-identical
    to the historical planner keys (same family, ε, backend, extras)."""

    def identity(spec: "QuerySpec", fingerprint: str) -> IndexKey:
        family = _FAMILY.get(spec.kind)
        if family is None:  # pragma: no cover - spec already validates kinds
            raise ValidationError(f"unknown query kind {spec.kind!r}")
        extra = (spec.sum_backend,) if spec.kind == "pairs-sum" else ()
        return IndexKey(family, fingerprint, spec.epsilon, name, extra)

    return identity


def _spatial_builder(
    name: str,
) -> Callable[["QuerySpec", "TemporalPointSet"], Callable[[], Any]]:
    """Builder hook for a durable-ball backend.

    The concrete backend name is passed down to the index classes, whose
    own ``resolve_backend`` leaves it untouched — the structure an
    explicit-name query always built.
    """

    def make_builder(spec: "QuerySpec", tps: "TemporalPointSet") -> Callable[[], Any]:
        kind = spec.kind
        if kind == "triangles":
            from ..core.triangles import DurableTriangleIndex

            return lambda: DurableTriangleIndex(
                tps, epsilon=spec.epsilon, backend=name
            )
        if kind == "pairs-sum":
            from ..core.aggregate import SumPairIndex

            return lambda: SumPairIndex(
                tps,
                epsilon=spec.epsilon,
                backend=name,
                sum_backend=spec.sum_backend,
            )
        if kind == "pairs-union":
            from ..core.aggregate import UnionPairIndex

            return lambda: UnionPairIndex(tps, epsilon=spec.epsilon, backend=name)
        if kind in ("cliques", "paths", "stars"):
            from ..core.patterns import PatternIndex

            return lambda: PatternIndex(tps, epsilon=spec.epsilon, backend=name)
        raise ValidationError(  # pragma: no cover - spec already validates kinds
            f"unknown query kind {kind!r}"
        )

    return make_builder


def spatial_descriptor(
    name: str,
    description: str,
    metric_requirement: str,
    metric_ok: Callable[[Metric], bool],
    decomposition_factory: Callable[..., Any],
) -> BackendDescriptor:
    """A descriptor for a durable-ball spatial backend.

    Custom decompositions reuse this: implement the
    :class:`~repro.structures.decomposition.SpatialDecomposition`
    interface, wire the factory through
    :func:`~repro.structures.durable_ball.make_decomposition` (it
    dispatches by registered name), and register the descriptor on
    :func:`~repro.backends.registry.default_registry`.
    """
    return BackendDescriptor(
        name=name,
        kinds=_ALL_KINDS,
        exact=False,
        description=description,
        metric_requirement=metric_requirement,
        metric_ok=metric_ok,
        make_builder=_spatial_builder(name),
        index_identity=_spatial_identity(name),
        decomposition_factory=decomposition_factory,
    )


def _vector_builder(
    spec: "QuerySpec", tps: "TemporalPointSet"
) -> Callable[[], Any]:
    """Builder hook for the SoA ``vector`` backend.

    Constructs the vectorised index classes; their ``cache_key()`` hooks
    emit the same ``(family, fingerprint, ε, "vector", …)`` identity as
    :func:`_spatial_identity`, so planner keys and index keys agree.
    """
    kind = spec.kind
    if kind == "triangles":
        from .vector import VectorTriangleIndex

        return lambda: VectorTriangleIndex(tps, epsilon=spec.epsilon)
    if kind == "pairs-sum":
        from .vector import VectorSumPairIndex

        return lambda: VectorSumPairIndex(
            tps, epsilon=spec.epsilon, sum_backend=spec.sum_backend
        )
    if kind == "pairs-union":
        from .vector import VectorUnionPairIndex

        return lambda: VectorUnionPairIndex(tps, epsilon=spec.epsilon)
    if kind in ("cliques", "paths", "stars"):
        from .vector import VectorPatternIndex

        return lambda: VectorPatternIndex(tps, epsilon=spec.epsilon)
    raise ValidationError(  # pragma: no cover - spec already validates kinds
        f"unknown query kind {kind!r}"
    )


# ----------------------------------------------------------------------
def _cover_tree_factory(points, metric, resolution):
    from ..covertree.ball_query import CoverTreeDecomposition

    return CoverTreeDecomposition(points, metric, resolution)


def _grid_factory(points, metric, resolution):
    from ..quadtree.tree import GridDecomposition

    return GridDecomposition(points, metric, resolution)


def _vector_factory(points, metric, resolution):
    from .vector import VectorGridDecomposition

    return VectorGridDecomposition(points, metric, resolution)


def _linf_exact_identity(spec: "QuerySpec", fingerprint: str) -> IndexKey:
    # ε is irrelevant to the exact solver; pinning it to 0.0 keeps every
    # ε-variant of an exact triangle query on one shared index (and the
    # key bit-identical to the historical planner's).
    return IndexKey("linf-triangles", fingerprint, 0.0, "linf-exact")


def _linf_exact_builder(
    spec: "QuerySpec", tps: "TemporalPointSet"
) -> Callable[[], Any]:
    from ..core.linf import LinfTriangleIndex

    return lambda: LinfTriangleIndex(tps)


def register_builtin_backends(registry: BackendRegistry) -> BackendRegistry:
    """Install the three built-in descriptors (idempotent via replace)."""
    registry.register(
        spatial_descriptor(
            "cover-tree",
            description=(
                "net-hierarchy canonical balls (Appendix A); the "
                "general-metric structure"
            ),
            metric_requirement="any metric",
            metric_ok=lambda metric: True,
            decomposition_factory=_cover_tree_factory,
        ),
        replace=True,
    )
    registry.register(
        spatial_descriptor(
            "grid",
            description=(
                "one-level quadtree cells (Remark 1); fastest build on "
                "lp inputs"
            ),
            metric_requirement="lp metrics (grid cells)",
            metric_ok=lambda metric: bool(metric.supports_grid),
            decomposition_factory=_grid_factory,
        ),
        replace=True,
    )
    registry.register(
        BackendDescriptor(
            name="linf-exact",
            kinds=frozenset({"triangles"}),
            exact=True,
            description=(
                "exact range-tree triangle reporting (Algorithm 5, "
                "Theorem B.3); no ε-extras"
            ),
            metric_requirement="the linf metric",
            metric_ok=lambda metric: isinstance(metric, ChebyshevMetric),
            make_builder=_linf_exact_builder,
            index_identity=_linf_exact_identity,
        ),
        replace=True,
    )
    registry.register(
        BackendDescriptor(
            name="vector",
            kinds=_ALL_KINDS,
            exact=False,
            description=(
                "structure-of-arrays numpy kernels over grid cells; "
                "fastest build+query on lp inputs"
            ),
            metric_requirement="lp metrics (grid cells)",
            metric_ok=lambda metric: bool(metric.supports_grid),
            make_builder=_vector_builder,
            index_identity=_spatial_identity("vector"),
            decomposition_factory=_vector_factory,
        ),
        replace=True,
    )
    return registry
