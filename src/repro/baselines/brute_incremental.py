"""Ground truth for the incremental problem (Section 4).

``IncrDurableTriangle`` deltas are validated against set differences of
the brute-force triangle sets, and activation thresholds against a
direct maximisation over all triangles anchored at a point.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from ..types import TemporalPointSet, TriangleRecord
from .brute_force import brute_force_triangles

__all__ = [
    "brute_delta_keys",
    "brute_activation_threshold",
    "RecomputeIncrementalBaseline",
]


def brute_delta_keys(
    tps: TemporalPointSet,
    tau: float,
    tau_prec: float,
    threshold: float = 1.0,
) -> Set[Tuple[int, int, int]]:
    """Keys of triangles that are τ-durable but not τ≺-durable.

    Because ``T_τ≺ ⊆ T_τ`` for ``τ ≤ τ≺``, this is exactly
    ``{t ∈ T_τ : durability(t) < τ≺}``.
    """
    return {
        t.key
        for t in brute_force_triangles(tps, tau, threshold)
        if t.durability < tau_prec
    }


def brute_activation_threshold(
    tps: TemporalPointSet,
    anchor: int,
    tau: float,
    threshold: float = 1.0,
) -> float:
    """``β^τ_p`` by direct enumeration (Definition 4.1).

    The maximum durability strictly below ``τ`` over every triangle
    anchored at ``anchor`` (−inf when none exists).
    """
    starts, ends = tps.starts, tps.ends
    sp, ep = float(starts[anchor]), float(ends[anchor])
    d = tps.metric.dists(tps.points, tps.points[anchor])
    key = tps.anchor_key(anchor)
    partners = [
        int(q)
        for q in np.nonzero(d <= threshold)[0]
        if tps.anchor_key(int(q)) < key and ends[q] >= sp
    ]
    best = float("-inf")
    for i, q in enumerate(partners):
        for s in partners[i + 1 :]:
            if tps.dist(q, s) > threshold:
                continue
            durability = min(ep, float(ends[q]), float(ends[s])) - sp
            if 0 < durability < tau and durability > best:
                best = durability
    return best


class RecomputeIncrementalBaseline:
    """The naive comparator: answer every query from scratch.

    Recomputes ``T_τ`` with the brute-force lister and diffs against the
    previously returned key set — the strategy Section 4 is designed to
    beat (experiment E2).
    """

    def __init__(self, tps: TemporalPointSet, threshold: float = 1.0) -> None:
        self.tps = tps
        self.threshold = threshold
        self._seen: Set[Tuple[int, int, int]] = set()
        self._tau_star = float("inf")

    def query(self, tau: float) -> List[TriangleRecord]:
        full = brute_force_triangles(self.tps, tau, self.threshold)
        if tau >= self._tau_star:
            self._seen = {t.key for t in full}
            self._tau_star = tau
            return []
        fresh = [t for t in full if t.key not in self._seen]
        self._seen = {t.key for t in full}
        self._tau_star = tau
        return fresh
