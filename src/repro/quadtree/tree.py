"""Grid/quadtree decomposition for ``ℓ_α`` norms (Remark 1, Appendix D.1).

For ``ℓ_α`` metrics the cover tree of Appendix A can be replaced by a
quadtree: the canonical balls become the cells of a uniform grid whose
side is chosen so every cell fits in a metric ball of radius
``resolution`` around the cell center.  Only the single canonical level
is needed at query time, so the decomposition stores exactly that level
and answers :meth:`candidate_groups` with one vectorised distance pass
over the (at most ``n``) non-empty cell centers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import BackendError, ValidationError
from ..geometry.metrics import Metric, MetricSpec, get_metric
from ..structures.decomposition import (
    GEOMETRY_SLACK,
    CanonicalGroup,
    SpatialDecomposition,
)

__all__ = ["GridDecomposition"]


class GridDecomposition(SpatialDecomposition):
    """Canonical balls from a one-level quadtree grid.

    Parameters
    ----------
    points:
        ``(n, d)`` coordinate array.
    metric:
        Must be an ``ℓ_α`` or ``ℓ_∞`` metric (``supports_grid``).
    resolution:
        Maximum canonical-ball radius (cell center to any cell point).
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: MetricSpec,
        resolution: float,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or len(pts) == 0:
            raise ValidationError("points must be a non-empty (n, d) array")
        m = get_metric(metric)
        if not m.supports_grid:
            raise BackendError(
                f"grid decomposition requires an lp metric, got {m.name!r}"
            )
        if resolution <= 0:
            raise ValidationError(f"resolution must be positive, got {resolution!r}")
        self.points = pts
        self.metric: Metric = m
        self.resolution = float(resolution)
        dim = pts.shape[1]
        # Cell of side s has center-to-corner distance (s/2)·d^{1/α};
        # cell_side_for_diameter(2·resolution) yields exactly that bound.
        self.side = m.cell_side_for_diameter(2.0 * resolution, dim)

        cells: Dict[Tuple[int, ...], List[int]] = {}
        coords = np.floor(pts / self.side).astype(np.int64)
        for idx, key in enumerate(map(tuple, coords)):
            cells.setdefault(key, []).append(idx)

        self.groups: List[CanonicalGroup] = []
        self.group_of = np.empty(len(pts), dtype=np.int64)
        for key in sorted(cells):
            center = (np.asarray(key, dtype=float) + 0.5) * self.side
            g = CanonicalGroup(
                index=len(self.groups),
                rep=center,
                radius_bound=self.resolution,
                member_ids=sorted(cells[key]),
            )
            for pid in g.member_ids:
                self.group_of[pid] = g.index
            self.groups.append(g)
        self._centers = np.vstack([g.rep for g in self.groups])

    # ------------------------------------------------------------------
    def candidate_groups(self, point: np.ndarray, radius: float) -> List[int]:
        """Cells whose center is within ``radius + resolution`` of ``point``."""
        d = self.metric.dists(self._centers, np.asarray(point, dtype=float))
        keep = d <= radius + self.resolution + GEOMETRY_SLACK
        return [int(i) for i in np.nonzero(keep)[0]]

    # ------------------------------------------------------------------
    def extended(
        self, new_points: np.ndarray
    ) -> Tuple["GridDecomposition", List[int]]:
        """A decomposition of ``self.points + new_points``, sharing state.

        Grid cells are *absolute* (a point's cell depends only on its
        coordinates and the fixed ``side``), so appending points cannot
        move any existing point between cells: the extended
        decomposition has exactly the same cells-and-membership a fresh
        build over the merged array would produce — cells that gained
        no member are shared by reference, untouched cells' geometry is
        bit-identical, and only the *order* of groups may differ (fresh
        builds sort all cells; extension appends new cells at the end),
        which no query result depends on (candidate and linkage tests
        are position-determined, and records carry point ids only).

        Returns ``(decomposition, changed)`` where ``changed`` lists the
        group indices (in the new decomposition) that gained members.
        This instance is not mutated, so readers of the old epoch are
        never exposed to a half-extended structure.
        """
        new = np.asarray(new_points, dtype=float)
        if new.ndim != 2 or len(new) == 0 or new.shape[1] != self.points.shape[1]:
            raise ValidationError(
                "extension batch must be a non-empty (k, d) array matching "
                f"the decomposition dimension ({self.points.shape[1]})"
            )
        base = len(self.points)
        # Same arithmetic as __init__, so existing cell keys reproduce
        # exactly (no float round-trip through the stored centers).
        old_coords = np.floor(self.points / self.side).astype(np.int64)
        cell_of = {tuple(old_coords[g.member_ids[0]]): g.index for g in self.groups}
        additions: Dict[int, List[int]] = {}
        fresh: Dict[Tuple[int, ...], List[int]] = {}
        for offset, key in enumerate(
            map(tuple, np.floor(new / self.side).astype(np.int64))
        ):
            pid = base + offset
            gi = cell_of.get(key)
            if gi is not None:
                additions.setdefault(gi, []).append(pid)
            else:
                fresh.setdefault(key, []).append(pid)

        clone = object.__new__(type(self))
        clone.points = np.concatenate([self.points, new])
        clone.metric = self.metric
        clone.resolution = self.resolution
        clone.side = self.side
        group_of = np.concatenate(
            [self.group_of, np.empty(len(new), dtype=np.int64)]
        )
        groups: List[CanonicalGroup] = []
        changed: List[int] = []
        for g in self.groups:
            extra = additions.get(g.index)
            if extra is None:
                groups.append(g)  # shared: never mutated by extension
                continue
            # New ids are all larger than existing ones, so appending
            # keeps member_ids sorted — the same list a fresh build's
            # ``sorted(cells[key])`` yields.
            grown = CanonicalGroup(
                index=g.index,
                rep=g.rep,
                radius_bound=g.radius_bound,
                member_ids=list(g.member_ids) + extra,
            )
            for pid in extra:
                group_of[pid] = g.index
            groups.append(grown)
            changed.append(g.index)
        for key in sorted(fresh):
            center = (np.asarray(key, dtype=float) + 0.5) * self.side
            g = CanonicalGroup(
                index=len(groups),
                rep=center,
                radius_bound=self.resolution,
                member_ids=fresh[key],
            )
            for pid in g.member_ids:
                group_of[pid] = g.index
            groups.append(g)
            changed.append(g.index)
        clone.groups = groups
        clone.group_of = group_of
        clone._centers = np.vstack([g.rep for g in groups])
        return clone, changed
