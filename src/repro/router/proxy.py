"""The routing front end: one public port over N worker processes.

:class:`RouterApp` speaks the exact same NDJSON-over-HTTP protocol as
the single-process serve layer — clients cannot tell the difference —
but owns **placement** instead of shards:

* ``POST   /datasets`` picks the owning worker by cost-weighted
  rendezvous hashing (:mod:`repro.router.placement`), forwards the
  registration, and records the placement in the manifest that
  restart-with-replay trusts;
* ``POST   /query`` proxies the owning worker's chunked NDJSON stream
  line by line — per-query fault isolation and incremental τ-sweep
  delivery survive the extra hop, and a worker dying mid-stream
  surfaces as a cleanly truncated chunked body (no terminal 0-chunk),
  exactly like a direct serve crash would;
* ``POST   /datasets/<name>/events`` forwards an NDJSON event batch to
  the owning worker verbatim and, once the worker accepts it, records
  the batch in the manifest's event log — restart-with-replay and
  router boots then restore appended state, not just the seed;
* ``DELETE /datasets/<name>`` forwards to the owner and releases the
  placement (the rebalancing primitive);
* ``GET    /stats`` fans out to every worker and aggregates their
  stats — connections, per-backend counters, identity — under a
  ``workers`` key, next to the router's own placement and proxy
  counters and a fleet-wide ``totals`` block (summed queries, errors,
  connections and datasets across the live workers);
* ``GET    /metrics`` scrapes every live worker's ``/metrics``,
  re-labels each worker's samples with ``worker="<slot>"``, and merges
  them with the router's own families into one Prometheus text
  exposition — one scrape covers the whole fleet;
* ``POST   /shutdown`` drains the router's connections, then fans the
  shutdown out to the fleet.

``X-API-Key`` headers pass through ``POST /query`` untouched: tenant
resolution, fair shares and quotas are enforced by the owning worker
(boot the fleet with ``--api-keys`` to enable them), and the workers'
tenant-labelled metrics come back through the fleet scrape.

Queries that race a dead or restarting worker get ``503`` +
``Retry-After`` (via :class:`~repro.serve.server.UnavailableError`),
never a hang: connects to a dead loopback port fail fast, restarting
slots are flagged by the supervisor, and one transparent retry on a
stale pooled connection separates "worker closed an idle socket" from
"worker is gone".

Upstream connections are pooled per ``(slot, generation)`` — the
router holds keep-alive sockets to each worker just like clients hold
them to the router — and a worker restart (new generation) strands the
old generation's sockets, which then fail their next use and are
discarded.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple
from urllib.parse import quote, unquote

from ..backends import default_registry
from ..backends.cost import CostModel
from ..errors import ValidationError
from ..obs import ExpositionError, parse_exposition, relabel, render_merged
from ..obs.trace import TRACEPARENT_HEADER, format_traceparent
from ..obs.tracestore import DEFAULT_SLOW_QUERY_MS, DEFAULT_TRACE_SAMPLE
from ..serve.http import (
    ProtocolError,
    Request,
    end_chunked,
    start_stream,
)
from ..serve.registry import UnknownDatasetError
from ..serve.server import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_REQUESTS_PER_CONNECTION,
    AsyncApp,
    ConnectionState,
    UnavailableError,
)
from .manifest import PlacementManifest
from .placement import choose_worker, features_from_spec, placement_scores
from .supervisor import WorkerPool, WorkerStatus, worker_request

__all__ = ["RouterApp"]

#: Seconds to establish a TCP connection to a worker.  Loopback either
#: connects instantly or refuses instantly; anything slower means the
#: worker is in real trouble and 503 is the right answer.
CONNECT_TIMEOUT = 5.0

#: Seconds for a worker to answer a proxied *non-streaming* round trip
#: (register may materialise a workload, so it gets a generous bound).
UPSTREAM_TIMEOUT = 120.0

#: Seconds for one worker's /stats during aggregation fan-out; a slow
#: worker degrades to an error entry instead of stalling the response.
STATS_TIMEOUT = 5.0

#: Everything that can go wrong talking to a worker over a socket.
_UPSTREAM_ERRORS = (
    OSError,
    ConnectionError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
)


class RouterApp(AsyncApp):
    """Route client requests onto the worker pool."""

    tier = "router"

    def __init__(
        self,
        pool: WorkerPool,
        manifest: Optional[PlacementManifest] = None,
        cost_model: Optional[CostModel] = None,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        max_requests_per_connection: int = DEFAULT_MAX_REQUESTS_PER_CONNECTION,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        trace_sample: float = DEFAULT_TRACE_SAMPLE,
        slow_query_ms: float = DEFAULT_SLOW_QUERY_MS,
        tracing: bool = True,
    ) -> None:
        super().__init__(
            idle_timeout=idle_timeout,
            max_requests_per_connection=max_requests_per_connection,
            drain_timeout=drain_timeout,
            trace_sample=trace_sample,
            slow_query_ms=slow_query_ms,
            tracing=tracing,
        )
        self.pool = pool
        self.manifest = manifest if manifest is not None else pool.manifest
        # The same calibrated cost model that drives backend="auto"
        # scores (dataset shape, worker backends) for placement.
        self.cost_model = (
            cost_model if cost_model is not None else default_registry().cost_model
        )
        self.proxied_queries = 0
        self.proxy_unavailable = 0
        self.registrations = 0
        self.deletions = 0
        self.forwarded_appends = 0
        self.upstream_connects = 0
        self.upstream_reuses = 0
        #: Idle upstream keep-alive sockets per (slot, generation).
        self._upstream: Dict[
            Tuple[str, int],
            Deque[Tuple[asyncio.StreamReader, asyncio.StreamWriter]],
        ] = {}
        self._register_router_metrics()

    def _register_router_metrics(self) -> None:
        """The ``router_*`` families (on top of AsyncApp's ``http_*``).

        All callbacks: the router already counts everything for
        ``/stats``, and callbacks run on the event-loop thread (the
        scrape is served there), so reading the un-locked proxy
        counters and the upstream pool is race-free.
        """
        m = self.metrics

        def per_worker(field):
            def collect():
                return [
                    ({"worker": slot}, info[field])
                    for slot, info in sorted(self.pool.stats().items())
                ]

            return collect

        m.callback(
            "router_workers", "gauge", "Configured worker slots.",
            lambda: [({}, len(self.pool.slots()))],
        )
        m.callback(
            "router_worker_up", "gauge",
            "1 when the slot's process is running and announced, else 0.",
            lambda: [
                ({"worker": s.slot}, 1 if s.running else 0)
                for s in self.pool.statuses()
            ],
        )
        m.callback(
            "router_worker_restarts_total", "counter",
            "Times the slot's process was restarted by the supervisor.",
            per_worker("restarts"),
        )
        m.callback(
            "router_worker_probe_failures_total", "counter",
            "Failed health probes against the slot (cumulative).",
            per_worker("probe_failures_total"),
        )
        m.callback(
            "router_worker_replay_errors_total", "counter",
            "Manifest replay registrations that failed after a restart.",
            per_worker("replay_errors"),
        )
        m.callback(
            "router_proxied_queries_total", "counter",
            "Query streams proxied to workers.",
            lambda: [({}, self.proxied_queries)],
        )
        m.callback(
            "router_proxy_unavailable_total", "counter",
            "Requests answered 503 because the owning worker was gone.",
            lambda: [({}, self.proxy_unavailable)],
        )
        m.callback(
            "router_registrations_total", "counter",
            "Dataset registrations placed onto workers.",
            lambda: [({}, self.registrations)],
        )
        m.callback(
            "router_deletions_total", "counter",
            "Dataset deletions forwarded to workers.",
            lambda: [({}, self.deletions)],
        )
        m.callback(
            "router_forwarded_appends_total", "counter",
            "Event-batch appends forwarded to owning workers and accepted.",
            lambda: [({}, self.forwarded_appends)],
        )
        m.callback(
            "router_replayed_event_batches_total", "counter",
            "Event batches re-appended from the manifest during replay "
            "(worker restarts and router boots).",
            lambda: [({}, self.pool.replayed_event_batches_total)],
        )
        m.callback(
            "router_upstream_connects_total", "counter",
            "Fresh TCP connections opened to workers.",
            lambda: [({}, self.upstream_connects)],
        )
        m.callback(
            "router_upstream_reuses_total", "counter",
            "Upstream requests served on a pooled keep-alive socket.",
            lambda: [({}, self.upstream_reuses)],
        )

        def pool_idle():
            out: Dict[str, int] = {}
            for (slot, _generation), idle in self._upstream.items():
                out[slot] = out.get(slot, 0) + len(idle)
            return [({"worker": slot}, n) for slot, n in sorted(out.items())]

        m.callback(
            "router_upstream_pool_idle", "gauge",
            "Idle pooled sockets held per worker.",
            pool_idle,
        )
        self._m_relay_bytes = m.counter(
            "router_relay_bytes_total",
            "Streamed NDJSON payload bytes relayed from workers to clients.",
            ("worker",),
        )
        self._m_scrape_errors = m.counter(
            "router_worker_scrape_errors_total",
            "Worker /metrics scrapes that failed or were malformed.",
            ("worker",),
        )

    # ------------------------------------------------------------------
    # Upstream connection management
    # ------------------------------------------------------------------
    def _worker_for(self, name: str) -> Tuple[str, WorkerStatus]:
        """The (slot, live status) owning ``name``; 404/503 otherwise."""
        entry = self.manifest.get(name)
        if entry is None:
            registered = ", ".join(self.manifest.names()) or "(none)"
            raise UnknownDatasetError(
                f"unknown dataset {name!r}; registered: {registered}"
            )
        status = self.pool.status(entry.worker)
        if not status.running:
            self.proxy_unavailable += 1
            raise UnavailableError(
                f"worker {entry.worker!r} owning dataset {name!r} is "
                "restarting; retry shortly",
                retry_after=2.0,
            )
        return entry.worker, status

    async def _connect(
        self, status: WorkerStatus
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        try:
            conn = await asyncio.wait_for(
                asyncio.open_connection(status.host, status.port),
                CONNECT_TIMEOUT,
            )
            self.upstream_connects += 1
            return conn
        except (OSError, asyncio.TimeoutError) as exc:
            self.proxy_unavailable += 1
            raise UnavailableError(
                f"worker {status.slot!r} at {status.host}:{status.port} is not "
                f"accepting connections ({type(exc).__name__}); retry shortly",
                retry_after=2.0,
            ) from exc

    def _pool_key(self, status: WorkerStatus) -> Tuple[str, int]:
        return (status.slot, status.generation)

    def _take_pooled(
        self, status: WorkerStatus
    ) -> Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]:
        idle = self._upstream.get(self._pool_key(status))
        while idle:
            reader, writer = idle.popleft()
            if writer.is_closing() or reader.at_eof():
                writer.close()
                continue
            self.upstream_reuses += 1
            return reader, writer
        return None

    def _release(
        self,
        status: WorkerStatus,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        reusable: bool,
    ) -> None:
        # A restart bumped the slot's generation: sockets pooled for the
        # dead process will never be taken again — close them now so a
        # flapping worker can't leak one deque of FDs per restart.
        key = self._pool_key(status)
        stale = [k for k in self._upstream if k[0] == status.slot and k != key]
        for stale_key in stale:
            for _reader, stale_writer in self._upstream.pop(stale_key):
                stale_writer.close()
        if reusable and not writer.is_closing():
            self._upstream.setdefault(key, deque()).append((reader, writer))
        else:
            writer.close()

    def _close_upstream(self) -> None:
        for idle in self._upstream.values():
            for _reader, writer in idle:
                writer.close()
        self._upstream.clear()

    # ------------------------------------------------------------------
    @staticmethod
    async def _send_upstream(
        writer: asyncio.StreamWriter,
        status: WorkerStatus,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {status.host}:{status.port}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    async def _read_upstream_head(
        reader: asyncio.StreamReader,
    ) -> Tuple[int, Dict[str, str]]:
        line = await reader.readline()
        if not line:
            raise ConnectionError("worker closed the connection")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed worker status line: {line!r}")
        headers: Dict[str, str] = {}
        while True:
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n"):
                break
            if not hline:
                raise ConnectionError("worker closed mid-headers")
            name, _sep, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return int(parts[1]), headers

    async def _upstream_request(
        self,
        status: WorkerStatus,
        method: str,
        path: str,
        body: bytes,
        head_timeout: float,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], asyncio.StreamReader, asyncio.StreamWriter]:
        """Acquire a connection, send one request, read the response head.

        One shared retry policy for JSON round trips and streamed
        queries alike: a stale pooled socket (the worker idle-timed it
        out, or its request cap closed it) gets one transparent retry
        on a fresh connection; a fresh connection failing means the
        worker is actually gone → 503.  The caller owns the returned
        connection — it must consume the body and then
        :meth:`_release` (or close) it.
        """
        for attempt in ("pooled", "fresh"):
            conn = self._take_pooled(status) if attempt == "pooled" else None
            pooled = conn is not None
            if conn is None:
                conn = await self._connect(status)
            reader, writer = conn
            try:
                await self._send_upstream(
                    writer, status, method, path, body, headers
                )
                code, headers = await asyncio.wait_for(
                    self._read_upstream_head(reader), head_timeout
                )
            except _UPSTREAM_ERRORS as exc:
                writer.close()
                if pooled:
                    continue  # stale keep-alive socket: retry fresh once
                self.proxy_unavailable += 1
                raise UnavailableError(
                    f"worker {status.slot!r} dropped the proxied request "
                    f"({type(exc).__name__}); retry shortly",
                    retry_after=2.0,
                ) from exc
            return code, headers, reader, writer
        raise AssertionError("unreachable: fresh attempt returns or raises")

    async def _read_upstream_body(
        self,
        status: WorkerStatus,
        headers: Dict[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        timeout: float,
    ) -> bytes:
        """Consume a ``Content-Length`` body and release the connection."""
        try:
            length = int(headers.get("content-length", "0"))
            raw = await asyncio.wait_for(reader.readexactly(length), timeout)
        except _UPSTREAM_ERRORS as exc:
            # The head arrived but the body did not: the worker really
            # failed mid-response; no retry.
            writer.close()
            self.proxy_unavailable += 1
            raise UnavailableError(
                f"worker {status.slot!r} dropped the proxied reply "
                f"({type(exc).__name__}); retry shortly",
                retry_after=2.0,
            ) from exc
        keep = headers.get("connection", "keep-alive").lower() != "close"
        self._release(status, reader, writer, reusable=keep)
        return raw

    async def _roundtrip(
        self,
        status: WorkerStatus,
        method: str,
        path: str,
        payload: Optional[Any] = None,
        timeout: float = UPSTREAM_TIMEOUT,
    ) -> Tuple[int, Any]:
        """One JSON round trip to a worker over a pooled connection."""
        body = json.dumps(payload).encode() if payload is not None else b""
        code, headers, reader, writer = await self._upstream_request(
            status, method, path, body, timeout
        )
        raw = await self._read_upstream_body(
            status, headers, reader, writer, timeout
        )
        try:
            doc = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            doc = {"error": raw.decode("utf-8", "replace")}
        return code, doc

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        route = (request.method, request.path)
        if route == ("GET", "/health"):
            statuses = self.pool.statuses()
            await self._respond(
                writer,
                state,
                200,
                {
                    "ok": True,
                    "role": "router",
                    "workers": {
                        "total": len(statuses),
                        "alive": sum(1 for s in statuses if s.running),
                    },
                    "datasets": len(self.manifest),
                },
            )
        elif route == ("GET", "/stats"):
            await self._respond(writer, state, 200, await self._aggregate_stats())
        elif route == ("GET", "/datasets"):
            await self._respond(
                writer,
                state,
                200,
                {
                    "datasets": [
                        {
                            "name": entry.name,
                            "worker": entry.worker,
                            "dataset": entry.payload.get("dataset"),
                            "event_batches": len(entry.events),
                        }
                        for entry in sorted(
                            self.manifest.entries(), key=lambda e: e.name
                        )
                    ]
                },
            )
        elif route == ("POST", "/datasets"):
            await self._handle_register(request, writer, state)
        elif request.path.startswith("/datasets/") and len(request.path) > 10:
            if request.path.endswith("/events"):
                if request.method != "POST":
                    raise ProtocolError(
                        405, f"{request.method} not allowed on {request.path}"
                    )
                await self._handle_append(request, writer, state)
            elif request.method != "DELETE":
                raise ProtocolError(
                    405, f"{request.method} not allowed on {request.path}"
                )
            else:
                await self._handle_unregister(request, writer, state)
        elif route == ("POST", "/query"):
            await self._handle_query(request, writer, state)
        elif request.path == "/debug/traces" or request.path.startswith(
            "/debug/traces/"
        ):
            await self._handle_debug_traces(request, writer, state)
        elif route == ("GET", "/metrics"):
            await self._respond_metrics(writer, state)
        elif route == ("POST", "/shutdown"):
            state.keep_alive = False
            await self._respond(writer, state, 200, {"ok": True, "stopping": True})
            self._shutdown.set()
        elif request.path in (
            "/health", "/stats", "/metrics", "/datasets", "/query", "/shutdown",
        ):
            raise ProtocolError(405, f"{request.method} not allowed on {request.path}")
        else:
            raise ProtocolError(404, f"no route for {request.path!r}")

    def _route_label(self, request: Request) -> str:
        if request.path in (
            "/health", "/stats", "/metrics", "/datasets", "/query", "/shutdown",
            "/debug/traces",
        ):
            return request.path
        if request.path.startswith("/debug/traces/"):
            return "/debug/traces/{id}"
        if request.path.startswith("/datasets/"):
            if request.path.endswith("/events"):
                return "/datasets/{name}/events"
            return "/datasets/{name}"
        return "other"

    async def _trace_document(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """One stitched cross-process span tree for ``trace_id``.

        The router's own spans (root + proxy) are merged with the span
        sets of every running worker that retained the trace — the same
        fan-out machinery as the fleet ``/metrics`` scrape.  Worker
        spans were created from the forwarded ``traceparent``, so their
        subtree roots parent directly onto the router's proxy span and
        the merged list is a single tree.  Each process samples
        independently, so a partial answer (worker kept it, router
        evicted it, or vice versa) still renders.
        """
        own = self.trace_store.get(trace_id) if self.trace_store else None
        spans = list(own["spans"]) if own else []

        async def fetch(slot: str):
            status = self.pool.status(slot)
            if not status.running:
                return None
            try:
                code, doc = await self._roundtrip(
                    status, "GET",
                    f"/debug/traces/{quote(trace_id, safe='')}",
                    timeout=STATS_TIMEOUT,
                )
            except UnavailableError:
                return None
            if code != 200 or not isinstance(doc, dict):
                return None
            return slot, doc

        fetched = await asyncio.gather(
            *(fetch(slot) for slot in self.pool.slots())
        )
        workers = []
        for item in fetched:
            if item is None:
                continue
            slot, doc = item
            workers.append(slot)
            for span in doc.get("spans", ()):
                span = dict(span)
                attrs = dict(span.get("attrs") or {})
                attrs.setdefault("worker", slot)
                span["attrs"] = attrs
                spans.append(span)
        if not spans:
            return None
        base: Dict[str, Any] = dict(own) if own else {"trace_id": trace_id}
        base["spans"] = spans
        base["stitched"] = True
        base["workers"] = workers
        return base

    async def _metrics_text(self) -> str:
        """One scrape for the whole fleet.

        Every running worker's ``/metrics`` is fetched over the pooled
        upstream connections, strictly re-parsed, re-labelled with
        ``worker="<slot>"`` and merged after the router's own families.
        A worker that is down, slow, or emits a malformed exposition is
        skipped (and counted in ``router_worker_scrape_errors_total``)
        rather than poisoning the fleet scrape.
        """
        own = {family.name: family for family in self.metrics.collect()}

        async def scrape(slot: str):
            status = self.pool.status(slot)
            if not status.running:
                return None
            try:
                code, headers, reader, writer = await self._upstream_request(
                    status, "GET", "/metrics", b"", STATS_TIMEOUT
                )
                raw = await self._read_upstream_body(
                    status, headers, reader, writer, STATS_TIMEOUT
                )
                if code != 200:
                    raise ExpositionError(0, f"worker answered HTTP {code}")
                return relabel(
                    parse_exposition(raw.decode("utf-8")), worker=slot
                )
            except (UnavailableError, ExpositionError, UnicodeDecodeError):
                self._m_scrape_errors.labels(worker=slot).inc()
                return None

        scraped = await asyncio.gather(
            *(scrape(slot) for slot in self.pool.slots())
        )
        return render_merged(own, *(m for m in scraped if m is not None))

    # ------------------------------------------------------------------
    def _place(self, name: str, dataset_spec: Any) -> str:
        return choose_worker(
            name,
            features_from_spec(dataset_spec),
            self.pool.candidates(),
            self.cost_model,
        )

    async def _handle_register(
        self, request: Request, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        doc = request.json()
        if (
            not isinstance(doc, dict)
            or not isinstance(doc.get("name"), str)
            or "dataset" not in doc
        ):
            raise ProtocolError(
                400, "register body must be {'name': ..., 'dataset': {spec}}"
            )
        name = doc["name"]
        replace = bool(doc.get("replace", False))
        existing = self.manifest.get(name)
        if existing is not None and not replace:
            # Mirror the worker's own duplicate answer without a hop —
            # the owning worker may not even be the placement target
            # anymore (e.g. the fleet size changed across a restart).
            await self._respond(
                writer,
                state,
                409,
                {
                    "error": f"dataset {name!r} is already registered; "
                    "pass replace to overwrite"
                },
            )
            return
        slot = self._place(name, doc.get("dataset"))
        status = self.pool.status(slot)
        if not status.running:
            self.proxy_unavailable += 1
            raise UnavailableError(
                f"placement chose worker {slot!r}, which is restarting; "
                "retry shortly",
                retry_after=2.0,
            )
        code, body = await self._roundtrip(
            status, "POST", "/datasets", dict(doc, replace=replace)
        )
        if code == 201:
            self.registrations += 1
            old = self.manifest.record(name, slot, doc)
            if old is not None and old.worker != slot:
                # replace=True moved the dataset (fleet changed since it
                # was placed): evict the stale shard, best-effort.
                await self._forward_delete(old.worker, name)
            if isinstance(body, dict):
                body["worker"] = slot
        await self._respond(writer, state, code, body)

    async def _forward_delete(self, slot: str, name: str) -> Tuple[int, Any]:
        """Best-effort ``DELETE`` on a worker; unreachable workers are
        fine (their next restart replays only what the manifest says)."""
        try:
            status = self.pool.status(slot)
        except ValidationError:
            return 0, None
        if not status.running:
            return 0, None
        try:
            # Names may hold spaces etc. (only "/" is banned): percent-
            # encode for the request line, mirroring the worker's unquote.
            return await self._roundtrip(
                status, "DELETE", f"/datasets/{quote(name, safe='')}",
                timeout=30.0,
            )
        except UnavailableError:
            return 0, None

    async def _handle_unregister(
        self, request: Request, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        name = unquote(request.path[len("/datasets/"):])
        entry = self.manifest.get(name)
        if entry is None:
            registered = ", ".join(self.manifest.names()) or "(none)"
            raise UnknownDatasetError(
                f"unknown dataset {name!r}; registered: {registered}"
            )
        code, body = await self._forward_delete(entry.worker, name)
        # The manifest entry goes regardless: once the operator deletes
        # a dataset, a later worker restart must not resurrect it.  An
        # unreachable worker's stale shard dies with its process.
        self.manifest.remove(name)
        self.deletions += 1
        payload: Dict[str, Any] = {"removed": name, "worker": entry.worker}
        if code == 200 and isinstance(body, dict):
            payload["dataset"] = body.get("removed")
        elif code == 0:
            payload["worker_unreachable"] = True
        await self._respond(writer, state, 200, payload)

    async def _handle_append(
        self, request: Request, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        """``POST /datasets/<name>/events`` — forward to the owner.

        The NDJSON body passes through verbatim (it is not JSON, so
        this rides :meth:`_upstream_request` directly rather than the
        JSON round trip).  A batch the worker *accepted* — any accepted
        count, even alongside rejected lines — is recorded in the
        manifest's event log, so restart-with-replay and router boots
        restore the appended state, not just the seed registration.
        """
        name = unquote(request.path[len("/datasets/"): -len("/events")])
        if not name:
            raise ProtocolError(404, "no route for '/datasets//events'")
        if not request.body:
            raise ProtocolError(400, "event batch body must not be empty")
        slot, status = self._worker_for(name)
        code, up_headers, up_reader, up_writer = await self._upstream_request(
            status, "POST", f"/datasets/{quote(name, safe='')}/events",
            request.body, UPSTREAM_TIMEOUT,
        )
        raw = await self._read_upstream_body(
            status, up_headers, up_reader, up_writer, UPSTREAM_TIMEOUT
        )
        try:
            body = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            body = {"error": raw.decode("utf-8", "replace")}
        if code == 200:
            self.forwarded_appends += 1
            report = body.get("appended") if isinstance(body, dict) else None
            accepted = report.get("accepted", 0) if isinstance(report, dict) else 0
            if accepted:
                # Log only batches that changed state: an all-rejected
                # batch bumps nothing, and replaying it would be noise.
                self.manifest.record_events(
                    name, request.body.decode("utf-8", "replace")
                )
            if isinstance(body, dict):
                body["worker"] = slot
        await self._respond(writer, state, code, body)

    # ------------------------------------------------------------------
    async def _handle_query(
        self, request: Request, writer: asyncio.StreamWriter, state: ConnectionState
    ) -> None:
        doc = request.json()
        if not isinstance(doc, dict):
            raise ProtocolError(400, "query body must be a JSON object")
        name = doc.get("dataset")
        if isinstance(name, dict):
            raise ProtocolError(
                400,
                "inline dataset specs are not accepted here; register the "
                "dataset via POST /datasets and query it by name",
            )
        if not isinstance(name, str):
            raise ProtocolError(400, "query body needs a 'dataset' name")
        slot, status = self._worker_for(name)
        proxy_span = None
        if state.trace is not None and state.root_span is not None:
            state.root_span.set_attr("dataset", name)
            proxy_span = state.trace.start_span(
                "router.proxy",
                parent_id=state.root_span.span_id,
                attrs={"worker": slot, "dataset": name},
            )
        # Tenant identity rides along untouched: the owning worker is
        # the enforcement point for shares and quotas.
        forward: Dict[str, str] = {}
        api_key = request.headers.get("x-api-key")
        if api_key is not None:
            forward["X-API-Key"] = api_key
        if proxy_span is not None:
            # Propagate the context on the upstream socket: the worker
            # continues this trace with the proxy span as its parent,
            # which is what lets /debug/traces/<id> stitch one tree.
            forward[TRACEPARENT_HEADER] = format_traceparent(
                proxy_span.trace_id, proxy_span.span_id
            )
        try:
            code, up_headers, up_reader, up_writer = await self._upstream_request(
                status, "POST", "/query", request.body, UPSTREAM_TIMEOUT,
                headers=forward or None,
            )
        except UnavailableError as exc:
            if proxy_span is not None:
                proxy_span.set_error(str(exc))
                proxy_span.finish()
            raise

        if up_headers.get("transfer-encoding", "").lower() != "chunked":
            # Non-streaming answer (400/404/429/…): relay it whole.
            raw = await self._read_upstream_body(
                status, up_headers, up_reader, up_writer, UPSTREAM_TIMEOUT
            )
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode("utf-8", "replace")}
            extra = {}
            if code in (429, 503) and "retry-after" in up_headers:
                extra["Retry-After"] = up_headers["retry-after"]
            if proxy_span is not None:
                proxy_span.set_attr("status", code)
                if code >= 400:
                    proxy_span.set_error(f"HTTP {code}")
                proxy_span.finish()
            await self._respond(
                writer, state, code, payload, extra_headers=extra or None
            )
            return

        # Streaming answer: re-frame the worker's chunked NDJSON to the
        # client chunk by chunk.  Every chunk is one NDJSON line, so the
        # incremental τ-sweep delivery survives the hop.
        self.proxied_queries += 1
        chunked = request.version != "HTTP/1.0"
        if not chunked:
            state.keep_alive = False  # raw NDJSON is close-delimited
        await start_stream(
            writer, code,
            extra_headers=state.response_headers() or None,
            close=not state.keep_alive,
            chunked=chunked,
        )
        try:
            complete, relayed = await self._relay_chunks(up_reader, writer, chunked)
            self._m_relay_bytes.labels(worker=slot).inc(relayed)
            if proxy_span is not None:
                proxy_span.set_attr("relayed_bytes", relayed)
            if complete:
                if chunked:
                    await end_chunked(writer)
                if proxy_span is not None:
                    proxy_span.finish()
                # Honour the worker's own close decision (e.g. its
                # per-connection request cap) — pooling a closing
                # socket would burn the stale-socket retry next time.
                up_keep = (
                    up_headers.get("connection", "keep-alive").lower() != "close"
                )
                self._release(status, up_reader, up_writer, reusable=up_keep)
            else:
                # The worker died (or its stream broke) mid-body: the
                # client's stream is truncated without a terminator —
                # the same contract as a direct serve crash — and this
                # connection can't carry another response.
                state.broken = True
                if proxy_span is not None:
                    proxy_span.set_error("worker stream truncated")
                    proxy_span.finish()
                up_writer.close()
        except asyncio.CancelledError:
            state.broken = True
            if proxy_span is not None:
                proxy_span.set_error("relay cancelled")
                proxy_span.finish()
            up_writer.close()
            writer.close()
            raise
        except Exception as exc:
            # Client-side write failure mid-stream: stop writing, drop
            # both sockets (the upstream body position is unknowable).
            state.broken = True
            if proxy_span is not None:
                proxy_span.set_error(f"{type(exc).__name__}: {exc}")
                proxy_span.finish()
            up_writer.close()

    @staticmethod
    async def _relay_chunks(
        up_reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        chunked: bool,
    ) -> Tuple[bool, int]:
        """Relay one chunked body → ``(complete, payload_bytes)``.

        ``complete`` is ``True`` iff the terminal chunk arrived.  Parses
        the worker's chunk framing rather than blind-piping bytes, so
        the router knows the difference between a complete stream
        (reusable upstream socket, terminator owed to the client) and a
        truncated one (worker died — propagate the truncation), and can
        account the payload bytes it relayed either way.
        """
        relayed = 0
        try:
            while True:
                size_line = await up_reader.readline()
                if not size_line.endswith(b"\r\n"):
                    return False, relayed  # EOF mid-framing
                try:
                    size = int(size_line.strip().split(b";", 1)[0], 16)
                except ValueError:
                    return False, relayed
                if size == 0:
                    # Terminal chunk; consume the trailing CRLF (the
                    # serve layer never sends trailers).
                    await up_reader.readexactly(2)
                    return True, relayed
                payload = await up_reader.readexactly(size)
                await up_reader.readexactly(2)  # chunk CRLF
                if chunked:
                    writer.write(
                        f"{size:x}\r\n".encode("latin-1") + payload + b"\r\n"
                    )
                else:
                    writer.write(payload)
                relayed += size
                await writer.drain()
        except (OSError, ConnectionError, asyncio.IncompleteReadError):
            return False, relayed

    # ------------------------------------------------------------------
    async def _aggregate_stats(self) -> Dict[str, Any]:
        """Router + per-worker statistics (the ``GET /stats`` document)."""
        supervision = self.pool.stats()

        async def fetch(slot: str) -> Tuple[str, Optional[Dict[str, Any]]]:
            status = self.pool.status(slot)
            if not status.running:
                return slot, None
            try:
                code, doc = await self._roundtrip(
                    status, "GET", "/stats", timeout=STATS_TIMEOUT
                )
            except UnavailableError:
                return slot, None
            return slot, doc if code == 200 and isinstance(doc, dict) else None

        fetched = dict(
            await asyncio.gather(*(fetch(slot) for slot in self.pool.slots()))
        )

        workers: Dict[str, Any] = {}
        totals = {
            "queries_total": 0,
            "errors_total": 0,
            "connections_opened": 0,
            "datasets": 0,
        }
        for slot, info in supervision.items():
            doc = fetched.get(slot)
            entry = dict(info)
            if doc is not None:
                server = doc.get("server", {})
                entry["identity"] = server.get("identity")
                entry["stats"] = doc
                shards = doc.get("shards", {})
                totals["datasets"] += len(shards)
                totals["connections_opened"] += (
                    server.get("connections", {}).get("opened", 0)
                )
                for shard in shards.values():
                    totals["queries_total"] += shard.get("queries_total", 0)
                    totals["errors_total"] += shard.get("errors_total", 0)
            else:
                entry["stats"] = None
            workers[slot] = entry

        router = self.server_stats()
        router["datasets"] = len(self.manifest)
        router["restarts_total"] = self.pool.restarts_total
        router["proxy"] = {
            "queries": self.proxied_queries,
            "registrations": self.registrations,
            "deletions": self.deletions,
            "appends": self.forwarded_appends,
            "unavailable": self.proxy_unavailable,
            "replayed_event_batches": self.pool.replayed_event_batches_total,
        }
        router["placement"] = {
            "policy": "cost-weighted rendezvous (HRW)",
            "datasets": self.manifest.placements(),
        }
        return {"router": router, "workers": workers, "totals": totals}

    # ------------------------------------------------------------------
    def explain_placement(self, name: str, dataset_spec: Any) -> Dict[str, float]:
        """Per-worker rendezvous keys for one dataset (debug/test hook)."""
        return placement_scores(
            name,
            features_from_spec(dataset_spec),
            self.pool.candidates(),
            self.cost_model,
        )

    def bootstrap(self) -> int:
        """Re-register every manifest entry onto its placed worker.

        Called (blocking, before the listener binds) when a router
        starts with a persisted manifest: placement is recomputed —
        deterministic HRW gives the same worker for an unchanged
        fleet — the seed registration is replayed with ``replace=True``
        followed by the entry's recorded event batches in order, and
        the manifest is updated (event log preserved) in case the
        fleet *did* change.  Returns the number of datasets restored.
        """
        restored = 0
        for entry in self.manifest.entries():
            slot = self._place(entry.name, entry.payload.get("dataset"))
            status = self.pool.status(slot)
            if not status.running:
                continue  # supervisor will replay once the slot is back
            errors, _last = self.pool.replay_entry(
                status.host, status.port, entry
            )
            if errors == 0:
                self.manifest.record(
                    entry.name, slot, entry.payload, events=entry.events
                )
                restored += 1
        return restored

    def register_blocking(self, name: str, dataset_spec: Any) -> str:
        """Boot-time registration (CLI ``--dataset``); returns the slot."""
        payload = {"name": name, "dataset": dataset_spec}
        slot = self._place(name, dataset_spec)
        status = self.pool.status(slot)
        code, body = worker_request(
            status.host, status.port, "POST", "/datasets",
            dict(payload, replace=True), timeout=UPSTREAM_TIMEOUT,
        )
        if code != 201:
            raise ValidationError(
                f"boot registration of dataset {name!r} on {slot!r} failed: "
                f"HTTP {code} {body[:200]!r}"
            )
        self.manifest.record(name, slot, payload)
        return slot

    def _cleanup(self) -> None:
        self._close_upstream()
        self.pool.stop(graceful=True)
