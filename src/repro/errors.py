"""Exception hierarchy for the ``repro`` library.

Every error raised on a public code path derives from :class:`ReproError`
so that callers can catch library failures with a single ``except`` clause
while still distinguishing input validation from structural misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied input fails validation.

    Examples: point/lifespan arrays of mismatched length, a lifespan whose
    end precedes its start, a non-positive durability parameter, or an
    approximation parameter outside ``(0, 1]``.
    """


class MetricError(ReproError, ValueError):
    """Raised when a metric specification cannot be resolved.

    The library accepts metric names (``"l1"``, ``"l2"``, ``"linf"``),
    ``("lp", alpha)`` tuples, :class:`~repro.geometry.metrics.Metric`
    instances, and callables; anything else raises this error.
    """


class StructureError(ReproError, RuntimeError):
    """Raised when a data structure is used outside its contract.

    Examples: querying a dynamic structure after it has been closed, or
    requesting an exact ℓ∞ backend on a non-ℓ∞ metric.
    """


class BackendError(ReproError, ValueError):
    """Raised when an unknown or incompatible backend is requested."""
