"""Async serving front end over a sharded dataset registry (ISSUE 2).

The paper's economics — preprocess once, answer many durability reports
fast — pay off in a long-lived process that keeps indexes resident and
serves many callers.  This package is that process, stdlib-only:

* :class:`~repro.serve.registry.DatasetRegistry` — named datasets, one
  :class:`~repro.engine.cache.IndexCache` + thread pool + admission
  queue per shard, so a hot dataset cannot evict or starve another's
  indexes;
* :mod:`~repro.serve.bridge` — event-loop → thread-pool bridge with
  all-or-nothing batch admission (full queue ⇒ 429, never unbounded
  buffering);
* :mod:`~repro.serve.http` / :mod:`~repro.serve.server` — HTTP/1.1
  framing with **persistent connections** (keep-alive request loop,
  idle timeout, per-connection request cap, graceful drain on
  shutdown) and the NDJSON streaming protocol (``POST /datasets``,
  ``POST /query``, ``GET /stats``, ``GET /metrics``,
  ``POST /shutdown``);
* :mod:`~repro.serve.tenants` — optional per-tenant QoS: ``X-API-Key``
  → tenant resolution, weighted fair admission shares, per-minute
  quotas (429 + ``Retry-After``), tenant-labelled metrics.

Start one with ``python -m repro serve`` or, in-process,
:func:`~repro.serve.server.start_server_thread` (the tests' and bench
driver's fixture).
"""

from .bridge import AdmissionQueue, OverloadedError, submit_plans
from .tenants import AuthError, Tenant, TenantTable
from .registry import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_QUEUE_LIMIT,
    DatasetRegistry,
    DatasetShard,
    DuplicateDatasetError,
    UnknownDatasetError,
)
from .server import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_REQUESTS_PER_CONNECTION,
    AsyncApp,
    ServeApp,
    ServerHandle,
    UnavailableError,
    run_server,
    start_app_thread,
    start_server_thread,
)

__all__ = [
    "AdmissionQueue",
    "OverloadedError",
    "submit_plans",
    "AuthError",
    "Tenant",
    "TenantTable",
    "DatasetRegistry",
    "DatasetShard",
    "DuplicateDatasetError",
    "UnknownDatasetError",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_MAX_REQUESTS_PER_CONNECTION",
    "DEFAULT_DRAIN_TIMEOUT",
    "AsyncApp",
    "ServeApp",
    "ServerHandle",
    "UnavailableError",
    "run_server",
    "start_app_thread",
    "start_server_thread",
]
