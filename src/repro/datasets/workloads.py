"""Named end-to-end workloads used by the examples and benchmarks.

Each returns a ready :class:`~repro.types.TemporalPointSet` modelling
one of the paper's motivating applications (Examples 1.1 and 1.2), plus
a generic benchmark workload with tunable density.
"""

from __future__ import annotations

from typing import Optional

from ..types import TemporalPointSet
from .synthetic import clustered_points, manifold_points, uniform_points
from .temporal_gen import career_lifespans, session_lifespans, uniform_lifespans

__all__ = [
    "social_forum_workload",
    "coauthorship_workload",
    "benchmark_workload",
]


def social_forum_workload(
    n: int = 500,
    n_communities: int = 10,
    seed: Optional[int] = 0,
    metric: str = "l2",
) -> TemporalPointSet:
    """Example 1.1: users embedded by profile similarity, with daily
    session lifespans.  Durable triangles/cliques are groups of similar
    users simultaneously active for a long stretch."""
    pts = clustered_points(
        n, dim=2, n_clusters=n_communities, box=8.0, cluster_std=0.4, seed=seed
    )
    starts, ends = session_lifespans(n, seed=seed)
    return TemporalPointSet(pts, starts, ends, metric=metric)


def coauthorship_workload(
    n: int = 400,
    intrinsic_dim: int = 2,
    ambient_dim: int = 6,
    seed: Optional[int] = 0,
    metric: str = "l2",
) -> TemporalPointSet:
    """Example 1.2: researchers on a low-dimensional topic manifold in a
    higher-dimensional embedding space, with career-length lifespans.
    Aggregate-durable pairs are coauthors with sustained shared
    collaborators."""
    pts = manifold_points(
        n, intrinsic_dim=intrinsic_dim, ambient_dim=ambient_dim, extent=7.0, seed=seed
    )
    starts, ends = career_lifespans(n, seed=seed)
    return TemporalPointSet(pts, starts, ends, metric=metric)


def benchmark_workload(
    n: int,
    dim: int = 2,
    density: float = 12.0,
    horizon: float = 60.0,
    max_len: float = 20.0,
    seed: Optional[int] = 0,
    metric: str = "l2",
) -> TemporalPointSet:
    """Uniform workload with ~``density`` expected unit-ball neighbours.

    The box side is chosen so the expected number of points within unit
    distance of a point stays constant as ``n`` grows — keeping OUT
    roughly linear in ``n``, the regime where near-linear total time is
    the predicted shape (experiment E1).
    """
    import numpy as np

    # Solve box^dim * density = n * unit_ball_volume (l2 ball).
    from math import gamma, pi

    ball_vol = pi ** (dim / 2) / gamma(dim / 2 + 1)
    box = (n * ball_vol / density) ** (1.0 / dim)
    pts = uniform_points(n, dim=dim, box=max(box, 1.0), seed=seed)
    starts, ends = uniform_lifespans(
        n, horizon=horizon, min_len=1.0, max_len=max_len, seed=seed
    )
    return TemporalPointSet(pts, starts, ends, metric=metric)
