"""Worker-process pool: spawn, probe, restart-with-replay, drain.

Each worker is a full ``python -m repro serve`` process on its own
loopback port — a real process boundary, so N workers use N cores and
a crash (OOM, segfault in a native extension, operator ``kill``) takes
down one shard set, not the service.  The pool:

* **spawns** workers with ``--port 0`` and learns the bound port from
  the serve announce line (no port-picking races);
* **probes** liveness two ways: ``Popen.poll()`` catches process death
  within one supervision tick, and an HTTP ``GET /health`` probe
  catches wedged-but-alive processes after a few consecutive failures;
* **restarts** a dead worker in place — same slot id, fresh process,
  new generation — and **replays** every dataset the placement
  manifest says the slot owns (``replace=True``, so replay is
  idempotent), followed by each dataset's recorded event batches in
  append order, before marking the slot running again;
* **drains** on shutdown by fanning ``POST /shutdown`` out to every
  worker (each drains its own in-flight streams per the serve layer's
  graceful-stop rules), then waits, then kills stragglers.

Slot ids (``worker-0`` …) are the placement keys and deliberately
survive restarts: a replacement process inherits its slot's datasets,
so placement never moves on a crash.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import quote

from ..errors import ReproError, ValidationError
from .manifest import ManifestEntry, PlacementManifest
from .placement import WorkerCandidate

__all__ = [
    "WorkerStatus",
    "WorkerPool",
    "worker_request",
    "DEFAULT_PROBE_INTERVAL",
    "DEFAULT_BOOT_TIMEOUT",
]

#: Seconds between supervision ticks (process poll + health probe).
DEFAULT_PROBE_INTERVAL = 0.5

#: Seconds a freshly spawned worker gets to print its announce line
#: (imports numpy, binds the socket) before the spawn counts as failed.
DEFAULT_BOOT_TIMEOUT = 30.0

#: Consecutive failed health probes before a live-but-wedged process is
#: killed and restarted.  Process *death* needs no streak — one tick.
PROBE_FAILURE_THRESHOLD = 3

_ANNOUNCE_RE = re.compile(r"serving on http://([0-9.]+):(\d+)")

#: Everything a blocking worker round trip can raise: socket errors and
#: protocol-level failures (e.g. BadStatusLine from a wedged worker
#: emitting garbage — which must count as an unhealthy probe, not
#: escape to the supervise loop's last-resort handler).
_REQUEST_ERRORS = (OSError, http.client.HTTPException)


@dataclass(frozen=True)
class WorkerStatus:
    """Immutable snapshot of one slot, safe to hand across threads."""

    slot: str
    generation: int
    running: bool
    host: Optional[str]
    port: Optional[int]
    pid: Optional[int]
    restarts: int
    backends: Optional[Tuple[str, ...]]


def worker_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Any] = None,
    timeout: float = 30.0,
    raw_body: Optional[bytes] = None,
) -> Tuple[int, bytes]:
    """One blocking HTTP round trip to a worker (supervisor-side).

    The proxy's event loop has its own async client; this is for the
    supervisor thread (replay, graceful drain) and boot-time
    registration, where blocking is fine and stdlib ``http.client``
    is the simplest correct thing.  ``raw_body`` sends a non-JSON body
    verbatim (event-batch replay posts NDJSON); it is mutually
    exclusive with ``payload``.
    """
    if payload is not None and raw_body is not None:
        raise ValidationError("worker_request takes payload or raw_body, not both")
    if raw_body is not None:
        body: Optional[bytes] = raw_body
        content_type = "application/x-ndjson"
    else:
        body = json.dumps(payload).encode() if payload is not None else None
        content_type = "application/json"
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=body,
            headers={"Content-Type": content_type, "Connection": "close"},
        )
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


class _WorkerProcess:
    """One generation of one slot: the OS process plus its bound address."""

    def __init__(self, slot: str, generation: int, cmd: List[str],
                 env: Dict[str, str]) -> None:
        self.slot = slot
        self.generation = generation
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.started_monotonic = time.monotonic()
        #: Last stdout/stderr lines, kept for the error message when a
        #: spawn fails or a worker dies unexpectedly.
        self.tail: deque = deque(maxlen=50)
        self._booted = threading.Event()
        self.process = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            bufsize=1,
            env=env,
        )
        # The reader thread drains stdout for the process's whole life:
        # it parses the announce line, and keeps the pipe from filling
        # (a full pipe would wedge the worker on its next print).
        self._reader = threading.Thread(
            target=self._read_output,
            name=f"repro-route-{slot}-out",
            daemon=True,
        )
        self._reader.start()

    def _read_output(self) -> None:
        assert self.process.stdout is not None
        for line in self.process.stdout:
            self.tail.append(line.rstrip("\n"))
            if not self._booted.is_set():
                match = _ANNOUNCE_RE.search(line)
                if match:
                    self.host = match.group(1)
                    self.port = int(match.group(2))
                    self._booted.set()
        self._booted.set()  # EOF: unblock any boot waiter

    def wait_booted(self, timeout: float) -> None:
        if not self._booted.wait(timeout) or self.port is None:
            tail = "\n".join(self.tail)
            self.kill()
            raise ReproError(
                f"worker {self.slot!r} failed to announce within {timeout:.0f}s; "
                f"output:\n{tail}"
            )

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    @property
    def pid(self) -> int:
        return self.process.pid

    def kill(self) -> None:
        if self.alive:
            self.process.kill()
        try:
            self.process.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            pass


class _WorkerState:
    """Mutable per-slot record, guarded by the pool lock."""

    def __init__(self, candidate: WorkerCandidate) -> None:
        self.candidate = candidate
        self.current: Optional[_WorkerProcess] = None
        self.generation = 0
        self.restarts = 0
        #: Current *streak* of failed health probes (resets on success;
        #: reaching PROBE_FAILURE_THRESHOLD triggers a restart).
        self.probe_failures = 0
        #: Cumulative failed probes over the slot's life (telemetry).
        self.probe_failures_total = 0
        self.replay_errors = 0
        self.last_error: Optional[str] = None


class WorkerPool:
    """Spawn and supervise N ``repro serve`` worker processes."""

    def __init__(
        self,
        workers: int = 2,
        worker_backends: Optional[Sequence[Optional[Sequence[str]]]] = None,
        host: str = "127.0.0.1",
        serve_args: Sequence[str] = (),
        manifest: Optional[PlacementManifest] = None,
        probe_interval: float = DEFAULT_PROBE_INTERVAL,
        boot_timeout: float = DEFAULT_BOOT_TIMEOUT,
        python: str = sys.executable,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"need at least 1 worker, got {workers!r}")
        if worker_backends is not None and len(worker_backends) > workers:
            raise ValidationError(
                f"{len(worker_backends)} backend subsets for {workers} workers"
            )
        self.host = host
        self.serve_args = list(serve_args)
        self.manifest = manifest if manifest is not None else PlacementManifest()
        self.probe_interval = probe_interval
        self.boot_timeout = boot_timeout
        self.python = python
        self.restarts_total = 0
        #: Event batches re-appended during replay, fleet-wide (both the
        #: supervisor's restart replay and the router's boot replay
        #: count here — the ``router_replayed_event_batches_total``
        #: metric reads it).
        self.replayed_event_batches_total = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        #: Processes spawned but not yet adopted into a slot's
        #: ``current`` — tracked so a stop() racing a mid-restart spawn
        #: (which can sit in boot/replay for a long time) still finds
        #: and kills them instead of orphaning a live subprocess.
        self._pending: set = set()
        self._states: Dict[str, _WorkerState] = {}
        for i in range(workers):
            backends = None
            if worker_backends is not None and i < len(worker_backends):
                sub = worker_backends[i]
                backends = tuple(sub) if sub is not None else None
            self._states[f"worker-{i}"] = _WorkerState(
                WorkerCandidate(worker=f"worker-{i}", backends=backends)
            )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every worker, then start the supervision thread."""
        for slot, state in self._states.items():
            proc = self._spawn(slot)
            with self._lock:
                state.current = proc
                state.generation = proc.generation
                self._pending.discard(proc)
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-route-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn(self, slot: str) -> _WorkerProcess:
        with self._lock:
            generation = self._states[slot].generation + 1
        cmd = [
            self.python, "-m", "repro", "serve",
            "--host", self.host, "--port", "0",
            *self.serve_args,
        ]
        env = dict(os.environ)
        # The worker must import the same `repro` this router runs —
        # including editable/source checkouts pytest put on sys.path.
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        src_root = os.path.dirname(package_root)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{src_root}{os.pathsep}{existing}" if existing else src_root
        )
        env["PYTHONUNBUFFERED"] = "1"  # announce line must not sit in a buffer
        proc = _WorkerProcess(slot, generation, cmd, env)
        with self._lock:
            self._pending.add(proc)
        try:
            proc.wait_booted(self.boot_timeout)
        except BaseException:
            with self._lock:
                self._pending.discard(proc)
            raise  # wait_booted killed the process already
        return proc

    # ------------------------------------------------------------------
    def candidates(self) -> Tuple[WorkerCandidate, ...]:
        """Every configured slot, dead or alive.

        Placement hashes over *slots*, not live processes: a dataset
        placed while its worker restarts still belongs to that slot
        (queries get 503 until the replay lands), which is what keeps
        placement deterministic across crashes and restarts.
        """
        with self._lock:
            return tuple(state.candidate for state in self._states.values())

    def slots(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._states)

    def status(self, slot: str) -> WorkerStatus:
        with self._lock:
            state = self._states.get(slot)
            if state is None:
                raise ValidationError(
                    f"unknown worker slot {slot!r}; configured: "
                    f"{', '.join(self._states)}"
                )
            proc = state.current
            running = proc is not None and proc.alive and proc.port is not None
            return WorkerStatus(
                slot=slot,
                generation=state.generation,
                running=running,
                host=proc.host if proc is not None else None,
                port=proc.port if proc is not None else None,
                pid=proc.pid if proc is not None else None,
                restarts=state.restarts,
                backends=state.candidate.backends,
            )

    def statuses(self) -> List[WorkerStatus]:
        return [self.status(slot) for slot in self.slots()]

    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop.wait(self.probe_interval):
            for slot in self.slots():
                if self._stop.is_set():
                    return
                try:
                    self._check_one(slot)
                except Exception as exc:  # noqa: BLE001 - keep supervising
                    with self._lock:
                        state = self._states.get(slot)
                        if state is not None:
                            state.last_error = f"{type(exc).__name__}: {exc}"

    def _check_one(self, slot: str) -> None:
        with self._lock:
            state = self._states[slot]
            proc = state.current
        if proc is None:
            self._restart(slot)
            return
        if not proc.alive:
            self._restart(slot)
            return
        # Liveness probe: a process can survive while its event loop is
        # wedged; a short /health round trip catches that.
        try:
            status, _body = worker_request(
                proc.host, proc.port, "GET", "/health", timeout=2.0
            )
            healthy = status == 200
        except _REQUEST_ERRORS:
            healthy = False
        with self._lock:
            state.probe_failures = 0 if healthy else state.probe_failures + 1
            if not healthy:
                state.probe_failures_total += 1
            wedged = state.probe_failures >= PROBE_FAILURE_THRESHOLD
        if wedged:
            proc.kill()
            self._restart(slot)

    def _restart(self, slot: str) -> None:
        """Replace a dead worker and replay its datasets (in place).

        The slot is marked not-running for the whole restart (queries
        racing it get 503 from the proxy), and only flips back to
        running once every manifest entry it owns has been replayed —
        a half-replayed worker must not serve 404s for datasets it is
        about to re-register.
        """
        if self._stop.is_set():
            return
        with self._lock:
            state = self._states[slot]
            old = state.current
            state.current = None  # status(): running=False from here on
            state.probe_failures = 0
        if old is not None:
            old.kill()
        proc = self._spawn(slot)
        replay_errors = self._replay(slot, proc)
        with self._lock:
            self._pending.discard(proc)
            if self._stop.is_set():
                # stop() raced this restart: its kill sweep ran off the
                # pre-restart process list, so this fresh worker must
                # not be adopted (it would outlive the router).
                adopt = False
            else:
                adopt = True
                state.current = proc
                state.generation = proc.generation
                state.restarts += 1
                state.replay_errors += replay_errors
                self.restarts_total += 1
        if not adopt:
            proc.kill()

    def replay_entry(
        self, host: str, port: int, entry: "ManifestEntry"
    ) -> Tuple[int, Optional[str]]:
        """Replay one manifest entry onto a worker: seed, then events.

        The seed registration goes first (``replace=True``, idempotent);
        every recorded event batch follows in append order, so the
        worker re-derives the exact epoch and point set that was being
        served.  Returns ``(errors, last_error_message)`` — a failed
        seed short-circuits (appending onto a missing dataset would
        404), a failed batch does not (later batches are independent
        points; replaying what can be replayed beats stopping).
        Successfully replayed batches count into
        :attr:`replayed_event_batches_total`.
        """
        payload = dict(entry.payload, replace=True)
        try:
            status, body = worker_request(
                host, port, "POST", "/datasets", payload, timeout=120.0
            )
        except _REQUEST_ERRORS as exc:
            status, body = 0, str(exc).encode()
        if status != 201:
            return 1, (
                f"replay of dataset {entry.name!r} failed: "
                f"HTTP {status} {body[:200]!r}"
            )
        errors = 0
        last_error: Optional[str] = None
        path = f"/datasets/{quote(entry.name, safe='')}/events"
        for batch in entry.events:
            try:
                status, body = worker_request(
                    host, port, "POST", path, timeout=120.0,
                    raw_body=batch.encode("utf-8"),
                )
            except _REQUEST_ERRORS as exc:
                status, body = 0, str(exc).encode()
            if status != 200:
                errors += 1
                last_error = (
                    f"event replay for dataset {entry.name!r} failed: "
                    f"HTTP {status} {body[:200]!r}"
                )
            else:
                with self._lock:
                    self.replayed_event_batches_total += 1
        return errors, last_error

    def _replay(self, slot: str, proc: _WorkerProcess) -> int:
        """Restore every dataset the manifest assigns to ``slot``."""
        errors = 0
        for entry in self.manifest.owned_by(slot):
            entry_errors, last_error = self.replay_entry(
                proc.host, proc.port, entry
            )
            if entry_errors:
                errors += entry_errors
                with self._lock:
                    self._states[slot].last_error = last_error
        return errors

    # ------------------------------------------------------------------
    def stop(self, graceful: bool = True, timeout: float = 10.0) -> None:
        """Stop supervising, drain the fleet, kill stragglers (idempotent)."""
        self._stop.set()
        if self._supervisor is not None and self._supervisor.is_alive():
            self._supervisor.join(self.probe_interval * 4 + 2.0)
        with self._lock:
            procs = [s.current for s in self._states.values() if s.current]
            for state in self._states.values():
                state.current = None
        if graceful:
            # Fan the shutdown out first — every worker starts draining
            # its in-flight streams concurrently — then wait for exits.
            for proc in procs:
                if proc.alive and proc.port is not None:
                    try:
                        worker_request(
                            proc.host, proc.port, "POST", "/shutdown", timeout=2.0
                        )
                    except _REQUEST_ERRORS:
                        pass
            deadline = time.monotonic() + timeout
            for proc in procs:
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    proc.process.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    pass
        for proc in procs:
            proc.kill()
        # Second sweep: a restart racing this stop may have adopted a
        # fresh process after the list above was snapshotted, or still
        # be parked in boot/replay with the process only in _pending.
        with self._lock:
            stragglers = [s.current for s in self._states.values() if s.current]
            for state in self._states.values():
                state.current = None
            stragglers.extend(self._pending)
            self._pending.clear()
        for proc in stragglers:
            proc.kill()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Supervision-side counters for the router's ``/stats``."""
        out: Dict[str, Any] = {}
        for status in self.statuses():
            with self._lock:
                state = self._states[status.slot]
                last_error = state.last_error
                replay_errors = state.replay_errors
                probe_failures_total = state.probe_failures_total
            out[status.slot] = {
                "alive": status.running,
                "generation": status.generation,
                "restarts": status.restarts,
                "replay_errors": replay_errors,
                "probe_failures_total": probe_failures_total,
                "pid": status.pid,
                "address": (
                    f"{status.host}:{status.port}" if status.port else None
                ),
                "backends": list(status.backends) if status.backends else None,
                "last_error": last_error,
            }
        return out
