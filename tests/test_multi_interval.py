"""Tests for the multi-interval lifespan extension (footnote 1)."""

import numpy as np
import pytest

from repro import IntervalSet, ValidationError
from repro.baselines.brute_multi import brute_multi_triangles
from repro.core.multi import MultiIntervalTriangleFinder, as_interval_sets


def random_multi(n=40, seed=0, max_pieces=3, horizon=40):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 4, size=(n, 2))
    sets = []
    for _ in range(n):
        k = int(rng.integers(1, max_pieces + 1))
        spans = []
        for _ in range(k):
            s = float(rng.integers(0, horizon))
            spans.append((s, s + float(rng.integers(1, 12))))
        sets.append(IntervalSet(spans))
    return pts, sets


class TestWindowSemantics:
    @pytest.mark.parametrize("seed", range(5))
    def test_sandwich(self, seed):
        eps = 0.5
        tau = 3.0
        pts, sets = random_multi(seed=seed)
        finder = MultiIntervalTriangleFinder(pts, sets, epsilon=eps)
        got = {r.key for r in finder.query(tau)}
        must = brute_multi_triangles(pts, sets, tau, "window", threshold=1.0)
        may = brute_multi_triangles(
            pts, sets, tau, "window", threshold=1.0 + eps + 1e-6
        )
        assert must <= got <= may

    def test_windows_are_genuine(self):
        pts, sets = random_multi(seed=9)
        finder = MultiIntervalTriangleFinder(pts, sets, epsilon=0.5)
        for rec in finder.query(3.0):
            a, b, c = rec.members
            assert rec.durability >= 3.0
            # The reported window must actually be a common window.
            inter = sets[a].intersect(sets[b]).intersect(sets[c])
            assert inter.contains_point(rec.window.start)
            assert inter.contains_point(rec.window.end)
            assert rec.durability <= finder.window_durability(a, b, c) + 1e-9

    def test_owner_triples_unique(self):
        pts, sets = random_multi(seed=11)
        finder = MultiIntervalTriangleFinder(pts, sets, epsilon=0.5)
        keys = [r.key for r in finder.query(2.0)]
        assert len(keys) == len(set(keys))

    def test_no_self_piece_triangles(self):
        # One point with three pieces next to one neighbour: no triangle
        # can involve two pieces of the same owner.
        pts = np.array([[0.0, 0.0], [0.5, 0.0]])
        sets = [IntervalSet([(0, 5), (10, 15), (20, 25)]), IntervalSet([(0, 25)])]
        finder = MultiIntervalTriangleFinder(pts, sets, epsilon=0.5)
        assert finder.query(1.0) == []

    def test_single_interval_degenerates_to_classic(self):
        from repro.baselines import brute_force_triangle_keys
        from repro import TemporalPointSet

        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 3, size=(35, 2))
        starts = rng.integers(0, 20, size=35).astype(float)
        ends = starts + rng.integers(1, 12, size=35)
        sets = [IntervalSet([(s, e)]) for s, e in zip(starts, ends)]
        finder = MultiIntervalTriangleFinder(pts, sets, epsilon=0.5)
        got = {r.key for r in finder.query(3.0)}
        tps = TemporalPointSet(pts, starts, ends)
        must = brute_force_triangle_keys(tps, 3.0)
        assert must <= got


class TestSemanticsDiffer:
    def test_total_exceeds_window(self):
        pts, sets = random_multi(seed=21)
        window = brute_multi_triangles(pts, sets, 4.0, "window")
        total = brute_multi_triangles(pts, sets, 4.0, "total")
        assert window <= total  # total durability ≥ max window

    def test_split_window_counts_for_total_only(self):
        pts = np.zeros((3, 2))
        # Three co-located points sharing two 3-long windows: total 6,
        # longest single window 3.
        shared = IntervalSet([(0, 3), (10, 13)])
        sets = [shared, shared, shared]
        assert brute_multi_triangles(pts, sets, 5.0, "total") == {(0, 1, 2)}
        assert brute_multi_triangles(pts, sets, 5.0, "window") == set()
        finder = MultiIntervalTriangleFinder(pts, sets)
        assert {r.key for r in finder.query(3.0)} == {(0, 1, 2)}
        assert finder.query(5.0) == []
        assert finder.total_durability(0, 1, 2) == 6.0
        assert finder.window_durability(0, 1, 2) == 3.0


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            MultiIntervalTriangleFinder(np.zeros((2, 2)), [IntervalSet([(0, 1)])])

    def test_empty_lifespan_rejected(self):
        with pytest.raises(ValidationError):
            MultiIntervalTriangleFinder(
                np.zeros((1, 2)), [IntervalSet.empty()]
            )

    def test_as_interval_sets_accepts_spans(self):
        sets = as_interval_sets([[(0, 1), (2, 3)], IntervalSet([(5, 6)])])
        assert sets[0] == IntervalSet([(0, 1), (2, 3)])
        assert sets[1] == IntervalSet([(5, 6)])

    def test_bad_semantics(self):
        with pytest.raises(ValidationError):
            brute_multi_triangles(
                np.zeros((3, 2)), [IntervalSet([(0, 1)])] * 3, 1.0, "mean"
            )

    def test_max_pieces_tracked(self):
        pts, sets = random_multi(seed=2, max_pieces=4)
        finder = MultiIntervalTriangleFinder(pts, sets)
        assert finder.max_pieces == max(len(s) for s in sets)
        assert finder.expanded.n == sum(len(s) for s in sets)
