"""Ground truth for the Appendix D pattern extensions."""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Set, Tuple

import numpy as np

from ..errors import ValidationError
from ..types import TemporalPointSet

__all__ = ["brute_cliques", "brute_paths", "brute_stars"]


def _check(m: int, tau: float) -> None:
    if m < 2:
        raise ValidationError(f"pattern size must be at least 2, got {m!r}")
    if tau <= 0:
        raise ValidationError(f"durability parameter must be positive, got {tau!r}")


def _adjacency(tps: TemporalPointSet, threshold: float) -> np.ndarray:
    n = tps.n
    adj = np.zeros((n, n), dtype=bool)
    for i in range(n):
        adj[i] = tps.metric.dists(tps.points, tps.points[i]) <= threshold
    np.fill_diagonal(adj, False)
    return adj


def _durable(tps: TemporalPointSet, members, tau: float) -> bool:
    return tps.pattern_lifespan(members).length >= tau


def brute_cliques(
    tps: TemporalPointSet, m: int, tau: float, threshold: float = 1.0
) -> Set[Tuple[int, ...]]:
    """Keys (sorted member tuples) of all τ-durable ``m``-cliques."""
    _check(m, tau)
    adj = _adjacency(tps, threshold)
    out: Set[Tuple[int, ...]] = set()
    for combo in combinations(range(tps.n), m):
        if all(adj[a, b] for a, b in combinations(combo, 2)) and _durable(
            tps, combo, tau
        ):
            out.add(tuple(combo))
    return out


def brute_paths(
    tps: TemporalPointSet, m: int, tau: float, threshold: float = 1.0
) -> Set[Tuple[int, ...]]:
    """Keys (orientation-canonical member sequences) of τ-durable paths."""
    _check(m, tau)
    adj = _adjacency(tps, threshold)
    out: Set[Tuple[int, ...]] = set()
    for combo in combinations(range(tps.n), m):
        if not _durable(tps, combo, tau):
            continue
        for perm in permutations(combo):
            if perm[0] > perm[-1]:
                continue
            if all(adj[a, b] for a, b in zip(perm, perm[1:])):
                out.add(perm)
    return out


def brute_stars(
    tps: TemporalPointSet, m: int, tau: float, threshold: float = 1.0
) -> Set[Tuple[int, ...]]:
    """Keys ``(center, *sorted leaves)`` of all τ-durable ``m``-stars."""
    _check(m, tau)
    adj = _adjacency(tps, threshold)
    out: Set[Tuple[int, ...]] = set()
    for center in range(tps.n):
        leaves_pool = [x for x in range(tps.n) if adj[center, x]]
        for combo in combinations(leaves_pool, m - 1):
            members = (center, *combo)
            if _durable(tps, members, tau):
                out.add((center, *sorted(combo)))
    return out
