"""Declarative temporal-pattern query language (the ``pattern-dsl`` kind).

The package splits along classic compiler lines:

* :mod:`repro.lang.ast` — frozen, hashable pattern nodes;
* :mod:`repro.lang.parser` — the compact JSON / text surface forms;
* :mod:`repro.lang.compiler` — lowering onto the planner's staged
  :class:`~repro.engine.planner.QueryPlan` over the existing index
  primitives;
* :mod:`repro.lang.records` — :class:`ComposedRecord`, the combinator
  result envelope.

Entry points: a :class:`~repro.engine.spec.QuerySpec` with
``kind="pattern-dsl"`` and a ``pattern`` payload (every serving surface
— engine, batch CLI, serve, router — accepts it), or
:func:`parse_pattern` for direct AST work.
"""

from .ast import (
    AllNode,
    PairsNode,
    PatternNode,
    SeqNode,
    ShapeNode,
    TrianglesNode,
)
from .parser import node_from_json, parse_pattern
from .records import ComposedRecord

__all__ = [
    "AllNode",
    "ComposedRecord",
    "PairsNode",
    "PatternNode",
    "SeqNode",
    "ShapeNode",
    "TrianglesNode",
    "node_from_json",
    "parse_pattern",
]
