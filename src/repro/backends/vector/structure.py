"""Array-backed durable-ball structure ``D`` (the ``vector`` backend).

:class:`VectorBallStructure` answers the same ``durableBallQ`` contract
as :class:`~repro.structures.durable_ball.DurableBallStructure` — same
candidate cells, same temporal/lexicographic predicate, same
``(end desc, id asc)`` member order — but from the SoA layout of
:mod:`.soa` instead of per-ball Python dominance indexes: candidate
cells come from one vectorised center-distance pass, the τ-stab is a
``np.searchsorted`` prefix per cell, and the anchor-precedence filter is
one boolean mask.  Build time is therefore the layout's few lexsorts,
not ``n`` merge-sort trees.

The returned subsets duck-type :class:`~repro.structures.durable_ball.
BallSubset` (``group`` / ``members`` / ``count`` / ``ids()`` and the
``iter_desc_by_end`` partner iterator), so every legacy consumer —
``triangles_for_anchor``, the counting and delay-guaranteed enumeration
modules, :class:`~repro.core.patterns.PatternIndex` — runs on it
unchanged.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import BackendError, ValidationError
from ...structures.decomposition import GEOMETRY_SLACK, CanonicalGroup
from ...types import TemporalPointSet
from .soa import SoALayout, VectorGridDecomposition, layout_for

__all__ = ["VectorBallStructure", "ArrayRuns", "ArrayBallSubset"]


class ArrayRuns:
    """Array-backed stand-in for a dominance-query ``RunSet``.

    Holds the qualifying members as parallel ``(ids, ends)`` arrays in
    ``(end desc, id asc)`` order — exactly the order
    ``RunSet.iter_desc_by_end`` yields.
    """

    __slots__ = ("_ids", "_ends")

    def __init__(self, ids: np.ndarray, ends: np.ndarray) -> None:
        self._ids = ids
        self._ends = ends

    @property
    def count(self) -> int:
        return len(self._ids)

    @property
    def is_empty(self) -> bool:
        return len(self._ids) == 0

    def ids(self) -> List[int]:
        return self._ids.tolist()

    def first_ids(self, k: int) -> List[int]:
        return self._ids[:k].tolist()

    def iter_desc_by_end(self) -> Iterator[Tuple[float, int]]:
        for e, i in zip(self._ends, self._ids):
            yield float(e), int(i)


class ArrayBallSubset:
    """One canonical subset ``C_{p,j}`` over array-backed members."""

    __slots__ = ("group", "members")

    def __init__(self, group: CanonicalGroup, members: ArrayRuns) -> None:
        self.group = group
        self.members = members

    @property
    def count(self) -> int:
        return self.members.count

    def ids(self) -> List[int]:
        return self.members.ids()


class VectorBallStructure:
    """``D`` over a SoA layout: decomposition geometry + array sweeps.

    Mirrors the :class:`DurableBallStructure` surface the solvers use
    (``tps`` / ``resolution`` / ``decomposition`` / ``groups`` /
    ``group_index_of`` / ``query`` / ``linked`` / ``extended``).  The
    canonical-group objects are materialised lazily — the batched query
    kernels of :mod:`.indexes` never touch them, so a pure
    triangles/pairs build pays only for the arrays.
    """

    def __init__(
        self,
        tps: TemporalPointSet,
        resolution: float,
        layout: Optional[SoALayout] = None,
    ) -> None:
        if resolution <= 0:
            raise ValidationError(f"resolution must be positive, got {resolution!r}")
        if not tps.metric.supports_grid:
            raise BackendError(
                f"the vector backend requires an lp metric, got {tps.metric.name!r}"
            )
        self.tps = tps
        self.resolution = float(resolution)
        side = tps.metric.cell_side_for_diameter(2.0 * resolution, tps.dim)
        self.layout = layout if layout is not None else layout_for(tps, side)
        self._decomposition: Optional[VectorGridDecomposition] = None

    # ------------------------------------------------------------------
    @property
    def decomposition(self) -> VectorGridDecomposition:
        if self._decomposition is None:
            self._decomposition = VectorGridDecomposition(
                self.layout.points,
                self.tps.metric,
                self.resolution,
                _layout=self.layout,
            )
        return self._decomposition

    @property
    def groups(self) -> Sequence[CanonicalGroup]:
        return self.decomposition.groups

    def group_index_of(self, point_id: int) -> int:
        return int(self.layout.cell_of[point_id])

    # ------------------------------------------------------------------
    def candidate_cells(self, anchor: int, radius: float) -> np.ndarray:
        """Cell indices whose center is within ``radius + resolution``."""
        lay = self.layout
        d = self.tps.metric.dists(lay.centers, lay.points[anchor])
        return np.nonzero(d <= radius + self.resolution + GEOMETRY_SLACK)[0]

    def query(
        self,
        anchor: int,
        tau: float,
        radius: float = 1.0,
        min_end: Optional[float] = None,
    ) -> List[ArrayBallSubset]:
        """``durableBallQ(p, τ, ·)`` — non-empty subsets in cell order."""
        lay = self.layout
        sp = float(lay.starts[anchor])
        threshold = sp + tau if min_end is None else max(sp + tau, min_end)
        groups = self.decomposition.groups
        out: List[ArrayBallSubset] = []
        for gi in self.candidate_cells(anchor, radius):
            ids, ends = lay.partners(int(gi), int(anchor), sp, threshold)
            if len(ids):
                out.append(ArrayBallSubset(groups[int(gi)], ArrayRuns(ids, ends)))
        return out

    # ------------------------------------------------------------------
    def linked(
        self, a: CanonicalGroup, b: CanonicalGroup, threshold: float = 1.0
    ) -> bool:
        """Pairing test of Algorithm 1 (same arithmetic as the legacy D)."""
        d = self.tps.metric.dist(a.rep, b.rep)
        return d <= threshold + a.radius_bound + b.radius_bound + GEOMETRY_SLACK

    # ------------------------------------------------------------------
    def extended(self, tps: TemporalPointSet) -> "VectorBallStructure":
        """A structure over ``tps`` (this dataset plus appended points).

        The layout recompute is itself vectorised (array concatenation
        is implicit: the merged set's arrays are bucketed in one pass,
        producing the canonical sorted-cell order a fresh build yields),
        so maintenance is cheap and the result is *identical* to a fresh
        build — per-cell derived structures for unchanged cells are
        carried over by the index classes (see
        :func:`~repro.backends.vector.indexes.transfer_cell_cache`).
        """
        n_old = self.tps.n
        if tps.n <= n_old:
            raise ValidationError(
                f"extension target has {tps.n} points, need more than {n_old}"
            )
        return VectorBallStructure(tps, self.resolution)
