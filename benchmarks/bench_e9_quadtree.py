"""E9 — Remark 1 / Theorem D.1: the quadtree backend for ℓ_α metrics.

Under ``ℓ_α`` the cover tree can be replaced by a one-level grid
decomposition with the same guarantees; this ablation compares the two
backends on identical workloads (build + query).
"""

import pytest

from repro import DurableTriangleIndex

from helpers import TAU, triangle_index, workload

N = 800


@pytest.mark.parametrize("backend", ["cover-tree", "grid"])
@pytest.mark.parametrize("metric", ["l2", "l1"])
def test_backend_query(benchmark, backend, metric):
    idx = triangle_index(N, backend=backend, metric=metric)
    result = benchmark.pedantic(idx.query, args=(TAU,), rounds=3, iterations=1)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["metric"] = metric
    benchmark.extra_info["out"] = len(result)
    benchmark.group = f"E9 backend query ({metric}, n=800)"


@pytest.mark.parametrize("backend", ["cover-tree", "grid"])
def test_backend_build(benchmark, backend):
    tps = workload(N)
    benchmark.pedantic(
        lambda: DurableTriangleIndex(tps, epsilon=0.5, backend=backend),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["backend"] = backend
    benchmark.group = "E9 backend build (l2, n=800)"
