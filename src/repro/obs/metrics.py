"""Stdlib-only metrics core: instruments, registry, text exposition.

The serving tiers need one measurement path that production scrapes,
the benches diff, and the CI gates assert against — re-deriving
timings ad hoc in each consumer is how the numbers drift apart.  This
module is that path: :class:`Counter`, :class:`Gauge` and
:class:`Histogram` instruments with label sets, collected by a
:class:`MetricsRegistry` and rendered in the Prometheus text
exposition format (version 0.0.4) by :func:`render_families`.

Two instrument styles cover everything the system measures:

* **event-driven** — the code path that observes the event calls
  ``counter.labels(dataset="x").inc()`` or ``histogram.observe(dt)``;
  used for request/latency/error accounting where the event is the
  only witness;
* **callback** — the instrument holds a function returning
  ``[(labels, value), ...]`` evaluated at scrape time; used for values
  the system already tracks (queue depth, cache counters, resident
  indexes, worker liveness), so scraping never duplicates state.

Every registered family renders its ``# HELP``/``# TYPE`` header even
while it has no samples yet, so the set of family names in a scrape is
stable from boot — the property the docs-sync CI check and the bench
differs rely on.

Thread-safety: instruments take a lock per update; collection
snapshots under the same lock.  Callbacks run on the scraping thread
and must read thread-safe state (plain int/float attribute reads are).
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "CallbackMetric",
    "Family",
    "Sample",
    "MetricsRegistry",
    "render_families",
    "format_value",
    "escape_label_value",
    "DEFAULT_LATENCY_BUCKETS",
    "CONTENT_TYPE",
]

#: The Content-Type a ``/metrics`` response declares.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Request/query latency buckets (seconds): sub-millisecond index hits
#: through multi-second cold builds.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Sample(Tuple[str, Tuple[Tuple[str, str], ...], float]):
    """One exposition line: ``(name, ((label, value), ...), value)``."""

    __slots__ = ()

    def __new__(cls, name: str, labels: Dict[str, str], value: float):
        return super().__new__(cls, (name, tuple(sorted(labels.items())), value))

    @property
    def name(self) -> str:
        return self[0]

    @property
    def labels(self) -> Dict[str, str]:
        return dict(self[1])

    @property
    def value(self) -> float:
        return self[2]


class Family:
    """One metric family: name, type, help and its current samples."""

    def __init__(
        self, name: str, type_: str, help_: str,
        samples: Optional[List[Sample]] = None,
    ) -> None:
        self.name = name
        self.type = type_
        self.help = help_
        self.samples: List[Sample] = samples if samples is not None else []


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (``\\``, ``"``, LF)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value: integral floats without the trailing ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _validate_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _validate_labelnames(labelnames: Sequence[str], reserved: Tuple[str, ...]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_NAME_RE.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name {label!r}")
        if label in reserved:
            raise ValueError(f"label name {label!r} is reserved")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names!r}")
    return names


class _LabelledMetric:
    """Shared machinery: a child per label-value tuple, lazily created."""

    type: str = "untyped"
    _reserved_labels: Tuple[str, ...] = ()

    def __init__(self, name: str, help_: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _validate_name(name)
        self.help = help_
        self.labelnames = _validate_labelnames(labelnames, self._reserved_labels)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labelvalues: str):
        """The child instrument for one concrete label-value set."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames!r}, "
                f"got {tuple(labelvalues)!r}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _make_child(self):
        raise NotImplementedError

    def _default_child(self):
        """The label-less child (instruments declared without labels)."""
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames!r}; call .labels() first"
            )
        return self.labels()

    def _items(self) -> List[Tuple[Dict[str, str], Any]]:
        with self._lock:
            return [
                (dict(zip(self.labelnames, key)), child)
                for key, child in self._children.items()
            ]

    def collect(self) -> Family:
        family = Family(self.name, self.type, self.help)
        for labels, child in self._items():
            child.emit(self.name, labels, family.samples)
        return family


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount!r})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def emit(self, name: str, labels: Dict[str, str], out: List[Sample]) -> None:
        out.append(Sample(name, labels, self.value))


class Counter(_LabelledMetric):
    """Monotonically increasing total (requests, errors, bytes…)."""

    type = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def emit(self, name: str, labels: Dict[str, str], out: List[Sample]) -> None:
        out.append(Sample(name, labels, self.value))


class Gauge(_LabelledMetric):
    """A value that can go up and down (queue depth, resident indexes…)."""

    type = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def emit(self, name: str, labels: Dict[str, str], out: List[Sample]) -> None:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            sum_ = self._sum
        cumulative = 0
        for bound, count in zip(self._bounds, counts):
            cumulative += count
            out.append(
                Sample(f"{name}_bucket", dict(labels, le=format_value(bound)),
                       cumulative)
            )
        out.append(Sample(f"{name}_bucket", dict(labels, le="+Inf"), total))
        out.append(Sample(f"{name}_sum", labels, sum_))
        out.append(Sample(f"{name}_count", labels, total))


class Histogram(_LabelledMetric):
    """Cumulative-bucket distribution (latencies); Prometheus semantics."""

    type = "histogram"
    _reserved_labels = ("le",)

    def __init__(
        self,
        name: str,
        help_: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"buckets must be sorted and distinct, got {buckets!r}")
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


class CallbackMetric:
    """A family whose samples are computed at scrape time.

    ``fn`` returns ``[(labels_dict, value), ...]``; it runs on the
    scraping thread, so it must only read state that is safe to read
    concurrently (plain attribute reads of ints/floats are).
    """

    def __init__(
        self,
        name: str,
        type_: str,
        help_: str,
        fn: Callable[[], Iterable[Tuple[Dict[str, str], float]]],
    ) -> None:
        if type_ not in ("counter", "gauge"):
            raise ValueError(f"callback metrics are counter or gauge, not {type_!r}")
        self.name = _validate_name(name)
        self.type = type_
        self.help = help_
        self._fn = fn

    def collect(self) -> Family:
        family = Family(self.name, self.type, self.help)
        for labels, value in self._fn():
            family.samples.append(Sample(self.name, dict(labels), float(value)))
        return family


class MetricsRegistry:
    """A named set of instruments, collected and rendered together.

    Each front-end process owns one registry (``AsyncApp.metrics``);
    nothing here is process-global, so tests can run several servers in
    one interpreter without their scrapes bleeding into each other.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    # -- construction helpers ------------------------------------------
    def register(self, metric):
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(f"metric {metric.name!r} is already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_: str, labelnames: Sequence[str] = ()) -> Counter:
        return self.register(Counter(name, help_, labelnames))

    def gauge(self, name: str, help_: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self.register(Gauge(name, help_, labelnames))

    def histogram(
        self,
        name: str,
        help_: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self.register(Histogram(name, help_, labelnames, buckets))

    def callback(
        self,
        name: str,
        type_: str,
        help_: str,
        fn: Callable[[], Iterable[Tuple[Dict[str, str], float]]],
    ) -> CallbackMetric:
        return self.register(CallbackMetric(name, type_, help_, fn))

    # -- collection ----------------------------------------------------
    def collect(self) -> List[Family]:
        """Every family, sorted by name (deterministic scrapes)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted((m.collect() for m in metrics), key=lambda f: f.name)

    def render(self) -> str:
        return render_families(self.collect())


def render_families(families: Iterable[Family]) -> str:
    """Render families in Prometheus text exposition format 0.0.4.

    ``HELP`` and ``TYPE`` lines precede every family's samples — even
    for families with no samples yet, so a scrape's name set is stable
    from process boot.
    """
    lines: List[str] = []
    for family in families:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for sample in family.samples:
            if sample[1]:
                label_text = ",".join(
                    f'{label}="{escape_label_value(value)}"'
                    for label, value in sample[1]
                )
                lines.append(f"{sample.name}{{{label_text}}} {format_value(sample.value)}")
            else:
                lines.append(f"{sample.name} {format_value(sample.value)}")
    return "\n".join(lines) + "\n"
