"""The cost model behind ``backend="auto"`` dispatch.

Selection is a *measured* decision, not a hardcoded rule: every
candidate backend gets an estimated wall-clock cost for the query at
hand — one index build plus one report per requested τ — and the
cheapest eligible candidate wins (exact backends, which return no
ε-extras, are preferred outright; see
:meth:`repro.backends.registry.BackendRegistry.resolve`).

The estimate is deliberately coarse::

    cost(backend) = unit · (build_coef + n_taus · query_coef)
    unit          = n · (log₂ n + 1) · max(dim, 1)

i.e. linear per-point work with the usual logarithmic factor and a
linear dimension penalty, scaled by two per-backend coefficients in
seconds per unit.  That shape cannot rank pathological inputs
perfectly, but it is monotone in everything that matters for dispatch
(input size, dimension, sweep length) and — crucially — the
coefficients are *calibratable*: ``benchmarks/bench_backends.py``
measures real build/query times per backend over several dataset
shapes, fits coefficients with :func:`fit_coefficients`, and writes
them into ``BENCH_backends.json``; :meth:`CostModel.from_bench` loads
them back.  The defaults below were produced by exactly that
procedure on the repository's synthetic workloads (n ∈ {200, 600},
dim 2, ℓ2/ℓ∞).

Everything here is a pure function of its inputs — no clocks, no
randomness — so ``auto`` resolution is deterministic for a fixed
dataset fingerprint (asserted by ``tests/test_backends.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, Mapping, Optional, Tuple

from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.spec import QuerySpec
    from ..types import TemporalPointSet

__all__ = [
    "BackendCoefficients",
    "QueryFeatures",
    "CostModel",
    "DEFAULT_COEFFICIENTS",
    "fit_coefficients",
]


@dataclass(frozen=True)
class BackendCoefficients:
    """Per-backend cost coefficients, in seconds per cost unit.

    ``build`` prices one preprocessing pass, ``query`` one report (one
    τ).  Fitted by :func:`fit_coefficients`.
    """

    build: float
    query: float

    def as_dict(self) -> Dict[str, float]:
        return {"build": self.build, "query": self.query}


#: Calibrated via ``benchmarks/bench_backends.py`` (see module
#: docstring).  The relative ordering is what matters: the grid builds
#: ~4–5× faster than the cover tree on ℓ_α inputs and answers candidate
#: queries with one vectorised pass, while the exact ℓ∞ range tree is
#: the costliest build but the cheapest (and only exact) reporter.  The
#: ``vector`` row is from the n=5000 calibration run behind
#: ``BENCH_backends.json``: its SoA queries run ~3–17× below the grid's
#: (query 1.5e-06 is the fitted value) and its build is a handful of
#: lexsorts — priced here at the measured *cold* first build (the bench
#: itself reports near-zero because the layout is cached per dataset
#: fingerprint).
DEFAULT_COEFFICIENTS: Mapping[str, BackendCoefficients] = {
    "cover-tree": BackendCoefficients(build=2.6e-06, query=1.1e-05),
    "grid": BackendCoefficients(build=5.5e-07, query=7.5e-06),
    "linf-exact": BackendCoefficients(build=5.0e-06, query=6.0e-06),
    "vector": BackendCoefficients(build=1.1e-07, query=1.5e-06),
}

#: Used for backends the model has no coefficients for (e.g. a freshly
#: registered custom backend before calibration): priced like a generic
#: tree structure so it neither always wins nor always loses.
FALLBACK_COEFFICIENTS = BackendCoefficients(build=3.0e-06, query=1.2e-05)


@dataclass(frozen=True)
class QueryFeatures:
    """The dataset/query shape the cost model scores against."""

    n: int
    dim: int
    metric: str
    n_taus: int = 1

    @classmethod
    def of(
        cls, tps: "TemporalPointSet", spec: Optional["QuerySpec"] = None
    ) -> "QueryFeatures":
        return cls(
            n=int(tps.n),
            dim=int(tps.dim),
            metric=tps.metric.name,
            n_taus=len(spec.taus) if spec is not None else 1,
        )

    @property
    def unit(self) -> float:
        """``n · (log₂ n + 1) · max(dim, 1)`` — the model's work unit."""
        n = max(int(self.n), 1)
        return n * (math.log2(n) + 1.0) * max(int(self.dim), 1)


class CostModel:
    """Score backends against a query shape (pure, deterministic).

    Parameters
    ----------
    coefficients:
        ``name -> BackendCoefficients`` (or ``{"build": .., "query": ..}``
        mappings).  Missing names fall back to
        :data:`FALLBACK_COEFFICIENTS`; passing ``None`` uses the
        calibrated :data:`DEFAULT_COEFFICIENTS`.
    """

    def __init__(
        self,
        coefficients: Optional[Mapping[str, Any]] = None,
    ) -> None:
        source = DEFAULT_COEFFICIENTS if coefficients is None else coefficients
        self.coefficients: Dict[str, BackendCoefficients] = {
            name: self._coerce(name, c) for name, c in source.items()
        }

    @staticmethod
    def _coerce(name: str, value: Any) -> BackendCoefficients:
        if isinstance(value, BackendCoefficients):
            return value
        try:
            return BackendCoefficients(
                build=float(value["build"]), query=float(value["query"])
            )
        except (TypeError, KeyError, ValueError) as exc:
            raise ValidationError(
                f"cost coefficients for backend {name!r} must provide "
                f"numeric 'build' and 'query' entries, got {value!r}"
            ) from exc

    # ------------------------------------------------------------------
    def estimate(self, backend: str, features: QueryFeatures) -> float:
        """Estimated seconds for one build plus ``n_taus`` reports."""
        coef = self.coefficients.get(backend, FALLBACK_COEFFICIENTS)
        return features.unit * (coef.build + features.n_taus * coef.query)

    def placement_weight(
        self,
        features: QueryFeatures,
        backend_names: Optional[Iterable[str]] = None,
    ) -> float:
        """Rendezvous weight of one worker for one dataset shape.

        The routing tier places each dataset on a worker by weighted
        rendezvous hashing; this is the weight: the reciprocal of the
        cheapest estimated cost any backend the worker *hosts* could
        serve the shape at (``backend_names=None`` means the worker
        hosts everything this model knows about).  Faster workers —
        i.e. workers advertising a backend that is cheap for this
        shape — therefore attract proportionally more datasets, while
        staying a pure, deterministic function of ``(shape, backends)``
        so placement survives router restarts unchanged.
        """
        names = list(backend_names) if backend_names is not None else list(
            self.coefficients
        )
        if not names:
            # A worker advertising nothing is still placeable (the cost
            # model may simply not know its backends): fallback pricing.
            return 1.0 / max(
                features.unit
                * (FALLBACK_COEFFICIENTS.build + FALLBACK_COEFFICIENTS.query),
                1e-12,
            )
        best = min(self.estimate(name, features) for name in names)
        return 1.0 / max(best, 1e-12)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: c.as_dict() for name, c in self.coefficients.items()}

    # ------------------------------------------------------------------
    @classmethod
    def from_bench(cls, payload: Mapping[str, Any]) -> "CostModel":
        """Rebuild a model from a ``BENCH_backends.json`` document.

        Prefers the pre-fitted ``coefficients`` block; falls back to
        refitting from the raw ``measurements`` when absent.
        """
        if "coefficients" in payload:
            return cls(payload["coefficients"])
        if "measurements" in payload:
            return cls(fit_coefficients(payload["measurements"]))
        raise ValidationError(
            "bench payload has neither 'coefficients' nor 'measurements'"
        )


def fit_coefficients(
    measurements: Iterable[Mapping[str, Any]],
) -> Dict[str, BackendCoefficients]:
    """Least-effort calibration: average observed seconds-per-unit.

    Each measurement is ``{"backend", "n", "dim", "n_taus",
    "build_seconds", "query_seconds"}`` (the rows
    ``benchmarks/bench_backends.py`` emits).  With the model linear in
    the work unit, the per-row coefficient is just ``seconds / unit``;
    averaging across shapes smooths constant-factor noise.
    """
    sums: Dict[str, Tuple[float, float, int]] = {}
    for row in measurements:
        features = QueryFeatures(
            n=int(row["n"]),
            dim=int(row["dim"]),
            metric=str(row.get("metric", "")),
            n_taus=int(row.get("n_taus", 1)),
        )
        unit = features.unit
        b = float(row["build_seconds"]) / unit
        q = float(row["query_seconds"]) / (unit * max(features.n_taus, 1))
        prev_b, prev_q, count = sums.get(str(row["backend"]), (0.0, 0.0, 0))
        sums[str(row["backend"])] = (prev_b + b, prev_q + q, count + 1)
    if not sums:
        raise ValidationError("cannot fit cost coefficients from zero measurements")
    return {
        name: BackendCoefficients(build=b / count, query=q / count)
        for name, (b, q, count) in sums.items()
    }
