"""Structure-of-arrays snapshots and grid-cell layouts (the ``vector`` backend).

The legacy backends walk per-point object graphs; the vector backend
flattens everything the solvers touch into contiguous numpy arrays once
per ``(dataset fingerprint, cell side)`` and answers every query with
batched kernels over that layout:

* :class:`SoALayout` — the SoA snapshot of a
  :class:`~repro.types.TemporalPointSet`: ``(n, d)`` float64 coords,
  ``(n,)`` start/end arrays, plus a CSR grid-cell layout built with
  ``np.floor`` / ``np.lexsort`` / ``np.unique`` (cells in lexicographic
  key order — the exact order a fresh
  :class:`~repro.quadtree.tree.GridDecomposition` sorts its cells in).
  Within each cell two permutations are kept: member-id ascending (the
  canonical ``member_ids`` order) and ``(end desc, id asc)`` (the
  partner-enumeration order of ``RunSet.iter_desc_by_end``), the latter
  with a contiguous sorted-endpoint array so τ-stabbing prefixes come
  from one ``np.searchsorted``.
* :func:`layout_for` — a small process-wide cache so the four query
  families sharing one ``(fingerprint, ε)`` build the layout once.
* :class:`VectorGridDecomposition` — a
  :class:`~repro.quadtree.tree.GridDecomposition` whose construction is
  vectorised from the layout arrays; groups, centers and ``group_of``
  are value-identical to a fresh legacy build (asserted in tests), so
  all inherited geometry (``candidate_groups``, ``extended``) applies
  unchanged.
* blocked distance kernels (:func:`pairwise_dists`,
  :func:`rowwise_dists`) reproducing the exact per-metric arithmetic of
  :mod:`repro.geometry.metrics`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from ...errors import BackendError, ValidationError
from ...geometry.metrics import Metric, get_metric
from ...quadtree.tree import GridDecomposition
from ...structures.decomposition import CanonicalGroup
from ...types import TemporalPointSet

__all__ = [
    "SoALayout",
    "layout_for",
    "VectorGridDecomposition",
    "pairwise_dists",
    "rowwise_dists",
    "ragged_arange",
]

#: Soft cap on elements of any one broadcast distance matrix; blocks are
#: sized so ``rows × cols ≤ BLOCK_ELEMS`` (× dim for the diff tensor).
BLOCK_ELEMS = 1 << 21


def ragged_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for parallel starts/counts arrays."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts) - counts
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(cum, counts)
        + np.repeat(np.asarray(starts, dtype=np.int64), counts)
    )


# ----------------------------------------------------------------------
# Distance kernels
# ----------------------------------------------------------------------
def pairwise_dists(metric: Metric, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(len(a), len(b))`` distance matrix, same arithmetic as ``metric.dists``."""
    diff = np.abs(a[:, None, :] - b[None, :, :])
    alpha = getattr(metric, "alpha", None)
    if alpha is None:  # Chebyshev
        return diff.max(axis=-1)
    if alpha == 2.0:
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    if alpha == 1.0:
        return diff.sum(axis=-1)
    return (diff**alpha).sum(axis=-1) ** (1.0 / alpha)


def rowwise_dists(metric: Metric, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Distances between corresponding rows of equal-shape ``a`` and ``b``."""
    diff = np.abs(a - b)
    alpha = getattr(metric, "alpha", None)
    if alpha is None:
        return diff.max(axis=-1)
    if alpha == 2.0:
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))
    if alpha == 1.0:
        return diff.sum(axis=-1)
    return (diff**alpha).sum(axis=-1) ** (1.0 / alpha)


# ----------------------------------------------------------------------
# Cell bucketing
# ----------------------------------------------------------------------
def _bucket_cells(
    pts: np.ndarray, side: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(cell_keys, cell_of, offsets, order_id)`` for a point array.

    ``cell_keys`` rows ascend lexicographically (``np.unique``'s row
    order — identical to the ``sorted(cells)`` order of the legacy grid
    build), ``cell_of`` maps each point to its cell index, ``order_id``
    concatenates per-cell members in ascending id, and ``offsets`` is
    the CSR boundary array.
    """
    coords = np.floor(pts / side).astype(np.int64)
    cell_keys, cell_of = np.unique(coords, axis=0, return_inverse=True)
    cell_of = np.ascontiguousarray(cell_of.reshape(-1), dtype=np.int64)
    counts = np.bincount(cell_of, minlength=len(cell_keys))
    offsets = np.zeros(len(cell_keys) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    order_id = np.argsort(cell_of, kind="stable").astype(np.int64)
    return cell_keys, cell_of, offsets, order_id


class SoALayout:
    """SoA snapshot of one point set under one grid resolution."""

    __slots__ = (
        "points",
        "starts",
        "ends",
        "side",
        "n",
        "dim",
        "n_cells",
        "cell_keys",
        "cell_of",
        "centers",
        "counts",
        "offsets",
        "order_id",
        "order_end",
        "neg_ends_by_cell",
        "starts_by_cell",
    )

    def __init__(self, tps: TemporalPointSet, side: float) -> None:
        self.points = np.ascontiguousarray(tps.points, dtype=np.float64)
        self.starts = np.ascontiguousarray(tps.starts, dtype=np.float64)
        self.ends = np.ascontiguousarray(tps.ends, dtype=np.float64)
        self.side = float(side)
        self.n, self.dim = self.points.shape
        cell_keys, cell_of, offsets, order_id = _bucket_cells(self.points, self.side)
        self.cell_keys = cell_keys
        self.cell_of = cell_of
        self.counts = np.diff(offsets)
        self.offsets = offsets
        self.order_id = order_id
        self.n_cells = len(cell_keys)
        # Same arithmetic as the legacy grid's per-cell center.
        self.centers = (cell_keys.astype(np.float64) + 0.5) * self.side
        # Per-cell (end desc, id asc) permutation — the partner order of
        # RunSet.iter_desc_by_end — with contiguous sorted endpoints so
        # the τ-stab prefix is one searchsorted per cell.
        ids = np.arange(self.n, dtype=np.int64)
        self.order_end = np.lexsort((ids, -self.ends, cell_of)).astype(np.int64)
        self.neg_ends_by_cell = -self.ends[self.order_end]
        self.starts_by_cell = self.starts[self.order_end]

    # ------------------------------------------------------------------
    def partners(
        self, gi: int, anchor: int, sp: float, threshold: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``durableBallQ`` members of cell ``gi`` for one anchor.

        Returns ``(ids, ends)`` in ``(end desc, id asc)`` order: every
        member with ``end ≥ threshold`` and
        ``(start, id) <lex (sp, anchor)``.
        """
        lo, hi = int(self.offsets[gi]), int(self.offsets[gi + 1])
        # Ends are descending on the segment, so the τ-stab is a prefix.
        k = int(
            np.searchsorted(self.neg_ends_by_cell[lo:hi], -threshold, side="right")
        )
        if k == 0:
            return _EMPTY_IDS, _EMPTY_ENDS
        qs = self.order_end[lo : lo + k]
        ss = self.starts_by_cell[lo : lo + k]
        keep = (ss < sp) | ((ss == sp) & (qs < anchor))
        sel = qs[keep]
        return sel, -self.neg_ends_by_cell[lo : lo + k][keep]

    def cell_members(self, gi: int) -> np.ndarray:
        """Member ids of one cell, ascending."""
        return self.order_id[int(self.offsets[gi]) : int(self.offsets[gi + 1])]


_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_ENDS = np.empty(0, dtype=np.float64)


# ----------------------------------------------------------------------
# Layout cache
# ----------------------------------------------------------------------
_CACHE_LOCK = threading.Lock()
_CACHE_MAX = 8
_LAYOUT_CACHE: "OrderedDict[tuple, SoALayout]" = OrderedDict()


def layout_for(tps: TemporalPointSet, side: float) -> SoALayout:
    """The (cached) layout of a point set at one cell side.

    Keyed by ``(dataset fingerprint, side)`` — the fingerprint already
    folds coords, lifespans, metric token and ingestion epoch — so the
    four index families sharing one ``(fingerprint, ε)`` build the
    arrays once.  A tiny LRU bounds the footprint.
    """
    key = (tps.fingerprint(), float(side))
    with _CACHE_LOCK:
        cached = _LAYOUT_CACHE.get(key)
        if cached is not None:
            _LAYOUT_CACHE.move_to_end(key)
            return cached
    built = SoALayout(tps, side)
    with _CACHE_LOCK:
        _LAYOUT_CACHE[key] = built
        _LAYOUT_CACHE.move_to_end(key)
        while len(_LAYOUT_CACHE) > _CACHE_MAX:
            _LAYOUT_CACHE.popitem(last=False)
    return built


# ----------------------------------------------------------------------
# Decomposition
# ----------------------------------------------------------------------
class VectorGridDecomposition(GridDecomposition):
    """A :class:`GridDecomposition` built by array kernels.

    Groups, centers and ``group_of`` are value-identical to the legacy
    constructor's (cells in lexicographic order, members ascending,
    ``(key + 0.5) · side`` centers), so the inherited
    ``candidate_groups`` / ``linked_groups`` / ``extended`` behave
    identically — ``extended`` clones preserve this class via
    ``object.__new__(type(self))``.
    """

    def __init__(self, points, metric, resolution, _layout: Optional[SoALayout] = None):
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or len(pts) == 0:
            raise ValidationError("points must be a non-empty (n, d) array")
        m = get_metric(metric)
        if not m.supports_grid:
            raise BackendError(
                f"grid decomposition requires an lp metric, got {m.name!r}"
            )
        if resolution <= 0:
            raise ValidationError(f"resolution must be positive, got {resolution!r}")
        self.points = pts
        self.metric = m
        self.resolution = float(resolution)
        self.side = m.cell_side_for_diameter(2.0 * resolution, pts.shape[1])
        if _layout is not None:
            cell_keys, cell_of = _layout.cell_keys, _layout.cell_of
            offsets, order_id = _layout.offsets, _layout.order_id
            centers = _layout.centers
        else:
            cell_keys, cell_of, offsets, order_id = _bucket_cells(pts, self.side)
            centers = (cell_keys.astype(np.float64) + 0.5) * self.side
        self.groups = [
            CanonicalGroup(
                index=i,
                rep=centers[i],
                radius_bound=self.resolution,
                member_ids=order_id[offsets[i] : offsets[i + 1]].tolist(),
            )
            for i in range(len(cell_keys))
        ]
        self.group_of = cell_of.copy()
        self._centers = centers
