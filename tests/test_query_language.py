"""Tests for the compositional query IR + pattern DSL (ISSUE 8).

Covers: the parser (both surface syntaxes, actionable failures), the
exhaustive :class:`QuerySpec` round-trip (satellite 2), record-set
identity between every legacy kind and its DSL spelling on band-free
lattice datasets (satellite 3), staged execution through the shared
cache, composite patterns end-to-end through a live 2-worker router
checked against a brute-force composition oracle, per-template serve
metrics, and the batch CLI's entry-indexed compile errors
(satellite 6).
"""

import http.client
import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.datasets import workload_from_spec
from repro.engine import IndexKey, QueryEngine, QuerySpec, plan_query
from repro.errors import ValidationError
from repro.lang import (
    ComposedRecord,
    PairsNode,
    ShapeNode,
    TrianglesNode,
    node_from_json,
    parse_pattern,
)
from repro.router import start_router_thread
from repro.temporal.interval import intersect_many

from conftest import random_tps
from test_backends import PARITY_EPS, PARITY_KAPPA, lattice_tps


# ----------------------------------------------------------------------
# Parser: both surface syntaxes, one AST
# ----------------------------------------------------------------------
class TestParser:
    def test_text_and_json_forms_agree(self):
        text = "seq(pairs(agg=sum), triangles(), gap=[0, 5], tau=3)"
        as_json = {
            "seq": [{"pairs": {"agg": "sum"}}, {"triangles": {}}],
            "gap": [0, 5],
            "tau": 3,
        }
        assert parse_pattern(text) == parse_pattern(as_json)
        # ... and a JSON string is the JSON form.
        assert parse_pattern(json.dumps(as_json)) == parse_pattern(as_json)

    def test_parse_is_idempotent_on_nodes(self):
        node = parse_pattern("all(clique(m=4), pairs(agg=union, kappa=8))")
        assert parse_pattern(node) is node

    def test_to_json_round_trips(self):
        node = parse_pattern(
            "seq(triangles(exact=false), star(m=4, dur=[1, 9]), "
            "pairs(agg=union, kappa=2, tau=5), gap=[1, 4])"
        )
        assert node_from_json(node.to_json()) == node

    def test_defaults(self):
        assert parse_pattern("clique()") == ShapeNode(shape="clique", m=3)
        assert parse_pattern("pairs()") == PairsNode(agg="sum")
        assert parse_pattern("triangles") == TrianglesNode()  # bare head

    @pytest.mark.parametrize(
        "payload",
        [
            "frobnicate()",                      # unknown head
            {"seq": [], "all": []},              # two heads
            {},                                  # no head
            {"triangles": {}, "gap": [0, 1]},    # gap off a seq node
            "pairs(agg=union)",                  # union without kappa
            "pairs(agg=sum, kappa=3)",           # kappa off union
            "pairs(agg=max)",                    # unknown aggregate
            "seq(triangles())",                  # combinator arity
            "clique(m=1)",                       # m < 2
            "clique(m=true)",                    # non-integer m
            "triangles() junk",                  # trailing input
            "seq(pairs(), pairs(), gap=[5, 1])", # inverted bounds
            "seq(pairs(), pairs(), gap=[-1, 1])",# negative gap
            {"triangles": {}, "tau": -1},        # non-positive tau
            {"triangles": {"m": 3}},             # unknown parameter
            "",                                  # empty
            42,                                  # wrong payload type
            "seq(pairs(), pairs()",              # unbalanced parens
        ],
    )
    def test_bad_payloads_raise_validation_error(self, payload):
        with pytest.raises(ValidationError):
            parse_pattern(payload)

    def test_nodes_are_hashable(self):
        a = parse_pattern("seq(pairs(agg=sum), pairs(agg=sum), gap=[0,5])")
        b = parse_pattern(
            {"seq": [{"pairs": {"agg": "sum"}}] * 2, "gap": [0, 5]}
        )
        assert len({a, b}) == 1


# ----------------------------------------------------------------------
# Satellite 2: QuerySpec.to_dict/from_dict carries every optional field
# ----------------------------------------------------------------------
def _patterns():
    leaf = st.sampled_from(
        [
            {"triangles": {}},
            {"triangles": {"exact": True}},
            {"clique": {"m": 3}},
            {"path": {"m": 4}},
            {"star": {"m": 3}, "dur": [1, 8]},
            {"pairs": {"agg": "sum"}},
            {"pairs": {"agg": "union", "kappa": 5}, "tau": 2},
        ]
    )
    return st.recursive(
        leaf,
        lambda kids: st.builds(
            lambda parts, gap: {"seq": parts, "gap": gap}
            if gap
            else {"all": parts},
            st.lists(kids, min_size=2, max_size=3),
            st.sampled_from([None, [0, 4]]),
        ),
        max_leaves=4,
    )


@st.composite
def spec_payloads(draw):
    kind = draw(
        st.sampled_from(
            [
                "triangles",
                "cliques",
                "paths",
                "stars",
                "pairs-sum",
                "pairs-union",
                "pattern-dsl",
            ]
        )
    )
    payload = {
        "kind": kind,
        "taus": draw(
            st.lists(
                st.floats(0.25, 16.0, allow_nan=False),
                min_size=1,
                max_size=3,
            )
        ),
        "epsilon": draw(st.sampled_from([0.2, 0.5, 1.0])),
        "backend": draw(st.sampled_from(["auto", "grid", "cover-tree"])),
    }
    if draw(st.booleans()):
        payload["label"] = draw(st.text(max_size=12))
    if kind == "pairs-union":
        payload["kappa"] = draw(st.integers(1, 64))
    elif kind in ("cliques", "paths", "stars"):
        if draw(st.booleans()):
            payload["m"] = draw(st.integers(2, 6))
    elif kind == "pairs-sum":
        payload["sum_backend"] = draw(st.sampled_from(["profile", "tree"]))
    elif kind == "triangles":
        exact = draw(st.sampled_from([None, True]))
        if exact is not None:
            payload["exact"] = exact
    elif kind == "pattern-dsl":
        payload["pattern"] = draw(_patterns())
    return payload


class TestSpecRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(payload=spec_payloads())
    def test_to_dict_from_dict_is_identity_over_json(self, payload):
        spec = QuerySpec.from_dict(payload)
        wire = json.loads(json.dumps(spec.to_dict()))
        assert QuerySpec.from_dict(wire) == spec
        # A second hop is a fixed point (wire form is canonical).
        assert QuerySpec.from_dict(wire).to_dict() == spec.to_dict()

    def test_every_optional_field_survives_the_wire(self):
        specs = [
            QuerySpec(
                kind="triangles", taus=(2.0, 3.0), epsilon=0.25,
                backend="grid", exact=False, label="t",
            ),
            QuerySpec(kind="pairs-union", taus=2.0, kappa=7, label="u"),
            QuerySpec(kind="paths", taus=2.0, m=5),
            QuerySpec(kind="pairs-sum", taus=2.0, sum_backend="tree"),
            QuerySpec(
                kind="pattern-dsl", taus=2.0,
                pattern="seq(pairs(agg=sum), triangles(), gap=[0, 5])",
            ),
        ]
        for spec in specs:
            wire = json.loads(json.dumps(spec.to_dict()))
            assert QuerySpec.from_dict(wire) == spec, spec
        # Non-default optionals are present on the wire...
        assert specs[0].to_dict()["exact"] is False
        assert specs[1].to_dict()["kappa"] == 7
        assert specs[2].to_dict()["m"] == 5
        assert specs[3].to_dict()["sum_backend"] == "tree"
        assert "seq" in specs[4].to_dict()["pattern"]
        # ...and defaults are omitted (stable minimal wire form).
        minimal = QuerySpec(kind="triangles", taus=2.0).to_dict()
        assert set(minimal) == {"kind", "taus"}


# ----------------------------------------------------------------------
# Satellite 3: each legacy kind, spelled in the DSL, is record-set
# identical to the native kind (band-free lattice datasets make the
# approximate backends exactly comparable — see test_backends).
# ----------------------------------------------------------------------
LEGACY_AS_DSL = [
    (dict(kind="triangles"), "triangles()"),
    (dict(kind="cliques", m=3), "clique(m=3)"),
    (dict(kind="paths", m=3), "path(m=3)"),
    (dict(kind="stars", m=3), "star(m=3)"),
    (dict(kind="pairs-sum"), "pairs(agg=sum)"),
    (
        dict(kind="pairs-union", kappa=PARITY_KAPPA),
        f"pairs(agg=union, kappa={PARITY_KAPPA})",
    ),
]


class TestDslLegacyEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(tps=lattice_tps(), tau=st.sampled_from([1.0, 2.0, 3.0]))
    def test_primitive_roots_match_native_kinds(self, tps, tau):
        engine = QueryEngine()
        for kwargs, text in LEGACY_AS_DSL:
            native = engine.run(
                tps,
                QuerySpec(
                    taus=tau, epsilon=PARITY_EPS, backend="grid", **kwargs
                ),
            )
            dsl = engine.run(
                tps,
                QuerySpec(
                    kind="pattern-dsl", taus=tau, epsilon=PARITY_EPS,
                    backend="grid", pattern=text,
                ),
            )
            assert sorted(r.key for r in dsl.records) == sorted(
                r.key for r in native.records
            ), (kwargs, tau)
            # The DSL stage resolved to the index the native query
            # already built: shared through the cache, never rebuilt.
            assert dsl.cache_hit and dsl.stages
            assert dsl.stages[0]["cache_hit"] is True


# ----------------------------------------------------------------------
# Staged execution: per-stage timing + cache sharing
# ----------------------------------------------------------------------
class TestStagedExecution:
    def test_stage_timings_and_cache_sharing(self):
        tps = random_tps(n=40, seed=4)
        engine = QueryEngine()
        engine.run(tps, QuerySpec(kind="triangles", taus=2.0, backend="grid"))
        spec = QuerySpec(
            kind="pattern-dsl", taus=2.0, backend="grid",
            pattern="seq(triangles(), pairs(agg=sum), gap=[0, 8])",
        )
        first = engine.run(tps, spec)
        stages = {s["family"]: s for s in first.stages}
        assert set(stages) == {"triangles", "pairs-sum"}
        assert stages["triangles"]["cache_hit"] is True
        assert stages["pairs-sum"]["cache_hit"] is False
        assert not first.cache_hit  # one stage missed
        assert first.build_seconds == pytest.approx(
            sum(s["build_seconds"] for s in first.stages)
        )
        # Every stage warm now: the whole staged plan is a cache hit.
        second = engine.run(tps, spec)
        assert second.cache_hit
        assert all(s["cache_hit"] for s in second.stages)
        # The wire shape carries the stage breakdown.
        doc = second.to_dict(include_records=False)
        assert [s["stage"] for s in doc["stages"]] == ["s0", "s1"]

    def test_composed_records_serialise(self):
        tps = random_tps(n=40, seed=4)
        engine = QueryEngine()
        res = engine.run(
            tps,
            QuerySpec(
                kind="pattern-dsl", taus=2.0, backend="grid",
                pattern="seq(pairs(agg=sum), pairs(agg=sum), gap=[0, 4])",
            ),
        )
        assert res.count > 0
        rec = res.records[0]
        assert isinstance(rec, ComposedRecord)
        doc = json.loads(json.dumps(res.to_dict()))
        first = doc["results"][0]["records"][0]
        assert first["type"] == "composed" and first["template"] == "seq"
        assert [c["type"] for c in first["components"]] == ["pair", "pair"]
        assert first["durability"] == pytest.approx(rec.durability)
        assert first["members"] == sorted(rec.members)

    def test_combination_explosion_is_a_clean_error(self):
        # An unconstrained 4-way product over a dense dataset must trip
        # the MAX_COMBINATIONS guard, not grind or OOM.
        from repro.lang.compiler import MAX_COMBINATIONS  # noqa: F401

        tps = random_tps(n=120, seed=0, box=2.0)
        engine = QueryEngine()
        spec = QuerySpec(
            kind="pattern-dsl", taus=1.0, backend="grid",
            pattern="seq(pairs(), pairs(), pairs(), pairs())",
        )
        with pytest.raises(ValidationError, match="combinations"):
            engine.run(tps, spec)


# ----------------------------------------------------------------------
# Composite patterns end-to-end through the router, against a
# brute-force composition oracle
# ----------------------------------------------------------------------
DATASET_SPEC = {"workload": "uniform", "n": 48, "seed": 2}
E2E_TAU = 2.0

#: (pattern text, leaf plan: list of (spec kwargs, gap/intersection))
E2E_PATTERNS = [
    "seq(pairs(agg=sum), pairs(agg=sum), gap=[0, 3])",
    "seq(triangles(), triangles(), gap=[0, 2])",
    "all(clique(m=3), pairs(agg=union, kappa=8))",
]


def _prim_key(record):
    if hasattr(record, "ids"):
        return ("triangle", tuple(record.ids))
    if hasattr(record, "p"):
        return ("pair", record.p, record.q)
    return (record.kind, tuple(record.members))


def _wire_key(doc):
    if doc["type"] == "composed":
        return (
            doc["template"],
            tuple(_wire_key(c) for c in doc["components"]),
        )
    if doc["type"] == "pair":
        return ("pair", doc["p"], doc["q"])
    if doc["type"] == "triangle":
        return ("triangle", tuple(doc["ids"]))
    return (doc["type"], tuple(doc["members"]))


def _matches(engine, tps, tau, **kwargs):
    """(key, interval) for every native match of one primitive."""
    records = engine.run(
        tps, QuerySpec(taus=tau, backend="grid", **kwargs)
    ).records
    out = []
    for r in records:
        interval = (
            r.lifespan
            if hasattr(r, "lifespan")
            else tps.pattern_lifespan((r.p, r.q))
        )
        out.append((_prim_key(r), interval))
    return out


def _oracle_seq(parts, gap):
    combos = [((k,), iv) for k, iv in parts[0]]
    for nxt in parts[1:]:
        grown = []
        for keys, last in combos:
            for key, interval in nxt:
                delta = interval.start - last.start
                if delta < 0:
                    continue
                if gap is not None and not gap[0] <= delta <= gap[1]:
                    continue
                if key in keys:
                    continue
                grown.append((keys + (key,), interval))
        combos = grown
    return {("seq", keys) for keys, _ in combos}


def _oracle_all(parts, tau):
    out = set()
    for key_a, iv_a in parts[0]:
        for key_b, iv_b in parts[1]:
            if key_a == key_b:
                continue
            joint = intersect_many([iv_a, iv_b])
            if not joint.is_empty and joint.length >= tau:
                out.add(("all", (key_a, key_b)))
    return out


def _oracle(engine, tps, text, tau):
    if text == E2E_PATTERNS[0]:
        pair = _matches(engine, tps, tau, kind="pairs-sum")
        return _oracle_seq([pair, pair], (0.0, 3.0))
    if text == E2E_PATTERNS[1]:
        tri = _matches(engine, tps, tau, kind="triangles")
        return _oracle_seq([tri, tri], (0.0, 2.0))
    cli = _matches(engine, tps, tau, kind="cliques", m=3)
    uni = _matches(engine, tps, tau, kind="pairs-union", kappa=8)
    return _oracle_all([cli, uni], tau)


@pytest.fixture(scope="module")
def dsl_router():
    handle = start_router_thread(workers=2)
    try:
        status, body = _request_json(
            handle, "POST", "/datasets",
            {"name": "uni", "dataset": DATASET_SPEC},
        )
        assert status == 201, body
        yield handle
    finally:
        handle.stop()


def _request(handle, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=timeout)
    try:
        conn.request(
            method, path,
            body=json.dumps(body) if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _request_json(handle, method, path, body=None, timeout=60):
    status, data = _request(handle, method, path, body, timeout=timeout)
    return status, json.loads(data)


class TestCompositePatternsThroughRouter:
    @pytest.mark.parametrize("text", E2E_PATTERNS)
    def test_matches_brute_force_oracle(self, dsl_router, text):
        status, data = _request(
            dsl_router, "POST", "/query",
            {
                "dataset": "uni",
                "queries": [
                    {"kind": "pattern-dsl", "tau": E2E_TAU, "pattern": text}
                ],
            },
        )
        assert status == 200
        lines = [json.loads(l) for l in data.decode().strip().split("\n")]
        assert lines[-1]["ok"], lines[-1]
        result = next(l for l in lines if l["type"] == "result")
        # The stage breakdown rides the serve result line too (duplicate
        # leaves fold, so the two-identical-part patterns have 1 stage).
        stage_names = [s["stage"] for s in result["stages"]]
        assert stage_names == [f"s{i}" for i in range(len(stage_names))]
        assert all("cache_hit" in s and "family" in s for s in result["stages"])
        records = next(l for l in lines if l["type"] == "records")["records"]
        assert len(records) > 0
        got = {_wire_key(r) for r in records}
        assert len(got) == len(records)  # no duplicate matches
        engine = QueryEngine()
        tps = workload_from_spec(DATASET_SPEC)
        assert got == _oracle(engine, tps, text, E2E_TAU)

    def test_template_counters_in_fleet_metrics(self, dsl_router):
        from repro.obs import parse_exposition

        # At least one DSL query has been proxied by the tests above.
        status, data = _request(dsl_router, "GET", "/metrics")
        assert status == 200
        families = parse_exposition(data.decode())
        samples = families["serve_template_queries_total"].samples
        by_template = {}
        for s in samples:
            labels = dict(s.labels)
            by_template[labels["template"]] = (
                by_template.get(labels["template"], 0.0) + s.value
            )
        assert by_template.get("pattern-dsl", 0.0) >= 1.0
        assert "serve_template_query_errors_total" in families

    def test_compile_error_is_a_4xx_naming_the_entry(self, dsl_router):
        status, doc = _request_json(
            dsl_router, "POST", "/query",
            {
                "dataset": "uni",
                "queries": [
                    {"kind": "triangles", "tau": 2.0},
                    {
                        "kind": "pattern-dsl", "tau": 2.0,
                        "pattern": "pairs(agg=union)",
                    },
                ],
            },
        )
        assert status == 400
        assert "query #1" in doc["error"]
        assert "kappa" in doc["error"]


# ----------------------------------------------------------------------
# Satellite 6: batch CLI names the offending entry on compile failure
# ----------------------------------------------------------------------
def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


class TestCliSurfaces:
    def test_batch_compile_error_names_entry(self, tmp_path, capsys):
        doc = {
            "queries": [
                {"kind": "triangles", "tau": 2.0},
                {"kind": "pattern-dsl", "tau": 2.0, "pattern": "frobnicate()"},
            ]
        }
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(doc))
        code, _ = run_cli("batch", str(path), "--n", "30")
        err = capsys.readouterr().err
        assert code == 2
        assert "query #1" in err
        assert "frobnicate" in err

    def test_batch_runs_dsl_entries(self, tmp_path):
        doc = {
            "queries": [
                {"kind": "triangles", "tau": 2.0, "backend": "grid"},
                {
                    "kind": "pattern-dsl", "tau": 2.0, "backend": "grid",
                    "pattern": "seq(triangles(), triangles(), gap=[0, 4])",
                    "label": "chain",
                },
            ]
        }
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(doc))
        code, text = run_cli(
            "batch", str(path), "--n", "40", "--seed", "4", "--output", "-"
        )
        assert code == 0
        assert "pattern-dsl (chain)" in text
        # The DSL entry shared the triangle index built by entry 0.
        assert "(cache," in text.split("\n")[2]

    def test_query_command_runs_a_pattern(self):
        code, text = run_cli(
            "query", "--n", "40", "--seed", "4",
            "--pattern", "seq(pairs(agg=sum), pairs(agg=sum), gap=[0, 6])",
            "--tau", "2",
        )
        assert code == 0
        assert "pattern matches:" in text

    def test_query_command_rejects_bad_pattern(self, capsys):
        code, _ = run_cli(
            "query", "--n", "30", "--pattern", "pairs(agg=union)", "--tau", "2"
        )
        assert code == 2
        assert "kappa" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Plan-level invariants
# ----------------------------------------------------------------------
class TestPlanning:
    def test_shared_leaves_fold_into_one_stage(self):
        tps = random_tps(n=30, seed=1)
        spec = QuerySpec(
            kind="pattern-dsl", taus=2.0, backend="grid",
            pattern="seq(pairs(agg=sum), pairs(agg=sum), pairs(agg=sum))",
        )
        plan = plan_query(0, spec, tps)
        assert len(plan.stages) == 1
        assert plan.stages[0].key.family == "pairs-sum"
        assert plan.key == IndexKey(
            "pattern-dsl", tps.fingerprint(), 0.5, "dsl", ()
        )

    def test_pattern_rejected_on_legacy_kinds(self):
        with pytest.raises(ValidationError, match="only valid for pattern-dsl"):
            QuerySpec(kind="triangles", taus=2.0, pattern="triangles()")
        with pytest.raises(ValidationError, match="require a 'pattern'"):
            QuerySpec(kind="pattern-dsl", taus=2.0)

    def test_leaf_validation_surfaces_at_plan_time(self):
        # exact=True lowers to the ℓ∞ solver, which an l2 dataset must
        # reject — through the same registry path as the legacy kind.
        tps = random_tps(n=30, seed=1, metric="l2")
        spec = QuerySpec(
            kind="pattern-dsl", taus=2.0,
            pattern="seq(triangles(exact=true), pairs(agg=sum))",
        )
        with pytest.raises(Exception):
            plan_query(0, spec, tps)
