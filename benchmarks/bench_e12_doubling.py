"""E12 — the ``ε^{-O(ρ)}`` dependence on doubling dimension.

Manifold workloads share the ambient dimension (6) but differ in
intrinsic dimension 1–3; canonical-ball counts and query time should
grow with the intrinsic (not ambient) dimension — the whole point of
parameterising by ρ instead of d.
"""

import pytest

from repro import DurableTriangleIndex
from repro.geometry import doubling_dimension_estimate

from helpers import manifold_workload

N = 800
TAU = 8.0


@pytest.mark.parametrize("intrinsic", [1, 2, 3])
def test_doubling_sweep(benchmark, intrinsic):
    tps = manifold_workload(N, intrinsic, ambient=6)
    idx = DurableTriangleIndex(tps, epsilon=0.5)
    result = benchmark.pedantic(idx.query, args=(TAU,), rounds=3, iterations=1)
    rho = doubling_dimension_estimate(tps.points, n_centers=12, seed=0)
    benchmark.extra_info["intrinsic_dim"] = intrinsic
    benchmark.extra_info["rho_estimate"] = round(rho, 2)
    benchmark.extra_info["groups"] = len(idx.structure.groups)
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E12 doubling dimension sweep (ambient=6, n=800)"
