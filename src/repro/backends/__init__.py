"""First-class backend registry with cost-based ``auto`` dispatch.

The interchangeable algorithm flavours of the paper — cover-tree vs
grid spatial decompositions (Appendix A vs Remark 1), approximate vs
ℓ∞-exact triangle reporting (Section 3 vs Appendix B) — register
capability descriptors here, and every consumer (planner, spec
validation, serving layer, CLI) dispatches through one registry instead
of scattered string checks:

* :class:`~repro.backends.descriptor.BackendDescriptor` — name, query
  kinds served, metric constraint, exactness guarantee, builder and
  cache-identity hooks;
* :class:`~repro.backends.registry.BackendRegistry` — registration,
  capability lookup, and the deterministic ``backend="auto"``
  resolution (exact preferred when eligible, cheapest by cost model
  otherwise);
* :class:`~repro.backends.cost.CostModel` — the measured, calibratable
  scoring function (``benchmarks/bench_backends.py`` →
  ``BENCH_backends.json`` → :meth:`~repro.backends.cost.CostModel.
  from_bench`);
* :func:`~repro.backends.registry.default_registry` — the lazily
  created process-wide instance with the built-ins installed.
"""

from .cost import (
    DEFAULT_COEFFICIENTS,
    BackendCoefficients,
    CostModel,
    QueryFeatures,
    fit_coefficients,
)
from .descriptor import BackendDescriptor
from .registry import BackendRegistry, BackendResolution, default_registry

__all__ = [
    "BackendDescriptor",
    "BackendRegistry",
    "BackendResolution",
    "BackendCoefficients",
    "CostModel",
    "QueryFeatures",
    "DEFAULT_COEFFICIENTS",
    "fit_coefficients",
    "default_registry",
]
