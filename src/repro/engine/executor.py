"""Concurrent plan execution with per-query timing and fault isolation.

Plans run on a :class:`~concurrent.futures.ThreadPoolExecutor`; index
builds are de-duplicated by the cache's single-flight discipline, so a
batch whose queries share one index performs one build no matter how
many workers race for it.  Query paths in this library are read-only
(the indexes memoise nothing after construction), so concurrent queries
against one shared index are safe and the result of a batch is
deterministic: results come back in submission order, and each query's
records are exactly what a sequential run would produce.

A query whose builder or runner raises does not destroy the rest of the
batch: with ``raise_on_error=False`` the failure is captured into its
own :class:`~repro.engine.results.QueryResult` (``ok=False``, ``error``
set) and every other plan's result is returned intact.  The default
``raise_on_error=True`` preserves the historical contract — the first
failing plan's exception propagates — which is what the one-call
``repro.api`` helpers rely on.

Threads — not processes — are the right pool here: a process pool would
have to pickle a full index per worker, forfeiting the shared build
that is the engine's whole point.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, List, Optional, Sequence, Tuple

from .cache import IndexCache
from .planner import QueryPlan
from .results import QueryResult

__all__ = ["execute_plan", "execute_plans", "default_worker_count"]


def default_worker_count(n_plans: int) -> int:
    """Pool size: enough to cover the batch, bounded by the host CPUs."""
    cpus = os.cpu_count() or 1
    return max(1, min(n_plans, cpus))


def _execute_one(
    plan: QueryPlan, cache: IndexCache
) -> Tuple[QueryResult, Optional[BaseException]]:
    """Run one plan, capturing any failure into the result envelope.

    Returns ``(result, exception)`` — the exception object is kept
    alongside the error result so ``raise_on_error=True`` callers can
    re-raise the original, not a stringified stand-in.

    Stage-less plans (the legacy kinds) fetch/build ``plan.key`` and
    call ``runner(index, tau)``.  Staged plans (``pattern-dsl``)
    acquire every :class:`~repro.engine.planner.PlanStage` through the
    same single-flight cache — per-stage build timing lands on the
    result's ``stages`` — and call ``runner({name: index}, tau)``.
    """
    t0 = time.perf_counter()
    try:
        stage_timings: Tuple[Any, ...] = ()
        if plan.stages:
            indexes = {}
            cache_hit = True
            build_seconds = 0.0
            timings = []
            for stage in plan.stages:
                outcome = cache.get_or_build(stage.key, stage.builder)
                indexes[stage.name] = outcome.index
                stage_build = 0.0 if outcome.hit else outcome.build_seconds
                build_seconds += stage_build
                cache_hit = cache_hit and outcome.hit
                timings.append(
                    {
                        "stage": stage.name,
                        "family": stage.key.family,
                        "backend": stage.key.backend,
                        "cache_hit": outcome.hit,
                        "build_seconds": stage_build,
                    }
                )
            stage_timings = tuple(timings)
            target: Any = indexes
        else:
            outcome = cache.get_or_build(plan.key, plan.builder)
            cache_hit = outcome.hit
            # The outcome carries its flight's own build time, so this
            # stays correct even if the entry was LRU-evicted by a later
            # build before we got here.
            build_seconds = 0.0 if outcome.hit else outcome.build_seconds
            target = outcome.index
        records_by_tau: "OrderedDict[float, List[Any]]" = OrderedDict()
        t_query = time.perf_counter()
        for tau in plan.spec.taus:
            records_by_tau[tau] = plan.runner(target, tau)
        query_seconds = time.perf_counter() - t_query
    except Exception as exc:
        return (
            QueryResult(
                spec=plan.spec,
                key=plan.key,
                records_by_tau=OrderedDict(),
                cache_hit=False,
                build_seconds=0.0,
                query_seconds=time.perf_counter() - t0,
                error=f"{type(exc).__name__}: {exc}",
            ),
            exc,
        )
    return (
        QueryResult(
            spec=plan.spec,
            key=plan.key,
            records_by_tau=records_by_tau,
            cache_hit=cache_hit,
            build_seconds=build_seconds,
            query_seconds=query_seconds,
            stages=stage_timings,
        ),
        None,
    )


def execute_plan(
    plan: QueryPlan, cache: IndexCache, raise_on_error: bool = True
) -> QueryResult:
    """Run a single plan; capture failures when ``raise_on_error`` is off."""
    result, exc = _execute_one(plan, cache)
    if exc is not None and raise_on_error:
        raise exc
    return result


def execute_plans(
    plans: Sequence[QueryPlan],
    cache: IndexCache,
    max_workers: Optional[int] = None,
    parallel: bool = True,
    raise_on_error: bool = True,
) -> List[QueryResult]:
    """Run every plan; results are returned in submission order.

    With ``raise_on_error=False`` a failing plan yields an error-carrying
    :class:`QueryResult` (``ok=False``) and never disturbs its
    neighbours.  With the default ``True``, every plan still runs to
    completion (the pool is drained) but the first failure — in
    submission order — is re-raised afterwards.
    """
    if not plans:
        return []
    workers = max_workers if max_workers is not None else default_worker_count(len(plans))
    if not parallel or workers <= 1 or len(plans) == 1:
        pairs = [_execute_one(p, cache) for p in plans]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_execute_one, p, cache) for p in plans]
            pairs = [f.result() for f in futures]
    if raise_on_error:
        for _, exc in pairs:
            if exc is not None:
                raise exc
    return [result for result, _ in pairs]
