"""Tests for the command-line interface."""

import io
import json

import numpy as np
import pytest

from repro.cli import build_parser, load_workload, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCommands:
    def test_info(self):
        code, text = run_cli("info", "--workload", "social", "--n", "120")
        assert code == 0
        assert "doubling dim" in text and "spread" in text

    def test_triangles(self):
        code, text = run_cli("triangles", "--n", "150", "--tau", "6", "--top", "2")
        assert code == 0
        assert "durable triangles:" in text

    def test_triangles_count_only(self):
        code, text = run_cli("triangles", "--n", "150", "--tau", "6", "--count-only")
        assert code == 0
        assert "durable triangles:" in text
        assert "(" not in text.split("durable triangles:")[1]

    def test_count_matches_query(self):
        _, full = run_cli("triangles", "--n", "150", "--tau", "6")
        _, count = run_cli("triangles", "--n", "150", "--tau", "6", "--count-only")
        n_full = int(full.split("durable triangles: ")[1].split("\n")[0])
        n_count = int(count.split("durable triangles: ")[1].split("\n")[0])
        assert n_full == n_count

    def test_cliques(self):
        code, text = run_cli("cliques", "--n", "120", "--tau", "4", "--m", "3")
        assert code == 0
        assert "durable 3-cliques:" in text

    def test_pairs_sum(self):
        code, text = run_cli("pairs-sum", "--n", "120", "--tau", "6")
        assert code == 0
        assert "SUM-durable pairs:" in text

    def test_pairs_union(self):
        code, text = run_cli("pairs-union", "--n", "120", "--tau", "6", "--kappa", "2")
        assert code == 0
        assert "UNION-durable pairs:" in text

    def test_stream(self):
        code, text = run_cli("stream", "--n", "120", "--tau", "6")
        assert code == 0
        assert "streamed triangles:" in text

    def test_error_exit_code(self):
        code, _ = run_cli("triangles", "--n", "50", "--tau", "-3")
        assert code == 2


class TestWorkloadLoading:
    def test_csv_loading(self, tmp_path):
        rows = np.column_stack(
            [
                np.random.default_rng(0).uniform(0, 3, size=(30, 2)),
                np.arange(30, dtype=float),
                np.arange(30, dtype=float) + 5,
            ]
        )
        path = tmp_path / "points.csv"
        np.savetxt(path, rows, delimiter=",")
        code, text = run_cli("triangles", "--csv", str(path), "--tau", "2")
        assert code == 0
        assert "n=30" in text

    def test_csv_too_few_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        np.savetxt(path, np.zeros((5, 2)), delimiter=",")
        code, _ = run_cli("info", "--csv", str(path))
        assert code == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_named_workloads(self):
        for name, dim in [("uniform", 2), ("social", 2), ("coauthor", 6)]:
            args = build_parser().parse_args(["info", "--workload", name, "--n", "50"])
            tps = load_workload(args)
            assert tps.n == 50 and tps.dim == dim


QUERIES = [
    {"kind": "triangles", "taus": [3, 6]},
    {"kind": "triangles", "tau": 4},
    {"kind": "pairs-sum", "tau": 5},
    {"kind": "pairs-union", "tau": 5, "kappa": 2},
    {"kind": "cliques", "tau": 4, "m": 3, "label": "triads"},
]


class TestBatchCommand:
    def test_batch_list_file(self, tmp_path):
        path = tmp_path / "queries.json"
        path.write_text(json.dumps(QUERIES))
        code, text = run_cli("batch", str(path), "--n", "100")
        assert code == 0
        assert "5 queries, 4 distinct indexes" in text
        assert "(triads)" in text

    def test_batch_dataset_in_file(self, tmp_path):
        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps(
                {
                    "dataset": {"workload": "social", "n": 80, "seed": 1},
                    "queries": QUERIES,
                }
            )
        )
        code, text = run_cli("batch", str(path))
        assert code == 0
        assert "n=80" in text

    def test_batch_json_output(self, tmp_path):
        qfile = tmp_path / "queries.json"
        qfile.write_text(json.dumps(QUERIES))
        out = tmp_path / "results.json"
        code, _ = run_cli(
            "batch", str(qfile), "--n", "100", "--output", str(out)
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["distinct_indexes"] == 4
        assert len(payload["queries"]) == len(QUERIES)
        assert payload["dataset"]["n"] == 100
        sweep = payload["queries"][0]["results"]
        assert [e["tau"] for e in sweep] == [3.0, 6.0]

    def test_batch_output_to_stdout(self, tmp_path):
        qfile = tmp_path / "queries.json"
        qfile.write_text(json.dumps(QUERIES[:1]))
        code, text = run_cli(
            "batch", str(qfile), "--n", "80", "--output", "-", "--no-records"
        )
        assert code == 0
        payload = json.loads(text[text.index("{"):])
        assert "records" not in payload["queries"][0]["results"][0]

    def test_batch_matches_single_query_commands(self, tmp_path):
        qfile = tmp_path / "queries.json"
        qfile.write_text(json.dumps([{"kind": "triangles", "tau": 6}]))
        _, batch_text = run_cli("batch", str(qfile), "--n", "150", "--sequential")
        _, single_text = run_cli("triangles", "--n", "150", "--tau", "6")
        n_single = int(single_text.split("durable triangles: ")[1].split("\n")[0])
        assert f"{n_single} records" in batch_text

    def test_batch_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "queries.yaml"
        path.write_text(yaml.safe_dump({"queries": QUERIES}))
        code, text = run_cli("batch", str(path), "--n", "80")
        assert code == 0
        assert "5 queries" in text

    @pytest.mark.parametrize(
        "content",
        [
            "not json at all",
            "[]",
            '{"queries": []}',
            '{"nothing": 1}',
            '[{"kind": "bogus", "tau": 1}]',
            '[{"kind": "triangles"}]',
        ],
    )
    def test_batch_bad_files_exit_2(self, tmp_path, content):
        path = tmp_path / "queries.json"
        path.write_text(content)
        code, _ = run_cli("batch", str(path), "--n", "50")
        assert code == 2

    def test_batch_missing_file_exits_2(self):
        code, _ = run_cli("batch", "/nonexistent/queries.json")
        assert code == 2

    def test_batch_partial_failure_exits_1(self, tmp_path, monkeypatch):
        """A poisoned query is reported per-query and flips the exit code
        to 1 — the rest of the batch still completes (ISSUE 2 bugfix)."""
        import repro.engine.engine as engine_mod
        from repro.engine import QueryPlan

        real_plan_batch = engine_mod.plan_batch

        def _boom():
            raise RuntimeError("poisoned builder")

        def poisoning_plan_batch(specs, tps):
            return [
                QueryPlan(p.order, p.spec, p.key, _boom, p.runner)
                if p.spec.label == "poison" else p
                for p in real_plan_batch(specs, tps)
            ]

        monkeypatch.setattr(engine_mod, "plan_batch", poisoning_plan_batch)
        qfile = tmp_path / "queries.json"
        qfile.write_text(json.dumps([
            {"kind": "triangles", "tau": 4},
            {"kind": "triangles", "tau": 4, "epsilon": 0.99, "label": "poison"},
            {"kind": "pairs-sum", "tau": 5},
        ]))
        out = tmp_path / "results.json"
        code, text = run_cli(
            "batch", str(qfile), "--n", "80", "--output", str(out)
        )
        assert code == 1
        assert "ERROR RuntimeError: poisoned builder" in text
        assert "1 FAILED" in text
        # The two healthy queries still report records normally.
        assert text.count("records") == 2
        payload = json.loads(out.read_text())
        assert payload["ok"] is False and payload["errors"] == 1
        assert [q["ok"] for q in payload["queries"]] == [True, False, True]


class TestServeCommand:
    def test_parser_wires_serve_options(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--queue-limit", "5",
            "--dataset", 'a={"workload":"uniform","n":30}',
            "--dataset", 'b={"workload":"social","n":30}',
        ])
        assert args.command == "serve"
        assert args.port == 0 and args.queue_limit == 5
        assert len(args.dataset) == 2

    def test_bad_dataset_flag_exits_2(self):
        code, _ = run_cli("serve", "--port", "0", "--dataset", "noequalsign")
        assert code == 2
        code, _ = run_cli("serve", "--port", "0", "--dataset", "a={broken")
        assert code == 2

    def test_serve_boots_and_answers(self):
        """Boot the real server on an ephemeral port through the CLI
        path, then stop it over HTTP."""
        import http.client
        import threading
        import time

        bound = {}
        ready = threading.Event()

        def runner():
            from repro.serve import run_server

            run_server(
                port=0,
                datasets={"d": {"workload": "uniform", "n": 30}},
                announce=lambda host, port, app: (
                    bound.update(host=host, port=port), ready.set()
                ),
            )

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert ready.wait(15)
        conn = http.client.HTTPConnection(bound["host"], bound["port"], timeout=10)
        conn.request("GET", "/health")
        assert conn.getresponse().status == 200
        conn.close()
        conn = http.client.HTTPConnection(bound["host"], bound["port"], timeout=10)
        conn.request("POST", "/shutdown")
        assert conn.getresponse().status == 200
        conn.close()
        for _ in range(100):
            if not thread.is_alive():
                break
            time.sleep(0.05)
        assert not thread.is_alive()


class TestRouteCommand:
    def test_parser_accepts_route_flags(self):
        args = build_parser().parse_args(
            [
                "route", "--workers", "3", "--port", "0",
                "--worker-backends", "grid,cover-tree",
                "--worker-backends", "any",
                "--manifest", "/tmp/m.json",
                "--probe-interval", "0.3",
                "--queue-limit", "16",
            ]
        )
        assert args.command == "route" and args.workers == 3
        assert args.worker_backends == ["grid,cover-tree", "any"]

    def test_parse_worker_backends(self):
        from repro.cli import _parse_worker_backends
        from repro.errors import ValidationError

        assert _parse_worker_backends([]) is None
        assert _parse_worker_backends(["grid,cover-tree", "any", "*"]) == [
            ["grid", "cover-tree"], None, None,
        ]
        with pytest.raises(ValidationError):
            _parse_worker_backends([" , "])

    def test_too_many_backend_subsets_rejected(self):
        from repro.errors import ValidationError
        from repro.router import WorkerPool

        with pytest.raises(ValidationError, match="backend subsets"):
            WorkerPool(workers=1, worker_backends=[["grid"], ["cover-tree"]])
        with pytest.raises(ValidationError, match="at least 1 worker"):
            WorkerPool(workers=0)
