"""Tests for ITΣ and the coverage profile (ComputeSumD, Section 5.1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ValidationError
from repro.temporal import AnnotatedIntervalTree, CoverageProfile

from conftest import random_intervals


def brute_sum(ivs, a, b):
    total = 0.0
    for lo, hi in ivs:
        total += max(0.0, min(hi, b) - max(lo, a))
    return total


STRUCTS = [AnnotatedIntervalTree, CoverageProfile]


@pytest.mark.parametrize("cls", STRUCTS)
class TestComputeSumD:
    def test_empty(self, cls):
        s = cls([])
        assert s.sum_intersections(0.0, 10.0) == 0.0

    def test_single_cover(self, cls):
        s = cls([(0.0, 10.0)])
        assert s.sum_intersections(2.0, 5.0) == 3.0

    def test_single_contained(self, cls):
        s = cls([(3.0, 4.0)])
        assert s.sum_intersections(0.0, 10.0) == 1.0

    def test_single_dangling_left(self, cls):
        s = cls([(0.0, 5.0)])
        assert s.sum_intersections(3.0, 10.0) == 2.0

    def test_single_dangling_right(self, cls):
        s = cls([(5.0, 12.0)])
        assert s.sum_intersections(3.0, 10.0) == 5.0

    def test_disjoint_contributes_zero(self, cls):
        s = cls([(0.0, 1.0)])
        assert s.sum_intersections(5.0, 10.0) == 0.0

    def test_inverted_query(self, cls):
        s = cls([(0.0, 10.0)])
        assert s.sum_intersections(5.0, 3.0) == 0.0

    def test_degenerate_query(self, cls):
        s = cls([(0.0, 10.0)])
        assert s.sum_intersections(4.0, 4.0) == 0.0

    def test_rejects_inverted_interval(self, cls):
        with pytest.raises(ValidationError):
            cls([(3.0, 1.0)])

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute(self, cls, seed):
        ivs = random_intervals(90, seed=seed)
        s = cls(ivs)
        rng = np.random.default_rng(seed)
        for _ in range(40):
            a = float(rng.uniform(-10, 80))
            b = a + float(rng.uniform(0, 40))
            assert math.isclose(
                s.sum_intersections(a, b), brute_sum(ivs, a, b), abs_tol=1e-6
            )

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_random(self, cls, seed):
        ivs = random_intervals(35, seed=seed)
        s = cls(ivs)
        rng = np.random.default_rng(seed)
        a = float(rng.uniform(-5, 60))
        b = a + float(rng.uniform(0, 30))
        assert math.isclose(
            s.sum_intersections(a, b), brute_sum(ivs, a, b), abs_tol=1e-6
        )


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(4))
    def test_tree_equals_profile(self, seed):
        ivs = random_intervals(120, seed=seed + 31)
        tree = AnnotatedIntervalTree(ivs)
        prof = CoverageProfile(ivs)
        rng = np.random.default_rng(seed)
        for _ in range(50):
            a = float(rng.uniform(-10, 90))
            b = a + float(rng.uniform(0, 50))
            assert math.isclose(
                tree.sum_intersections(a, b),
                prof.sum_intersections(a, b),
                abs_tol=1e-6,
            )

    def test_monotone_in_query(self):
        ivs = random_intervals(60, seed=5)
        prof = CoverageProfile(ivs)
        prev = 0.0
        for b in np.linspace(0, 90, 30):
            cur = prof.sum_intersections(0.0, float(b))
            assert cur >= prev - 1e-9
            prev = cur
