"""SUM-durability primitives: ``ITΣ`` and the coverage profile (Section 5.1).

Both structures answer the ``ComputeSumD`` primitive of the paper: given a
query interval ``J``, return ``Σ_{I ∈ ℐ} |I ∩ J|`` over a fixed family of
intervals ``ℐ``.

* :class:`AnnotatedIntervalTree` is the paper-faithful ``ITΣ``: an
  interval tree whose nodes carry endpoint prefix sums, so a query
  decomposes into the four canonical cases of Section 5.1 (interval
  covers ``J`` / is covered / dangles left / dangles right) and costs
  ``O(log² n)``.

* :class:`CoverageProfile` is a simplification with identical output:
  since ``Σ |I ∩ J| = ∫_J c(t) dt`` where ``c`` counts intervals covering
  ``t``, we precompute the integrated step function ``F`` at every event
  point and answer ``F(J⁺) − F(J⁻)`` in ``O(log n)``.

Experiment E13 benchmarks one against the other; the tests cross-check
them against a direct sum.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from ..errors import ValidationError

__all__ = ["AnnotatedIntervalTree", "CoverageProfile"]


# ----------------------------------------------------------------------
# Prefix-sum helpers over sorted arrays
# ----------------------------------------------------------------------
class _SortedSums:
    """A sorted array with prefix sums: count/sum of entries ≤ a threshold."""

    __slots__ = ("values", "prefix")

    def __init__(self, values: Sequence[float]) -> None:
        self.values = sorted(values)
        acc = 0.0
        prefix = [0.0]
        for v in self.values:
            acc += v
            prefix.append(acc)
        self.prefix = prefix

    def __len__(self) -> int:
        return len(self.values)

    def count_le(self, t: float) -> int:
        return bisect.bisect_right(self.values, t)

    def sum_le(self, t: float) -> float:
        return self.prefix[bisect.bisect_right(self.values, t)]

    @property
    def total(self) -> float:
        return self.prefix[-1]

    def sum_min_with(self, b: float) -> float:
        """``Σ min(v, b)`` over all entries."""
        k = self.count_le(b)
        return self.prefix[k] + b * (len(self.values) - k)

    def sum_max_with(self, a: float) -> float:
        """``Σ max(v, a)`` over all entries."""
        k = self.count_le(a)
        return a * k + (self.total - self.prefix[k])


class _SumNode:
    __slots__ = (
        "center",
        "own_lefts",
        "own_rights",
        "sub_lefts",
        "sub_rights",
        "left",
        "right",
    )

    def __init__(self, center: float) -> None:
        self.center = center
        self.own_lefts: _SortedSums = _SortedSums([])
        self.own_rights: _SortedSums = _SortedSums([])
        self.sub_lefts: _SortedSums = _SortedSums([])
        self.sub_rights: _SortedSums = _SortedSums([])
        self.left: Optional["_SumNode"] = None
        self.right: Optional["_SumNode"] = None


def _build(items: List[Tuple[float, float]]) -> Optional[_SumNode]:
    if not items:
        return None
    endpoints = sorted(x for iv in items for x in iv)
    center = endpoints[len(endpoints) // 2]
    node = _SumNode(center)
    here: List[Tuple[float, float]] = []
    left_items: List[Tuple[float, float]] = []
    right_items: List[Tuple[float, float]] = []
    for lo, hi in items:
        if hi < center:
            left_items.append((lo, hi))
        elif lo > center:
            right_items.append((lo, hi))
        else:
            here.append((lo, hi))
    node.own_lefts = _SortedSums([lo for lo, _ in here])
    node.own_rights = _SortedSums([hi for _, hi in here])
    node.sub_lefts = _SortedSums([lo for lo, _ in items])
    node.sub_rights = _SortedSums([hi for _, hi in items])
    node.left = _build(left_items)
    node.right = _build(right_items)
    return node


class AnnotatedIntervalTree:
    """Paper-faithful ``ITΣ``: interval tree with endpoint prefix sums.

    ``sum_intersections(a, b)`` returns ``Σ_I |I ∩ [a, b]|`` in
    ``O(log² n)`` by decomposing the family into the four canonical cases
    of Section 5.1 along the search paths to ``a`` and ``b``, plus whole
    subtrees lying strictly between the two paths (handled through the
    per-node subtree prefix sums).
    """

    def __init__(self, intervals: Sequence[Tuple[float, float]]) -> None:
        items: List[Tuple[float, float]] = []
        for lo, hi in intervals:
            if hi < lo:
                raise ValidationError(f"interval end ({hi!r}) precedes start ({lo!r})")
            items.append((float(lo), float(hi)))
        self._n = len(items)
        self._root = _build(items)

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    def sum_intersections(self, a: float, b: float) -> float:
        """``Σ_I |I ∩ [a, b]|`` (0 when ``b ≤ a``)."""
        if b <= a:
            return 0.0
        return self._query(self._root, a, b)

    # ------------------------------------------------------------------
    @staticmethod
    def _own_straddle(node: _SumNode, a: float, b: float) -> float:
        # Every interval stored at the node contains node.center ∈ [a, b],
        # hence intersects J: Σ min(I⁺,b) − Σ max(I⁻,a).
        return node.own_rights.sum_min_with(b) - node.own_lefts.sum_max_with(a)

    @staticmethod
    def _own_left_of(node: _SumNode, a: float, b: float) -> float:
        # b < center: qualifying intervals have I⁻ ≤ b (then I⁺ ≥ center > b):
        # Σ (b − max(I⁻, a)) over the qualifying prefix of own_lefts.
        lefts = node.own_lefts
        k = lefts.count_le(b)
        if k == 0:
            return 0.0
        ka = lefts.count_le(a)  # a ≤ b so this prefix is within the first k
        sum_max = a * ka + (lefts.prefix[k] - lefts.prefix[ka])
        return b * k - sum_max

    @staticmethod
    def _own_right_of(node: _SumNode, a: float, b: float) -> float:
        # a > center: qualifying intervals have I⁺ ≥ a (then I⁻ ≤ center < a):
        # Σ (min(I⁺, b) − a) over the qualifying suffix of own_rights.
        rights = node.own_rights
        lt_a = bisect.bisect_left(rights.values, a)
        cnt = len(rights) - lt_a
        if cnt == 0:
            return 0.0
        kb = rights.count_le(b)  # ≥ lt_a because a ≤ b
        sum_min = (rights.prefix[kb] - rights.prefix[lt_a]) + b * (len(rights) - kb)
        return sum_min - a * cnt

    @staticmethod
    def _subtree_between(node: Optional[_SumNode], a: float, b: float) -> float:
        # Entire subtree lies between the search paths: every stored
        # interval contains its node's center ∈ (a, b), so all intersect.
        if node is None:
            return 0.0
        return node.sub_rights.sum_min_with(b) - node.sub_lefts.sum_max_with(a)

    def _path_to_a(self, node: Optional[_SumNode], a: float, b: float) -> float:
        # Descend toward ``a`` inside the region where centers are < the
        # split center (hence ≤ b).  Right children encountered while
        # moving left lie fully between the paths.
        total = 0.0
        while node is not None:
            if a > node.center:
                total += self._own_right_of(node, a, b)
                node = node.right
            else:
                total += self._own_straddle(node, a, b)
                total += self._subtree_between(node.right, a, b)
                node = node.left
        return total

    def _path_to_b(self, node: Optional[_SumNode], a: float, b: float) -> float:
        total = 0.0
        while node is not None:
            if b < node.center:
                total += self._own_left_of(node, a, b)
                node = node.left
            else:
                total += self._own_straddle(node, a, b)
                total += self._subtree_between(node.left, a, b)
                node = node.right
        return total

    def _query(self, node: Optional[_SumNode], a: float, b: float) -> float:
        total = 0.0
        # Walk to the split node where [a, b] straddles the center.
        while node is not None:
            if b < node.center:
                total += self._own_left_of(node, a, b)
                node = node.left
            elif a > node.center:
                total += self._own_right_of(node, a, b)
                node = node.right
            else:
                total += self._own_straddle(node, a, b)
                total += self._path_to_a(node.left, a, b)
                total += self._path_to_b(node.right, a, b)
                return total
        return total


class CoverageProfile:
    """Integrated coverage step function — the ``O(log n)`` ``ComputeSumD``.

    Build: sort the ``2n`` endpoint events; between consecutive events the
    number of covering intervals ``c`` is constant, so the integral
    ``F(t) = ∫ c`` is piecewise linear.  ``sum_intersections(a, b)``
    evaluates ``F(b) − F(a)`` with two binary searches.
    """

    __slots__ = ("_times", "_integral", "_slopes", "_n")

    def __init__(self, intervals: Sequence[Tuple[float, float]]) -> None:
        events: List[Tuple[float, int]] = []
        for lo, hi in intervals:
            if hi < lo:
                raise ValidationError(f"interval end ({hi!r}) precedes start ({lo!r})")
            events.append((float(lo), +1))
            events.append((float(hi), -1))
        events.sort()
        times: List[float] = []
        integral: List[float] = []
        slopes: List[int] = []
        cover = 0
        acc = 0.0
        prev: Optional[float] = None
        for t, delta in events:
            if prev is None:
                times.append(t)
                integral.append(0.0)
            elif t > prev:
                acc += cover * (t - prev)
                times.append(t)
                integral.append(acc)
                slopes.append(cover)
            cover += delta
            prev = t
        self._times = times
        self._integral = integral
        self._slopes = slopes  # slope on [times[i], times[i+1])
        self._n = len(intervals)

    def __len__(self) -> int:
        return self._n

    def _value(self, t: float) -> float:
        times = self._times
        if not times or t <= times[0]:
            return 0.0
        if t >= times[-1]:
            return self._integral[-1]
        idx = bisect.bisect_right(times, t) - 1
        return self._integral[idx] + self._slopes[idx] * (t - times[idx])

    def sum_intersections(self, a: float, b: float) -> float:
        """``Σ_I |I ∩ [a, b]|`` (0 when ``b ≤ a``)."""
        if b <= a or self._n == 0:
            return 0.0
        return self._value(b) - self._value(a)
