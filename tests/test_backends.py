"""Tests for the backend registry and cost-based ``auto`` dispatch
(ISSUE 4 tentpole + satellites).

Covers: registry registration/lookup semantics, the satellite-1
regression (pair/pattern kinds must *reject* ``linf-exact`` instead of
silently coercing it to ``auto``), registry-routed
``make_decomposition`` errors, deterministic ``auto`` resolution,
bit-stable cache keys for every pre-existing backend name, grid vs
cover-tree record-set parity on band-free datasets (property test),
the cost model's calibration loop, the serving layer's per-dataset
default backend + per-backend counters, and the CLI surfaces.
"""

import io
import json
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import TemporalPointSet
from repro.backends import (
    BackendDescriptor,
    BackendRegistry,
    CostModel,
    default_registry,
    fit_coefficients,
)
from repro.backends.builtin import register_builtin_backends
from repro.backends.cost import FALLBACK_COEFFICIENTS, QueryFeatures
from repro.cli import main as cli_main
from repro.core.aggregate import SumPairIndex, UnionPairIndex
from repro.core.patterns import PatternIndex
from repro.core.triangles import DurableTriangleIndex
from repro.engine import IndexKey, QueryEngine, QuerySpec, plan_query
from repro.errors import BackendError, ValidationError
from repro.structures.durable_ball import make_decomposition

from conftest import random_tps


def fresh_registry() -> BackendRegistry:
    return register_builtin_backends(BackendRegistry())


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_names_in_registration_order(self):
        assert default_registry().names() == (
            "cover-tree", "grid", "linf-exact", "vector",
        )

    def test_unknown_backend_error_lists_registered(self):
        with pytest.raises(
            BackendError, match="cover-tree, grid, linf-exact, vector"
        ):
            default_registry().get("annoy")

    def test_get_spatial_rejects_non_spatial(self):
        # linf-exact is registered but provides no decomposition.
        with pytest.raises(BackendError, match="spatial backends: cover-tree, grid"):
            default_registry().get_spatial("linf-exact")

    def test_duplicate_registration_needs_replace(self):
        registry = fresh_registry()
        descriptor = registry.get("grid")
        with pytest.raises(ValidationError, match="already registered"):
            registry.register(descriptor)
        registry.register(descriptor, replace=True)  # idempotent with replace

    def test_custom_backend_becomes_spec_valid_and_plannable(self):
        registry = fresh_registry()
        base = registry.get("cover-tree")
        custom = BackendDescriptor(
            name="my-cover-tree",
            kinds=base.kinds,
            exact=False,
            description="registered by a test",
            metric_requirement="any metric",
            metric_ok=lambda metric: True,
            # Reuse the stock hooks: identity still keys on *this* name.
            make_builder=base.make_builder,
            index_identity=lambda spec, fp: IndexKey(
                "triangles", fp, spec.epsilon, "my-cover-tree"
            ),
        )
        registry.register(custom)
        tps = random_tps(n=20, seed=0)
        spec = QuerySpec(kind="triangles", taus=2.0)
        plan = plan_query(
            0,
            QuerySpec(kind="triangles", taus=2.0),
            tps,
            registry=registry,
        )
        assert plan.key.backend != "my-cover-tree"  # auto still cost-ranked
        resolution = registry.resolve(spec, tps)
        assert "my-cover-tree" in resolution.costs  # ...but it competed

    def test_auto_is_not_registrable(self):
        with pytest.raises(ValidationError, match="dispatch keyword"):
            BackendDescriptor(
                name="auto",
                kinds=frozenset({"triangles"}),
                exact=False,
                description="",
                metric_requirement="",
                metric_ok=lambda m: True,
                make_builder=lambda s, t: None,
                index_identity=lambda s, f: None,
            )

    def test_describe_cards_are_json_ready(self):
        cards = default_registry().describe()
        json.dumps(cards)  # must not raise
        by_name = {c["name"]: c for c in cards}
        assert by_name["linf-exact"]["exact"] is True
        assert by_name["linf-exact"]["kinds"] == ["triangles"]
        assert by_name["grid"]["spatial"] is True
        assert by_name["cover-tree"]["cost_coefficients"]["build"] > 0


# ----------------------------------------------------------------------
# Satellite 1: unsupported kind/backend combos are rejected with the
# serving backends named (previously: silent coercion to 'auto').
# ----------------------------------------------------------------------
class TestKindBackendRejection:
    @pytest.mark.parametrize(
        "kind", ["pairs-sum", "pairs-union", "cliques", "paths", "stars"]
    )
    def test_linf_exact_rejected_for_non_triangle_kinds(self, kind):
        kwargs = {"kappa": 2} if kind == "pairs-union" else {}
        with pytest.raises(ValidationError) as err:
            QuerySpec(kind=kind, taus=2.0, backend="linf-exact", **kwargs)
        message = str(err.value)
        # The error must name the backends that DO serve the kind.
        assert "does not serve" in message
        assert "cover-tree" in message and "grid" in message

    def test_triangles_still_accept_linf_exact(self):
        spec = QuerySpec(kind="triangles", taus=2.0, backend="linf-exact")
        assert spec.backend == "linf-exact"

    def test_validate_combination_direct(self):
        registry = default_registry()
        registry.validate_combination("pairs-sum", "auto")  # never rejected
        registry.validate_combination("pairs-sum", "grid")
        with pytest.raises(ValidationError, match="serving 'pairs-sum'"):
            registry.validate_combination("pairs-sum", "linf-exact")
        with pytest.raises(ValidationError, match="unknown backend"):
            registry.validate_combination("triangles", "bogus")


# ----------------------------------------------------------------------
# Satellite 2: make_decomposition goes through the registry.
# ----------------------------------------------------------------------
class TestMakeDecomposition:
    def test_unknown_spatial_backend_lists_registered(self):
        tps = random_tps(n=10, seed=0)
        with pytest.raises(BackendError) as err:
            make_decomposition(tps, 0.25, backend="octree")
        assert "registered spatial backends: cover-tree, grid" in str(err.value)

    def test_exact_backend_is_not_a_decomposition(self):
        tps = random_tps(n=10, seed=0, metric="linf")
        with pytest.raises(BackendError, match="spatial"):
            make_decomposition(tps, 0.25, backend="linf-exact")

    def test_auto_still_builds_the_cover_tree(self):
        # Structure-level auto keeps the paper's general-metric default;
        # cost-based dispatch happens one level up, in the planner.
        tps = random_tps(n=15, seed=1)
        dec = make_decomposition(tps, 0.25, backend="auto")
        assert type(dec).__name__ == "CoverTreeDecomposition"

    def test_registered_names_build(self):
        tps = random_tps(n=15, seed=1)
        assert type(make_decomposition(tps, 0.25, "grid")).__name__ == (
            "GridDecomposition"
        )


class TestLazyApiEngine:
    def test_importing_api_allocates_no_engine(self):
        code = (
            "import repro.api as api; "
            "assert api._ENGINE is None, 'engine built at import time'; "
            "engine = api.default_engine(); "
            "assert engine is api.default_engine(); "
            "assert api._ENGINE is engine; "
            "print('ok')"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == "ok"


# ----------------------------------------------------------------------
# Deterministic auto resolution
# ----------------------------------------------------------------------
class TestAutoResolution:
    KINDS_AND_EXTRAS = [
        ("triangles", {}),
        ("pairs-sum", {}),
        ("pairs-union", {"kappa": 2}),
        ("cliques", {}),
    ]

    def test_resolution_is_deterministic_per_fingerprint(self):
        # Same dataset content (same fingerprint), fresh registry
        # instances, repeated calls: identical choice every time.
        a = random_tps(n=45, seed=7)
        b = random_tps(n=45, seed=7)
        assert a.fingerprint() == b.fingerprint()
        for kind, extras in self.KINDS_AND_EXTRAS:
            spec = QuerySpec(kind=kind, taus=(2.0, 4.0), **extras)
            names = {
                default_registry().resolve(spec, a).name,
                default_registry().resolve(spec, b).name,
                fresh_registry().resolve(spec, a).name,
                fresh_registry().resolve(spec, b).name,
            }
            assert len(names) == 1, (kind, names)

    def test_auto_plan_key_equals_resolved_explicit_plan_key(self):
        tps = random_tps(n=40, seed=3)
        for kind, extras in self.KINDS_AND_EXTRAS:
            auto_spec = QuerySpec(kind=kind, taus=3.0, **extras)
            resolved = default_registry().resolve(auto_spec, tps).name
            explicit = QuerySpec(kind=kind, taus=3.0, backend=resolved, **extras)
            assert (
                plan_query(0, auto_spec, tps).key
                == plan_query(0, explicit, tps).key
            )

    def test_auto_respects_metric_capability(self):
        # Opaque function metrics cannot grid: auto must fall back to
        # the cover tree rather than crash at build time.
        tps = random_tps(n=25, seed=2)
        opaque = TemporalPointSet(
            tps.points, tps.starts, tps.ends,
            metric=lambda x, y: float(np.abs(x - y).max()),
        )
        resolution = default_registry().resolve(
            QuerySpec(kind="pairs-sum", taus=2.0), opaque
        )
        assert resolution.name == "cover-tree"
        assert "grid" not in resolution.costs

    def test_linf_triangles_promote_to_exact_and_exact_false_opts_out(self):
        tps = random_tps(n=25, seed=2, metric="linf")
        registry = default_registry()
        promoted = registry.resolve(QuerySpec(kind="triangles", taus=2.0), tps)
        assert promoted.name == "linf-exact"
        assert "exact" in promoted.reason
        opted_out = registry.resolve(
            QuerySpec(kind="triangles", taus=2.0, exact=False), tps
        )
        assert opted_out.name in ("cover-tree", "grid", "vector")

    def test_explicit_backend_with_wrong_metric_names_alternatives(self):
        tps = random_tps(n=25, seed=2)
        opaque = TemporalPointSet(
            tps.points, tps.starts, tps.ends,
            metric=lambda x, y: float(np.abs(x - y).max()),
        )
        with pytest.raises(ValidationError, match="cover-tree"):
            default_registry().resolve(
                QuerySpec(kind="triangles", taus=2.0, backend="grid"), opaque
            )

    def test_cost_scales_choose_vector_on_lp_inputs(self):
        # The measured coefficients price the SoA vector backend below
        # the grid, and the grid far below the cover tree, on lp
        # metrics — auto should agree with that ordering.
        tps = random_tps(n=60, seed=4, metric="l2")
        resolution = default_registry().resolve(
            QuerySpec(kind="triangles", taus=2.0), tps
        )
        assert resolution.name == "vector"
        assert (
            resolution.costs["vector"]
            < resolution.costs["grid"]
            < resolution.costs["cover-tree"]
        )


# ----------------------------------------------------------------------
# Cache-key bit-stability for pre-existing backend names
# ----------------------------------------------------------------------
class TestKeyStability:
    """Keys for explicit backend names must match the historical planner
    exactly — caches (and cross-process cache-key logs) stay valid."""

    def test_explicit_name_keys_are_bit_stable(self):
        tps = random_tps(n=30, seed=9)
        fp = tps.fingerprint()
        expected = [
            (
                QuerySpec(kind="triangles", taus=3.0, backend="cover-tree"),
                IndexKey("triangles", fp, 0.5, "cover-tree", ()),
            ),
            (
                QuerySpec(kind="triangles", taus=3.0, epsilon=0.25, backend="grid"),
                IndexKey("triangles", fp, 0.25, "grid", ()),
            ),
            (
                QuerySpec(kind="pairs-sum", taus=3.0, backend="cover-tree"),
                IndexKey("pairs-sum", fp, 0.5, "cover-tree", ("profile",)),
            ),
            (
                QuerySpec(
                    kind="pairs-sum", taus=3.0, backend="grid", sum_backend="tree"
                ),
                IndexKey("pairs-sum", fp, 0.5, "grid", ("tree",)),
            ),
            (
                QuerySpec(kind="pairs-union", taus=3.0, kappa=2, backend="grid"),
                IndexKey("pairs-union", fp, 0.5, "grid", ()),
            ),
            (
                QuerySpec(kind="cliques", taus=3.0, backend="cover-tree"),
                IndexKey("patterns", fp, 0.5, "cover-tree", ()),
            ),
            (
                QuerySpec(kind="paths", taus=3.0, m=4, backend="grid"),
                IndexKey("patterns", fp, 0.5, "grid", ()),
            ),
            (
                QuerySpec(kind="stars", taus=3.0, backend="cover-tree"),
                IndexKey("patterns", fp, 0.5, "cover-tree", ()),
            ),
        ]
        for spec, key in expected:
            assert plan_query(0, spec, tps).key == key, spec

    def test_vector_keys_follow_the_spatial_identity_scheme(self):
        # The NEW vector backend mints keys through the same
        # (family, fp, ε, name, extras) scheme as the other spatial
        # backends — pinned here so vector cache identities are as
        # stable as the pre-existing ones.
        tps = random_tps(n=30, seed=9)
        fp = tps.fingerprint()
        expected = [
            (
                QuerySpec(kind="triangles", taus=3.0, backend="vector"),
                IndexKey("triangles", fp, 0.5, "vector", ()),
            ),
            (
                QuerySpec(kind="pairs-sum", taus=3.0, backend="vector"),
                IndexKey("pairs-sum", fp, 0.5, "vector", ("profile",)),
            ),
            (
                QuerySpec(
                    kind="pairs-sum", taus=3.0, backend="vector",
                    sum_backend="tree",
                ),
                IndexKey("pairs-sum", fp, 0.5, "vector", ("tree",)),
            ),
            (
                QuerySpec(kind="pairs-union", taus=3.0, kappa=2, backend="vector"),
                IndexKey("pairs-union", fp, 0.5, "vector", ()),
            ),
            (
                QuerySpec(kind="cliques", taus=3.0, backend="vector"),
                IndexKey("patterns", fp, 0.5, "vector", ()),
            ),
            (
                QuerySpec(kind="stars", taus=3.0, epsilon=0.25, backend="vector"),
                IndexKey("patterns", fp, 0.25, "vector", ()),
            ),
        ]
        for spec, key in expected:
            assert plan_query(0, spec, tps).key == key, spec

    def test_pattern_dsl_stage_keys_are_bit_stable(self):
        # A compiled pattern's stages mint the SAME keys the legacy
        # planner mints for the equivalent explicit-kind specs — that
        # identity is what lets DSL plans share cached sub-indexes with
        # every pre-existing query, so it is pinned bit-for-bit here.
        tps = random_tps(n=30, seed=9)
        fp = tps.fingerprint()
        spec = QuerySpec(
            kind="pattern-dsl",
            taus=3.0,
            backend="grid",
            pattern="seq(triangles(), pairs(agg=sum), gap=[0, 5])",
        )
        plan = plan_query(0, spec, tps)
        assert plan.key == IndexKey("pattern-dsl", fp, 0.5, "dsl", ())
        assert [s.key for s in plan.stages] == [
            IndexKey("triangles", fp, 0.5, "grid", ()),
            IndexKey("pairs-sum", fp, 0.5, "grid", ("profile",)),
        ]
        # Duplicate leaves fold into one stage (one shared sub-index).
        dup = QuerySpec(
            kind="pattern-dsl",
            taus=3.0,
            backend="grid",
            pattern="seq(pairs(agg=sum), pairs(agg=sum))",
        )
        assert [s.key for s in plan_query(0, dup, tps).stages] == [
            IndexKey("pairs-sum", fp, 0.5, "grid", ("profile",)),
        ]

    def test_linf_exact_key_is_bit_stable_and_epsilon_free(self):
        tps = random_tps(n=30, seed=9, metric="linf")
        fp = tps.fingerprint()
        expected = IndexKey("linf-triangles", fp, 0.0, "linf-exact", ())
        for spec in (
            QuerySpec(kind="triangles", taus=3.0, backend="linf-exact"),
            QuerySpec(kind="triangles", taus=3.0, epsilon=0.2, backend="linf-exact"),
            QuerySpec(kind="triangles", taus=3.0, exact=True),
            QuerySpec(kind="triangles", taus=3.0),  # auto-promotion
        ):
            assert plan_query(0, spec, tps).key == expected, spec

    def test_plan_key_matches_index_cache_key_hook(self):
        # The descriptor hooks and the solvers' own cache_key() must
        # agree for every explicit backend name.
        tps = random_tps(n=30, seed=9)
        engine = QueryEngine()
        for backend in ("cover-tree", "grid", "vector"):
            for spec in (
                QuerySpec(kind="triangles", taus=2.0, backend=backend),
                QuerySpec(kind="pairs-sum", taus=2.0, backend=backend),
                QuerySpec(kind="pairs-union", taus=2.0, kappa=2, backend=backend),
                QuerySpec(kind="stars", taus=2.0, backend=backend),
            ):
                plan = plan_query(0, spec, tps)
                hook = engine.get_index(tps, spec).cache_key()
                assert hook[0] == plan.key.family
                assert hook[1] == plan.key.fingerprint
                assert hook[2] == plan.key.epsilon
                assert hook[3] == plan.key.backend
                assert tuple(hook[4:]) == plan.key.extra


# ----------------------------------------------------------------------
# Satellite 3: grid vs cover-tree parity (identical record sets).
#
# Backend parity is NOT true for arbitrary inputs: a pair at distance
# d ∈ (1, 1+ε] is an ε-extra one decomposition may report and the other
# may not.  On a 0.5-lattice under l1/linf every pairwise distance is a
# multiple of 0.5, so with ε = 0.4 the ambiguous band (1, 1.4] is
# empty: both backends must report exactly the τ-durable set, hence
# identical records.  (Canonical balls have radius ≤ ε/4 = 0.1, so a
# ball never mixes near (≤1) and far (≥1.5) partners, and ball-level
# linkage coincides with exact unit-distance adjacency.)
# ----------------------------------------------------------------------
PARITY_EPS = 0.4

#: κ larger than any generated dataset: the UNION greedy covers every
#: witness, making its score independent of greedy tie-breaking order
#: (which legitimately differs between decompositions).
PARITY_KAPPA = 64


@st.composite
def lattice_tps(draw):
    n = draw(st.integers(min_value=8, max_value=22))
    metric = draw(st.sampled_from(["l1", "linf"]))
    cells = draw(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=n, max_size=n,
        )
    )
    starts = draw(st.lists(st.integers(0, 9), min_size=n, max_size=n))
    lengths = draw(st.lists(st.integers(0, 7), min_size=n, max_size=n))
    pts = np.asarray(cells, dtype=float) * 0.5
    s = np.asarray(starts, dtype=float)
    return TemporalPointSet(pts, s, s + np.asarray(lengths, float), metric=metric)


def _sorted_keys(records):
    return sorted(r.key for r in records)


#: Every approximate spatial backend must agree on lattice inputs —
#: including the SoA ``vector`` backend, whose batched kernels are
#: required to reproduce the object-graph record sets exactly.
PARITY_BACKENDS = ("cover-tree", "grid", "vector")


class TestBackendParity:
    @settings(max_examples=25, deadline=None)
    @given(tps=lattice_tps(), tau=st.sampled_from([1.0, 2.0, 3.0]))
    def test_all_four_query_families_agree(self, tps, tau):
        # Triangles.
        tri = {
            b: DurableTriangleIndex(tps, PARITY_EPS, backend=b).query(tau)
            for b in PARITY_BACKENDS
        }
        for b in PARITY_BACKENDS[1:]:
            assert _sorted_keys(tri[b]) == _sorted_keys(tri["cover-tree"]), b

        # SUM pairs: same pairs AND same witness sums (integer windows,
        # so float summation order cannot perturb them).
        sums = {
            b: {
                r.key: r.score
                for r in SumPairIndex(tps, PARITY_EPS, backend=b).query(tau)
            }
            for b in PARITY_BACKENDS
        }
        for b in PARITY_BACKENDS[1:]:
            assert sums[b].keys() == sums["cover-tree"].keys(), b
            for key, score in sums["cover-tree"].items():
                assert sums[b][key] == pytest.approx(score), (b, key)

        # UNION pairs (κ covers all witnesses; see PARITY_KAPPA).
        union = {
            b: UnionPairIndex(tps, PARITY_EPS, backend=b).query(tau, PARITY_KAPPA)
            for b in PARITY_BACKENDS
        }
        for b in PARITY_BACKENDS[1:]:
            assert _sorted_keys(union[b]) == _sorted_keys(union["cover-tree"]), b

        # Patterns: cliques, paths and stars off one shared index each.
        for iterate in ("iter_cliques", "iter_paths", "iter_stars"):
            pats = {
                b: list(
                    getattr(PatternIndex(tps, PARITY_EPS, backend=b), iterate)(
                        3, tau
                    )
                )
                for b in PARITY_BACKENDS
            }
            for b in PARITY_BACKENDS[1:]:
                assert _sorted_keys(pats[b]) == _sorted_keys(
                    pats["cover-tree"]
                ), (iterate, b)

    def test_fixed_example_parity_including_engine_path(self):
        # A deterministic anchor for the property above, driven through
        # the engine so descriptor builders (not raw classes) are used.
        rng = np.random.default_rng(11)
        pts = rng.integers(0, 8, size=(30, 2)).astype(float) * 0.5
        starts = rng.integers(0, 9, size=30).astype(float)
        ends = starts + rng.integers(0, 7, size=30).astype(float)
        tps = TemporalPointSet(pts, starts, ends, metric="linf")
        engine = QueryEngine()
        results = {
            b: engine.run(
                tps,
                QuerySpec(
                    kind="triangles", taus=2.0, epsilon=PARITY_EPS,
                    backend=b, exact=False,
                ),
            ).records
            for b in PARITY_BACKENDS
        }
        for b in PARITY_BACKENDS[1:]:
            assert _sorted_keys(results[b]) == _sorted_keys(
                results["cover-tree"]
            ), b
        assert len(results["grid"]) > 0  # the example is non-degenerate


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
class TestCostModel:
    def test_estimate_is_monotone_in_n_and_taus(self):
        model = CostModel()
        small = QueryFeatures(n=100, dim=2, metric="l2", n_taus=1)
        big = QueryFeatures(n=1000, dim=2, metric="l2", n_taus=1)
        sweep = QueryFeatures(n=100, dim=2, metric="l2", n_taus=8)
        for backend in ("cover-tree", "grid", "linf-exact", "vector"):
            assert model.estimate(backend, small) < model.estimate(backend, big)
            assert model.estimate(backend, small) < model.estimate(backend, sweep)

    def test_unknown_backend_uses_fallback(self):
        model = CostModel()
        features = QueryFeatures(n=100, dim=2, metric="l2")
        expected = features.unit * (
            FALLBACK_COEFFICIENTS.build + FALLBACK_COEFFICIENTS.query
        )
        assert model.estimate("never-registered", features) == expected

    def test_fit_round_trips_through_bench_payload(self):
        measurements = [
            {
                "backend": "grid", "n": 200, "dim": 2, "metric": "l2",
                "n_taus": 2, "build_seconds": 0.004, "query_seconds": 0.030,
            },
            {
                "backend": "cover-tree", "n": 200, "dim": 2, "metric": "l2",
                "n_taus": 2, "build_seconds": 0.016, "query_seconds": 0.040,
            },
        ]
        fitted = fit_coefficients(measurements)
        assert fitted["grid"].build < fitted["cover-tree"].build
        rebuilt = CostModel.from_bench({"measurements": measurements})
        direct = CostModel(fitted)
        features = QueryFeatures(n=500, dim=2, metric="l2", n_taus=3)
        for backend in ("grid", "cover-tree"):
            assert rebuilt.estimate(backend, features) == pytest.approx(
                direct.estimate(backend, features)
            )
        # Pre-fitted coefficients take precedence over raw measurements.
        override = CostModel.from_bench(
            {"coefficients": {"grid": {"build": 1.0, "query": 1.0}}}
        )
        assert override.estimate("grid", features) == pytest.approx(
            features.unit * (1.0 + 3 * 1.0)
        )

    def test_fit_rejects_empty_and_bad_payloads(self):
        with pytest.raises(ValidationError):
            fit_coefficients([])
        with pytest.raises(ValidationError):
            CostModel.from_bench({})
        with pytest.raises(ValidationError):
            CostModel({"grid": {"build": "fast"}})

    def test_recalibrated_registry_can_flip_the_choice(self):
        # Coefficients that price the cover tree at ~zero must flip an
        # lp dataset's auto choice away from the grid.
        registry = fresh_registry()
        registry.cost_model = CostModel(
            {
                "cover-tree": {"build": 1e-12, "query": 1e-12},
                "grid": {"build": 1e-3, "query": 1e-3},
            }
        )
        tps = random_tps(n=40, seed=6)
        resolution = registry.resolve(QuerySpec(kind="pairs-sum", taus=2.0), tps)
        assert resolution.name == "cover-tree"


# ----------------------------------------------------------------------
# Serving integration: per-dataset default backend + /stats counters
# ----------------------------------------------------------------------
class TestServeIntegration:
    @pytest.fixture()
    def server(self):
        from repro.serve import start_server_thread

        handle = start_server_thread(port=0)
        try:
            yield handle
        finally:
            handle.stop()

    @staticmethod
    def _request(handle, method, path, body=None):
        import http.client

        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
        try:
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    def test_default_backend_threads_through_query_and_stats(self, server):
        status, data = self._request(
            server, "POST", "/datasets",
            {
                "name": "pinned",
                "dataset": {"workload": "social", "n": 60, "seed": 2},
                "default_backend": "cover-tree",
            },
        )
        assert status == 201
        assert json.loads(data)["registered"]["default_backend"] == "cover-tree"

        # No backend in the query → the dataset default (cover-tree)
        # applies; an explicit backend overrides it.
        status, data = self._request(
            server, "POST", "/query",
            {
                "dataset": "pinned",
                "include_records": False,
                "queries": [
                    {"kind": "triangles", "tau": 2.0},
                    {"kind": "triangles", "tau": 2.0, "backend": "grid"},
                ],
            },
        )
        assert status == 200
        status, data = self._request(server, "GET", "/stats")
        assert status == 200
        shard_stats = json.loads(data)["shards"]["pinned"]
        backends = shard_stats["backends"]
        assert backends["cover-tree"]["queries"] == 1
        assert backends["cover-tree"]["builds"] == 1
        assert backends["grid"]["queries"] == 1
        assert backends["grid"]["builds"] == 1
        assert shard_stats["dataset"]["default_backend"] == "cover-tree"

    def test_counters_attribute_cache_hits_and_resolved_auto(self, server):
        status, _ = self._request(
            server, "POST", "/datasets",
            {"name": "auto-ds", "dataset": {"workload": "uniform", "n": 50, "seed": 3}},
        )
        assert status == 201
        body = {
            "dataset": "auto-ds",
            "include_records": False,
            "queries": [
                {"kind": "pairs-sum", "tau": 2.0},
                {"kind": "pairs-sum", "tau": 3.0},
            ],
        }
        status, _ = self._request(server, "POST", "/query", body)
        assert status == 200
        status, data = self._request(server, "GET", "/stats")
        backends = json.loads(data)["shards"]["auto-ds"]["backends"]
        # auto resolved to one concrete backend ('auto' never appears),
        # shared one build, and the second query was a cache hit.
        assert "auto" not in backends
        (name, counters), = backends.items()
        assert counters["queries"] == 2
        assert counters["builds"] == 1
        assert counters["cache_hits"] == 1

    def test_metric_incompatible_default_backend_is_a_400(self, server):
        # linf-exact cannot serve an l2 dataset: the *registration* must
        # fail, not every later defaulted query.
        status, data = self._request(
            server, "POST", "/datasets",
            {
                "name": "mismatched",
                "dataset": {"workload": "uniform", "n": 30, "metric": "l2"},
                "default_backend": "linf-exact",
            },
        )
        assert status == 400
        assert "linf" in json.loads(data)["error"]

    def test_kind_aware_default_leaves_unserved_kinds_on_auto(self, server):
        # A triangles-only default on an linf dataset pins the triangle
        # queries and leaves pair queries on cost-model dispatch.
        status, _ = self._request(
            server, "POST", "/datasets",
            {
                "name": "linf-ds",
                "dataset": {"workload": "uniform", "n": 40, "metric": "linf",
                            "seed": 4},
                "default_backend": "linf-exact",
            },
        )
        assert status == 201
        status, _ = self._request(
            server, "POST", "/query",
            {
                "dataset": "linf-ds",
                "include_records": False,
                "queries": [
                    {"kind": "triangles", "tau": 2.0},
                    {"kind": "pairs-sum", "tau": 2.0},
                ],
            },
        )
        assert status == 200
        status, data = self._request(server, "GET", "/stats")
        backends = json.loads(data)["shards"]["linf-ds"]["backends"]
        assert backends["linf-exact"]["queries"] == 1
        spatial = [n for n in backends if n != "linf-exact"]
        assert len(spatial) == 1 and backends[spatial[0]]["queries"] == 1

    def test_unknown_default_backend_is_a_400(self, server):
        status, data = self._request(
            server, "POST", "/datasets",
            {
                "name": "broken",
                "dataset": {"workload": "uniform", "n": 30},
                "default_backend": "annoy",
            },
        )
        assert status == 400
        assert "registered backends" in json.loads(data)["error"]

    def test_registry_level_default_backend(self):
        from repro.serve import DatasetRegistry

        registry = DatasetRegistry(default_backend="grid")
        shard = registry.register("d", random_tps(n=20, seed=1))
        assert shard.default_backend == "grid"
        override = registry.register(
            "e", random_tps(n=20, seed=2), default_backend="cover-tree"
        )
        assert override.default_backend == "cover-tree"
        with pytest.raises(ValidationError):
            DatasetRegistry(default_backend="annoy")


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_backends_lists_descriptors(self):
        code, text = run_cli("backends")
        assert code == 0
        for name in ("cover-tree", "grid", "linf-exact", "vector"):
            assert name in text
        assert "exact" in text and "kinds:" in text

    def test_backends_json(self):
        code, text = run_cli("backends", "--json")
        assert code == 0
        doc = json.loads(text)
        assert {c["name"] for c in doc["backends"]} == {
            "cover-tree", "grid", "linf-exact", "vector",
        }
        assert "cover-tree" in doc["cost_coefficients"]

    def test_backends_explain_resolves_each_kind(self):
        code, text = run_cli(
            "backends", "--explain", "--n", "60", "--metric", "linf"
        )
        assert code == 0
        assert "triangles" in text and "-> linf-exact" in text
        assert "cheapest by cost model" in text

    def test_one_shot_backend_override_and_resolution_line(self):
        code, text = run_cli(
            "triangles", "--n", "80", "--tau", "4", "--backend", "cover-tree"
        )
        assert code == 0
        assert "backend: cover-tree" in text
        code, text = run_cli("triangles", "--n", "80", "--tau", "4")
        assert code == 0
        assert "backend: vector" in text  # auto → vector on the l2 workload

    def test_batch_backend_override(self, tmp_path):
        qfile = tmp_path / "queries.json"
        qfile.write_text(
            json.dumps(
                [
                    {"kind": "triangles", "tau": 3.0},
                    {"kind": "triangles", "tau": 3.0, "backend": "grid"},
                ]
            )
        )
        out = tmp_path / "results.json"
        code, _ = run_cli(
            "batch", str(qfile), "--n", "60",
            "--backend", "cover-tree", "--output", str(out), "--no-records",
        )
        assert code == 0
        payload = json.loads(out.read_text())
        backends = [q["index"]["backend"] for q in payload["queries"]]
        assert backends == ["cover-tree", "grid"]  # explicit entry wins

    def test_unknown_backend_flag_exits_2(self):
        code, _ = run_cli("triangles", "--n", "40", "--tau", "3",
                          "--backend", "annoy")
        assert code == 2

    def test_batch_unknown_backend_fails_even_with_explicit_queries(self, tmp_path):
        qfile = tmp_path / "queries.json"
        qfile.write_text(json.dumps([{"kind": "triangles", "tau": 3.0,
                                      "backend": "grid"}]))
        code, _ = run_cli("batch", str(qfile), "--n", "40", "--backend", "annoy")
        assert code == 2

    def test_batch_kind_aware_default_backend(self, tmp_path):
        # --backend linf-exact on a mixed linf batch: triangles pinned
        # to the exact solver, pairs fall back to auto dispatch.
        qfile = tmp_path / "queries.json"
        qfile.write_text(json.dumps([
            {"kind": "triangles", "tau": 2.0},
            {"kind": "pairs-sum", "tau": 2.0},
        ]))
        out = tmp_path / "results.json"
        code, _ = run_cli(
            "batch", str(qfile), "--n", "50", "--metric", "linf",
            "--backend", "linf-exact", "--output", str(out), "--no-records",
        )
        assert code == 0
        payload = json.loads(out.read_text())
        backends = [q["index"]["backend"] for q in payload["queries"]]
        assert backends[0] == "linf-exact"
        assert backends[1] in ("cover-tree", "grid", "vector")
