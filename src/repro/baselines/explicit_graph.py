"""Explicit-graph baseline (Section 1.2's "connection with triangle listing").

The strategy the paper argues against for implicit proximity inputs:

1. materialise the proximity graph (already ``Ω(m)``, potentially
   ``Ω(n²)``);
2. list all triangles with the classic degree-ordered
   ``Õ(m^{3/2})`` algorithm [34, 41, 49];
3. post-filter by durability.

Its cost is independent of the *durable* output size — when ``τ`` is
selective it does all the listing work for nothing, which is exactly
what experiments E1/E11 show.
"""

from __future__ import annotations

from typing import List

from ..graphs.proximity import build_proximity_graph
from ..temporal.interval import Interval
from ..types import TemporalPointSet, TriangleRecord

__all__ = ["explicit_graph_triangles"]


def explicit_graph_triangles(
    tps: TemporalPointSet, tau: float, threshold: float = 1.0
) -> List[TriangleRecord]:
    """Materialise, list every triangle, then filter by durability.

    Returns exactly ``T_τ`` in anchor-first record form.
    """
    graph = build_proximity_graph(tps, threshold)
    out: List[TriangleRecord] = []
    starts, ends = tps.starts, tps.ends
    for a, b, c in graph.triangles():
        lo = max(float(starts[a]), float(starts[b]), float(starts[c]))
        hi = min(float(ends[a]), float(ends[b]), float(ends[c]))
        if hi - lo >= tau:
            anchor = max((a, b, c), key=tps.anchor_key)
            q, s = sorted(x for x in (a, b, c) if x != anchor)
            out.append(
                TriangleRecord(anchor=anchor, q=q, s=s, lifespan=Interval(lo, hi))
            )
    return out
