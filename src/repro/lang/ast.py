"""AST nodes for the declarative temporal-pattern DSL.

A pattern is a tree: primitive leaves name one of the paper's query
families (durable triangles, m-cliques/paths/stars, SUM/UNION
aggregate-durable pairs) and combinator nodes compose their matches —
``seq`` for sequenced sub-patterns (ordered by lifespan start, with an
optional start-gap constraint) and ``all`` for contemporaneous
sub-patterns (joint lifespan intersection at least τ).

Nodes are frozen dataclasses with tuple-valued children, so a parsed
pattern is hashable and structurally comparable — which keeps
:class:`~repro.engine.spec.QuerySpec` (whose ``pattern`` field holds
the parsed root) usable in sets and as a cache discriminator.  Every
node serialises back to the compact JSON form via :meth:`to_json`;
:mod:`repro.lang.parser` is the inverse.

Shared per-node modifiers:

``tau``
    Per-node durability override.  ``None`` means "inherit the query's
    τ" — the executor passes the batch τ down at run time, so one
    pattern answers a τ-sweep from the same compiled plan.
``dur``
    ``(lo, hi)`` bounds on the node's composite lifespan length
    (``hi`` may be ``inf``); applied after matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ValidationError

__all__ = [
    "PatternNode",
    "TrianglesNode",
    "ShapeNode",
    "PairsNode",
    "SeqNode",
    "AllNode",
]

Bounds = Tuple[float, float]


def _check_bounds(value: Optional[Bounds], what: str) -> Optional[Bounds]:
    if value is None:
        return None
    try:
        lo, hi = value
        lo, hi = float(lo), float(hi)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"{what} must be a [lo, hi] pair of numbers, got {value!r}"
        ) from exc
    if lo > hi:
        raise ValidationError(f"{what} bounds are inverted: {lo!r} > {hi!r}")
    return (lo, hi)


def _check_tau(tau: Optional[float]) -> Optional[float]:
    if tau is None:
        return None
    try:
        tau = float(tau)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"node tau must be a number, got {tau!r}") from exc
    if not tau > 0:
        raise ValidationError(f"node tau must be positive, got {tau!r}")
    return tau


def _modifier_json(node: "PatternNode") -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    if node.tau is not None:
        out["tau"] = node.tau
    if node.dur is not None:
        out["dur"] = list(node.dur)
    return out


@dataclass(frozen=True)
class PatternNode:
    """Base class: the shared ``tau`` / ``dur`` modifiers."""

    tau: Optional[float] = None
    dur: Optional[Bounds] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tau", _check_tau(self.tau))
        object.__setattr__(self, "dur", _check_bounds(self.dur, "dur"))

    # Subclasses override; the base exists so isinstance checks and the
    # compiler's generic walk have one anchor type.
    def to_json(self) -> Dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class TrianglesNode(PatternNode):
    """Durable triangles (Algorithm 1 / the exact ℓ∞ solver)."""

    exact: Optional[bool] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.exact is not None and not isinstance(self.exact, bool):
            raise ValidationError(
                f"triangles exact must be a boolean, got {self.exact!r}"
            )

    def to_json(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {}
        if self.exact is not None:
            body["exact"] = self.exact
        return {"triangles": body, **_modifier_json(self)}


@dataclass(frozen=True)
class ShapeNode(PatternNode):
    """A durable m-pattern of Appendix D: clique, path or star."""

    shape: str = "clique"
    m: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shape not in ("clique", "path", "star"):
            raise ValidationError(
                f"unknown pattern shape {self.shape!r}; "
                "expected clique, path or star"
            )
        if not (isinstance(self.m, int) and not isinstance(self.m, bool) and self.m >= 2):
            raise ValidationError(
                f"pattern size m must be an integer >= 2, got {self.m!r}"
            )

    def to_json(self) -> Dict[str, Any]:
        return {self.shape: {"m": self.m}, **_modifier_json(self)}


@dataclass(frozen=True)
class PairsNode(PatternNode):
    """Aggregate-durable pairs (Section 5): SUM or UNION witnesses."""

    agg: str = "sum"
    kappa: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.agg not in ("sum", "union"):
            raise ValidationError(
                f"unknown pair aggregate {self.agg!r}; expected sum or union"
            )
        if self.agg == "union":
            if not (
                isinstance(self.kappa, int)
                and not isinstance(self.kappa, bool)
                and self.kappa >= 1
            ):
                raise ValidationError(
                    f"pairs(agg=union) requires a positive integer kappa, "
                    f"got {self.kappa!r}"
                )
        elif self.kappa is not None:
            raise ValidationError("kappa is only valid for pairs(agg=union)")

    def to_json(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"agg": self.agg}
        if self.kappa is not None:
            body["kappa"] = self.kappa
        return {"pairs": body, **_modifier_json(self)}


def _check_parts(parts: Any, head: str) -> Tuple[PatternNode, ...]:
    try:
        out = tuple(parts)
    except TypeError as exc:
        raise ValidationError(
            f"{head} takes a sequence of sub-patterns, got {parts!r}"
        ) from exc
    if len(out) < 2:
        raise ValidationError(
            f"{head} needs at least two sub-patterns, got {len(out)}"
        )
    for part in out:
        if not isinstance(part, PatternNode):
            raise ValidationError(
                f"{head} sub-patterns must be pattern nodes, got {part!r}"
            )
    return out


@dataclass(frozen=True)
class SeqNode(PatternNode):
    """Sequenced sub-patterns, ordered by component lifespan start.

    Consecutive components ``c_i, c_{i+1}`` must satisfy
    ``start(c_{i+1}) >= start(c_i)``; ``gap=(lo, hi)`` additionally
    bounds the start delta ``start(c_{i+1}) - start(c_i)``.  The
    composite lifespan is the span hull ``[min start, max end]``.
    """

    parts: Tuple[PatternNode, ...] = ()
    gap: Optional[Bounds] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "parts", _check_parts(self.parts, "seq"))
        object.__setattr__(self, "gap", _check_bounds(self.gap, "gap"))
        if self.gap is not None and self.gap[0] < 0:
            raise ValidationError(
                f"gap lower bound must be >= 0, got {self.gap[0]!r}"
            )

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"seq": [p.to_json() for p in self.parts]}
        if self.gap is not None:
            out["gap"] = list(self.gap)
        out.update(_modifier_json(self))
        return out


@dataclass(frozen=True)
class AllNode(PatternNode):
    """Contemporaneous sub-patterns: joint lifespan intersection ≥ τ.

    The node's effective τ (its override, else the query τ) bounds the
    *intersection* of the component lifespans; the composite lifespan
    is that intersection.
    """

    parts: Tuple[PatternNode, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "parts", _check_parts(self.parts, "all"))

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"all": [p.to_json() for p in self.parts]}
        out.update(_modifier_json(self))
        return out
