"""Closed time intervals (point lifespans).

The paper annotates every point ``p`` with a lifespan ``I_p = [I⁻_p, I⁺_p]``
(Section 1.1).  This module provides the :class:`Interval` value type and
the handful of primitive operations the algorithms rely on: length,
intersection, union length and stabbing tests.

Intervals are closed and may be degenerate (``start == end``), in which
case their length is zero.  An *empty* interval (no point at all) is
represented by :data:`EMPTY_INTERVAL` and has negative extent; all
operations treat it consistently (zero length, absorbing for
intersection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..errors import ValidationError

__all__ = ["Interval", "EMPTY_INTERVAL", "intersect_many", "union_length"]


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval ``[start, end]`` on the time axis.

    Instances are immutable and ordered lexicographically by
    ``(start, end)`` which matches the sort orders used throughout the
    index structures.
    """

    start: float
    end: float

    # ------------------------------------------------------------------
    # Constructors / validation
    # ------------------------------------------------------------------
    @staticmethod
    def checked(start: float, end: float) -> "Interval":
        """Build an interval, raising :class:`ValidationError` if ``end < start``."""
        if end < start:
            raise ValidationError(
                f"interval end ({end!r}) precedes start ({start!r})"
            )
        return Interval(float(start), float(end))

    # ------------------------------------------------------------------
    # Basic predicates
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the interval contains no point."""
        return self.end < self.start

    @property
    def length(self) -> float:
        """``|I|`` — the measure of the interval (0 for degenerate/empty)."""
        return self.end - self.start if self.end > self.start else 0.0

    def contains_point(self, t: float) -> bool:
        """True when ``t ∈ [start, end]``."""
        return self.start <= t <= self.end

    def contains(self, other: "Interval") -> bool:
        """True when ``other ⊆ self`` (empty intervals are contained in all)."""
        if other.is_empty:
            return True
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the two closed intervals share at least one point."""
        if self.is_empty or other.is_empty:
            return False
        return self.start <= other.end and other.start <= self.end

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval":
        """The intersection interval; :data:`EMPTY_INTERVAL` when disjoint."""
        lo = self.start if self.start >= other.start else other.start
        hi = self.end if self.end <= other.end else other.end
        if hi < lo:
            return EMPTY_INTERVAL
        return Interval(lo, hi)

    def intersection_length(self, other: "Interval") -> float:
        """``|self ∩ other|`` without allocating an interval."""
        lo = self.start if self.start >= other.start else other.start
        hi = self.end if self.end <= other.end else other.end
        return hi - lo if hi > lo else 0.0

    def clip(self, lo: float, hi: float) -> "Interval":
        """The intersection with ``[lo, hi]``."""
        return self.intersect(Interval(lo, hi))

    def shift(self, delta: float) -> "Interval":
        """The interval translated by ``delta``."""
        return Interval(self.start + delta, self.end + delta)

    def __iter__(self) -> Iterator[float]:
        yield self.start
        yield self.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_empty:
            return "Interval(empty)"
        return f"Interval({self.start:g}, {self.end:g})"


#: Canonical empty interval (positive start, negative end).
EMPTY_INTERVAL = Interval(float("inf"), float("-inf"))


def intersect_many(intervals: Iterable[Interval]) -> Interval:
    """Intersection of any number of intervals (``EMPTY_INTERVAL`` if none survive).

    This is the triangle-lifespan operation
    ``I(p1, p2, p3) = I_{p1} ∩ I_{p2} ∩ I_{p3}`` of Section 1.1, generalised
    to any arity (used for cliques, paths and stars in Appendix D).
    """
    lo = float("-inf")
    hi = float("inf")
    saw_any = False
    for iv in intervals:
        saw_any = True
        if iv.start > lo:
            lo = iv.start
        if iv.end < hi:
            hi = iv.end
        if hi < lo:
            return EMPTY_INTERVAL
    if not saw_any:
        return EMPTY_INTERVAL
    return Interval(lo, hi)


def union_length(intervals: Iterable[Interval]) -> float:
    """Length of the union of a collection of intervals.

    Implements ``|I|`` for a *set* of intervals as defined in Section 1.1
    ("If I is a set of intervals then |I| is the length of the union").
    Runs in ``O(k log k)`` for ``k`` intervals.
    """
    spans = sorted(
        (iv.start, iv.end) for iv in intervals if not iv.is_empty and iv.end > iv.start
    )
    total = 0.0
    cur_lo: Optional[float] = None
    cur_hi = 0.0
    for lo, hi in spans:
        if cur_lo is None:
            cur_lo, cur_hi = lo, hi
        elif lo <= cur_hi:
            if hi > cur_hi:
                cur_hi = hi
        else:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
    if cur_lo is not None:
        total += cur_hi - cur_lo
    return total
