"""Correctness tests for DurableTriangle (Section 3, Theorem 3.1).

The central guarantee: ``T_τ ⊆ reported ⊆ T^ε_τ``, each triangle reported
exactly once, anchored per the (I⁻, id) convention.
"""

import numpy as np
import pytest

from repro import DurableTriangleIndex, TemporalPointSet, ValidationError
from repro.baselines import brute_force_triangles, triangle_bounds

from conftest import random_tps


def assert_sandwich(tps, tau, epsilon, records):
    must, may = triangle_bounds(tps, tau, epsilon)
    got = [r.key for r in records]
    got_set = set(got)
    assert len(got) == len(got_set), "duplicate triangles reported"
    missing = must - got_set
    assert not missing, f"missed exact triangles: {sorted(missing)[:5]}"
    extra = got_set - may
    assert not extra, f"reported non-ε-triangles: {sorted(extra)[:5]}"


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("epsilon", [0.25, 0.5, 1.0])
    def test_sandwich_l2(self, seed, epsilon):
        tps = random_tps(n=70, seed=seed)
        idx = DurableTriangleIndex(tps, epsilon=epsilon)
        for tau in (1.0, 3.0, 6.0):
            assert_sandwich(tps, tau, epsilon, idx.query(tau))

    @pytest.mark.parametrize("metric", ["l1", "linf", "l3"])
    def test_sandwich_other_metrics(self, metric):
        tps = random_tps(n=60, seed=42, metric=metric)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        assert_sandwich(tps, 2.0, 0.5, idx.query(2.0))

    @pytest.mark.parametrize("backend", ["cover-tree", "grid"])
    def test_backends_agree_on_guarantee(self, backend):
        tps = random_tps(n=60, seed=13)
        idx = DurableTriangleIndex(tps, epsilon=0.5, backend=backend)
        assert_sandwich(tps, 2.0, 0.5, idx.query(2.0))

    def test_custom_callable_metric(self):
        tps = random_tps(n=40, seed=3)
        custom = TemporalPointSet(
            tps.points,
            tps.starts,
            tps.ends,
            metric=lambda x, y: float(np.sqrt(((x - y) ** 2).sum())),
        )
        idx = DurableTriangleIndex(custom, epsilon=0.5)
        assert_sandwich(custom, 2.0, 0.5, idx.query(2.0))

    def test_higher_dim(self):
        tps = random_tps(n=50, seed=19, dim=4, box=2.5)
        idx = DurableTriangleIndex(tps, epsilon=0.5)
        assert_sandwich(tps, 2.0, 0.5, idx.query(2.0))


class TestRecordShape:
    def test_anchor_convention(self, medium_tps):
        idx = DurableTriangleIndex(medium_tps, epsilon=0.5)
        for r in idx.query(2.0):
            pk = medium_tps.anchor_key(r.anchor)
            assert pk > medium_tps.anchor_key(r.q)
            assert pk > medium_tps.anchor_key(r.s)
            assert r.q < r.s

    def test_lifespans_correct(self, medium_tps):
        for r in DurableTriangleIndex(medium_tps, epsilon=0.5).query(2.0):
            want = medium_tps.pattern_lifespan([r.anchor, r.q, r.s])
            assert r.lifespan == want
            assert r.durability >= 2.0

    def test_durability_at_least_tau(self, medium_tps):
        idx = DurableTriangleIndex(medium_tps, epsilon=0.25)
        for tau in (1.0, 4.0):
            for r in idx.query(tau):
                assert r.durability >= tau

    def test_monotone_in_tau(self, medium_tps):
        idx = DurableTriangleIndex(medium_tps, epsilon=0.5)
        keys_small = {r.key for r in idx.query(1.0)}
        keys_big = {r.key for r in idx.query(5.0)}
        assert keys_big <= keys_small


class TestAnchoredAndCount:
    def test_query_anchored_partitions_result(self, small_tps):
        idx = DurableTriangleIndex(small_tps, epsilon=0.5)
        full = sorted(r.key for r in idx.query(2.0))
        per_anchor = sorted(
            r.key for p in range(small_tps.n) for r in idx.query_anchored(p, 2.0)
        )
        assert full == per_anchor

    def test_count_matches_query(self, small_tps):
        idx = DurableTriangleIndex(small_tps, epsilon=0.5)
        assert idx.count(2.0) == len(idx.query(2.0))

    def test_stats_shape(self, small_tps):
        info = DurableTriangleIndex(small_tps, epsilon=0.5).stats()
        assert info["n"] == small_tps.n
        assert info["groups"] >= 1


class TestEdgeCases:
    def test_invalid_epsilon(self, small_tps):
        with pytest.raises(ValidationError):
            DurableTriangleIndex(small_tps, epsilon=0.0)
        with pytest.raises(ValidationError):
            DurableTriangleIndex(small_tps, epsilon=1.5)

    def test_invalid_tau(self, small_tps):
        idx = DurableTriangleIndex(small_tps, epsilon=0.5)
        with pytest.raises(ValidationError):
            idx.query(0.0)

    def test_tau_larger_than_all_lifespans(self, small_tps):
        idx = DurableTriangleIndex(small_tps, epsilon=0.5)
        assert idx.query(1e9) == []

    def test_no_triangles_when_far_apart(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        tps = TemporalPointSet(pts, [0, 0, 0], [10, 10, 10])
        assert DurableTriangleIndex(tps, epsilon=0.5).query(1.0) == []

    def test_single_clique_all_reported(self):
        # Five co-located, co-temporal points: C(5,3) = 10 triangles.
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 0.2, size=(5, 2))
        tps = TemporalPointSet(pts, [0] * 5, [10] * 5)
        recs = DurableTriangleIndex(tps, epsilon=0.5).query(5.0)
        assert len(recs) == 10
        assert len({r.key for r in recs}) == 10

    def test_identical_starts_tie_break(self):
        # All starts equal: anchor must be the highest id of each triple.
        pts = np.zeros((4, 2))
        tps = TemporalPointSet(pts, [0, 0, 0, 0], [10, 9, 8, 7])
        recs = DurableTriangleIndex(tps, epsilon=0.5).query(1.0)
        assert len(recs) == 4  # C(4,3)
        for r in recs:
            assert r.anchor > r.s > r.q

    def test_brute_force_agrees_with_itself(self, small_tps):
        # Sanity: brute force keys unique.
        recs = brute_force_triangles(small_tps, 2.0)
        keys = [r.key for r in recs]
        assert len(keys) == len(set(keys))
