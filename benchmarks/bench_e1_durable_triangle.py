"""E1 — Table 2 row 1 / Theorem 3.1: DurableTriangle scaling.

Claims under test:

* query time grows near-linearly in ``n`` when OUT ∝ n (constant
  density workload) — the ``Õ(n·ε^{-O(ρ)} + OUT)`` bound;
* the index beats the comparators whose cost ignores the durable output
  size: brute-force node-iterator, explicit-graph ``m^{3/2}`` listing,
  and the durable-join baseline (all exact, all super-linear).
"""

import pytest

from repro.baselines import (
    brute_force_triangles,
    durable_join_triangles,
    explicit_graph_triangles,
)

from helpers import EPSILON, TAU, triangle_index, workload

SIZES = [400, 800, 1600, 3200]


@pytest.mark.parametrize("n", SIZES)
def test_ours_scaling(benchmark, n):
    idx = triangle_index(n)
    result = benchmark.pedantic(idx.query, args=(TAU,), rounds=3, iterations=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E1 ours: n sweep"


@pytest.mark.parametrize("n", SIZES)
def test_build_scaling(benchmark, n):
    from repro import DurableTriangleIndex

    tps = workload(n)
    benchmark.pedantic(
        lambda: DurableTriangleIndex(tps, epsilon=EPSILON), rounds=3, iterations=1
    )
    benchmark.extra_info["n"] = n
    benchmark.group = "E1 ours: index build"


@pytest.mark.parametrize("n", [800, 3200])
@pytest.mark.parametrize(
    "name,fn",
    [
        ("ours", None),
        ("brute-force", brute_force_triangles),
        ("explicit-graph", explicit_graph_triangles),
        ("durable-join", durable_join_triangles),
    ],
)
def test_vs_baselines(benchmark, n, name, fn):
    tps = workload(n)
    if name == "ours":
        idx = triangle_index(n)
        fn = lambda tps, tau: idx.query(tau)
    result = benchmark.pedantic(fn, args=(tps, TAU), rounds=3, iterations=1)
    benchmark.extra_info["algorithm"] = name
    benchmark.extra_info["out"] = len(result)
    benchmark.group = f"E1 vs baselines, sparse (n={n})"


def _dense_workload():
    """Section 1.2's hard regime: dense proximity neighbourhoods.

    Four tight communities make the explicit edge set (and its static
    triangle count) quadratic/cubic in the community size, while a
    selective τ keeps the durable output tiny — exactly where implicit
    output-sensitive reporting should dominate graph materialisation.
    """
    from repro import TemporalPointSet
    from repro.datasets import clustered_points, uniform_lifespans

    pts = clustered_points(
        600, n_clusters=4, box=20.0, cluster_std=0.25, seed=3
    )
    starts, ends = uniform_lifespans(600, horizon=60, max_len=20, seed=3)
    return TemporalPointSet(pts, starts, ends)


DENSE_TAU = 18.0


@pytest.mark.parametrize(
    "name",
    ["ours", "brute-force", "explicit-graph", "durable-join"],
)
def test_dense_clusters(benchmark, name):
    from repro import DurableTriangleIndex

    tps = _dense_workload()
    if name == "ours":
        idx = DurableTriangleIndex(tps, epsilon=EPSILON)
        fn = lambda: idx.query(DENSE_TAU)
    elif name == "brute-force":
        fn = lambda: brute_force_triangles(tps, DENSE_TAU)
    elif name == "explicit-graph":
        fn = lambda: explicit_graph_triangles(tps, DENSE_TAU)
    else:
        fn = lambda: durable_join_triangles(tps, DENSE_TAU)
    result = benchmark.pedantic(fn, rounds=3, iterations=1)
    benchmark.extra_info["algorithm"] = name
    benchmark.extra_info["out"] = len(result)
    benchmark.group = "E1 vs baselines, dense clusters (n=600, selective tau)"
