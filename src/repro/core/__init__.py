"""The paper's algorithms (Sections 3-5, Appendices B-E)."""

from .triangles import DurableTriangleIndex, triangles_for_anchor
from .enumeration import DelayGuaranteedEnumerator, anchor_has_triangle
from .incremental import (
    AnchorBackend,
    CoverTreeAnchorBackend,
    IncrementalTriangleSession,
    compute_activation,
)
from .aggregate import SumPairIndex, UnionPairIndex
from .linf import LinfAnchorBackend, LinfDurableRange, LinfTriangleIndex
from .dynamic import DynamicDurableStructure, DynamicTriangleStream, StreamEvent
from .patterns import (
    PatternIndex,
    find_durable_cliques,
    find_durable_paths,
    find_durable_stars,
)
from .counting import (
    count_delta_for_anchor,
    count_durable_triangles,
    count_triangles_for_anchor,
)
from .multi import MultiIntervalTriangleFinder, MultiTriangleRecord

__all__ = [
    "DurableTriangleIndex",
    "triangles_for_anchor",
    "DelayGuaranteedEnumerator",
    "anchor_has_triangle",
    "AnchorBackend",
    "CoverTreeAnchorBackend",
    "IncrementalTriangleSession",
    "compute_activation",
    "SumPairIndex",
    "UnionPairIndex",
    "LinfAnchorBackend",
    "LinfDurableRange",
    "LinfTriangleIndex",
    "DynamicDurableStructure",
    "DynamicTriangleStream",
    "StreamEvent",
    "PatternIndex",
    "find_durable_cliques",
    "find_durable_paths",
    "find_durable_stars",
    "count_delta_for_anchor",
    "count_durable_triangles",
    "count_triangles_for_anchor",
    "MultiIntervalTriangleFinder",
    "MultiTriangleRecord",
]
