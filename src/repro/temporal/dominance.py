"""Canonical-run dominance reporting over lifespans.

This module implements the temporal layer of the durable-ball structures
``D`` and ``D'`` (Section 2.2 of the paper).  For the canonical ball of a
cover-tree node we must answer, given an anchor ``p`` with lifespan
``I_p = [sp, ep]`` and durability ``τ``:

    report every member ``q`` with  ``(I⁻_q, id_q) <lex (sp, id_p)``
    and ``I⁺_q ≥ sp + τ``            (``durableBallQ``)

and, for the incremental algorithms (``durableBallQ'``), split the result
into

    ``Λ   = { q : sp + τ  ≤ I⁺_q < sp + τ≺ }``  (ends inside the delta window)
    ``Λ̄  = { q : I⁺_q ≥ sp + τ≺ }``            (long-lived witnesses)

The structure is a merge-sort tree: members sorted by ``(start, id)``;
an implicit segment tree over that order; each segment node stores its
members sorted by ``end`` *descending*.  A query decomposes the
``(start, id)``-prefix into ``O(log m)`` segment nodes and, inside each,
the qualifying members form a contiguous *run* of the end-descending
array.  Runs are the paper's "implicit representation" of canonical
subsets: counting is ``O(log² m)``, enumeration is output-sensitive, and
merging runs lazily yields members in globally descending ``I⁺`` order
(needed by ``ReportSUMPair``, Algorithm 4).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

__all__ = ["Run", "RunSet", "DominanceIndex"]

_INF = float("inf")


@dataclass(frozen=True, slots=True)
class Run:
    """A contiguous slice ``[lo, hi)`` of one segment node's end-descending array."""

    node: int
    lo: int
    hi: int

    @property
    def count(self) -> int:
        return self.hi - self.lo


class RunSet:
    """The result of a dominance query: a set of runs over one index.

    Supports counting, plain enumeration, lazy descending-``I⁺``
    enumeration, and bounded "first k" extraction (used by the
    ``DetectTriangle`` cardinality tests, which only ever need to know
    whether a set has 0, 1, or ≥ 2 members).
    """

    __slots__ = ("_index", "_runs", "_count")

    def __init__(self, index: "DominanceIndex", runs: List[Run]) -> None:
        self._index = index
        self._runs = runs
        self._count = sum(r.hi - r.lo for r in runs)

    @property
    def count(self) -> int:
        """Number of qualifying members."""
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def runs(self) -> Sequence[Run]:
        return self._runs

    def ids(self) -> List[int]:
        """Materialise all qualifying member ids (output-sensitive)."""
        out: List[int] = []
        nodes = self._index._node_ids
        for r in self._runs:
            out.extend(nodes[r.node][r.lo : r.hi])
        return out

    def first_ids(self, k: int) -> List[int]:
        """Up to ``k`` qualifying ids, touching only ``O(k)`` entries."""
        out: List[int] = []
        nodes = self._index._node_ids
        for r in self._runs:
            take = min(k - len(out), r.hi - r.lo)
            if take > 0:
                out.extend(nodes[r.node][r.lo : r.lo + take])
            if len(out) >= k:
                break
        return out

    def iter_desc_by_end(self) -> Iterator[Tuple[float, int]]:
        """Yield ``(end, id)`` lazily in descending ``end`` order.

        Implemented as a heap merge of the runs (each run is already
        end-descending); ``O(log r)`` per yielded item for ``r`` runs.
        """
        ends = self._index._node_ends
        ids = self._index._node_ids
        heap: List[Tuple[float, int, int, int, int]] = []
        for r in self._runs:
            if r.lo < r.hi:
                heap.append(
                    (-ends[r.node][r.lo], ids[r.node][r.lo], r.node, r.lo, r.hi)
                )
        heapq.heapify(heap)
        while heap:
            neg_end, pid, node, pos, hi = heapq.heappop(heap)
            yield (-neg_end, pid)
            nxt = pos + 1
            if nxt < hi:
                heapq.heappush(
                    heap, (-ends[node][nxt], ids[node][nxt], node, nxt, hi)
                )


class DominanceIndex:
    """Static merge-sort tree over ``(start, end, id)`` lifespan records.

    Parameters
    ----------
    starts, ends, ids:
        Parallel sequences describing the members of one canonical group.
        ``ids`` are global point identifiers (used for tie-breaking and
        reporting).
    """

    __slots__ = (
        "_m",
        "_size",
        "_keys",
        "_order",
        "_node_ends",
        "_node_ids",
        "max_end",
        "member_ids",
    )

    def __init__(
        self,
        starts: Sequence[float],
        ends: Sequence[float],
        ids: Sequence[int],
    ) -> None:
        m = len(starts)
        if not (len(ends) == len(ids) == m):
            raise ValueError("starts/ends/ids must have equal length")
        order = sorted(range(m), key=lambda i: (starts[i], ids[i]))
        self._m = m
        self._order = [ids[i] for i in order]
        self._keys: List[Tuple[float, int]] = [
            (starts[i], ids[i]) for i in order
        ]
        # Implicit segment tree over positions [0, m): node 1 is the root,
        # leaves are nodes [size, size + m).  Each node stores its range's
        # (end, id) pairs sorted by end descending, id ascending.
        size = 1
        while size < max(m, 1):
            size *= 2
        self._size = size
        node_ends: List[List[float]] = [[] for _ in range(2 * size)]
        node_ids: List[List[int]] = [[] for _ in range(2 * size)]
        for pos, i in enumerate(order):
            node_ends[size + pos] = [float(ends[i])]
            node_ids[size + pos] = [ids[i]]
        for node in range(size - 1, 0, -1):
            le, li = node_ends[2 * node], node_ids[2 * node]
            re, ri = node_ends[2 * node + 1], node_ids[2 * node + 1]
            merged_e: List[float] = []
            merged_i: List[int] = []
            a = b = 0
            while a < len(le) and b < len(re):
                if (-le[a], li[a]) <= (-re[b], ri[b]):
                    merged_e.append(le[a])
                    merged_i.append(li[a])
                    a += 1
                else:
                    merged_e.append(re[b])
                    merged_i.append(ri[b])
                    b += 1
            merged_e.extend(le[a:])
            merged_i.extend(li[a:])
            merged_e.extend(re[b:])
            merged_i.extend(ri[b:])
            node_ends[node] = merged_e
            node_ids[node] = merged_i
        self._node_ends = node_ends
        self._node_ids = node_ids
        self.max_end = max((float(e) for e in ends), default=-_INF)
        self.member_ids = list(ids)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._m

    def _prefix_len(self, key: Tuple[float, int]) -> int:
        """Number of members with ``(start, id)`` lexicographically < ``key``."""
        import bisect

        return bisect.bisect_left(self._keys, key)

    def _prefix_nodes(self, t: int) -> List[int]:
        """Decompose positions ``[0, t)`` into canonical segment-tree nodes."""
        out: List[int] = []
        lo = self._size
        hi = self._size + t
        while lo < hi:
            if lo & 1:
                out.append(lo)
                lo += 1
            if hi & 1:
                hi -= 1
                out.append(hi)
            lo //= 2
            hi //= 2
        return out

    @staticmethod
    def _first_below(desc: List[float], y: float) -> int:
        """First index of an end-descending list whose value is < ``y``.

        Equivalently the count of entries ≥ ``y``.
        """
        lo, hi = 0, len(desc)
        while lo < hi:
            mid = (lo + hi) // 2
            if desc[mid] >= y:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def stab(
        self,
        key: Tuple[float, int],
        end_at_least: float,
        end_below: float = _INF,
    ) -> RunSet:
        """Members with ``(start, id) < key`` and ``end ∈ [end_at_least, end_below)``.

        With ``end_below = +inf`` this is exactly the ``durableBallQ``
        temporal predicate; with a finite upper bound it produces the
        ``Λ`` sets of ``durableBallQ'`` (Section 4.1, Figure 2).
        """
        t = self._prefix_len(key)
        runs: List[Run] = []
        if t:
            for node in self._prefix_nodes(t):
                desc = self._node_ends[node]
                if not desc or desc[0] < end_at_least:
                    continue
                lo = 0 if end_below == _INF else self._first_below(desc, end_below)
                hi = self._first_below(desc, end_at_least)
                if lo < hi:
                    runs.append(Run(node, lo, hi))
        return RunSet(self, runs)

    def stab_split(
        self,
        key: Tuple[float, int],
        end_at_least: float,
        end_split: float,
    ) -> Tuple[RunSet, RunSet]:
        """``durableBallQ'``: return ``(Λ, Λ̄)`` for the split threshold.

        ``Λ`` holds members whose end lies in ``[end_at_least, end_split)``
        and ``Λ̄`` those with end ``≥ end_split``; both restricted to the
        ``(start, id) < key`` prefix.
        """
        t = self._prefix_len(key)
        low_runs: List[Run] = []
        high_runs: List[Run] = []
        if t:
            for node in self._prefix_nodes(t):
                desc = self._node_ends[node]
                if not desc or desc[0] < end_at_least:
                    continue
                a = self._first_below(desc, end_split)
                b = self._first_below(desc, end_at_least)
                if a > 0:
                    high_runs.append(Run(node, 0, a))
                if a < b:
                    low_runs.append(Run(node, a, b))
        return RunSet(self, low_runs), RunSet(self, high_runs)

    def count(
        self,
        key: Tuple[float, int],
        end_at_least: float,
        end_below: float = _INF,
    ) -> int:
        """Count without materialising runs (``O(log² m)``)."""
        return self.stab(key, end_at_least, end_below).count
