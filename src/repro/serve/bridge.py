"""Async bridge between the event loop and a shard's thread pool.

The serving loop never runs a solver on the event loop: plan execution
is pushed onto the shard's :class:`~concurrent.futures.ThreadPoolExecutor`
via :meth:`loop.run_in_executor`, and admission is bounded — a batch
that does not fit inside the shard's queue limit is rejected up front
(the HTTP layer turns that into a 429) instead of queueing without
bound.  Slots are released by a done-callback on each future, so a
client that disconnects mid-stream can never leak capacity.
"""

from __future__ import annotations

import asyncio
import threading
from typing import TYPE_CHECKING, List

from ..engine import QueryPlan, QueryResult
from ..engine.executor import execute_plan
from ..errors import ReproError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .registry import DatasetShard

__all__ = ["OverloadedError", "AdmissionQueue", "submit_plans"]


class OverloadedError(ReproError):
    """Raised when a shard's admission queue cannot take a batch."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionQueue:
    """Bounded counter of queued-plus-running queries for one shard."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValidationError(f"admission limit must be >= 1, got {limit!r}")
        self.limit = limit
        self._lock = threading.Lock()
        self._in_flight = 0
        self._rejected = 0

    def try_acquire(self, n: int = 1) -> bool:
        """Reserve ``n`` slots atomically; ``False`` if they don't all fit."""
        with self._lock:
            if self._in_flight + n > self.limit:
                self._rejected += n
                return False
            self._in_flight += n
            return True

    def release(self, n: int = 1) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - n)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def rejected(self) -> int:
        """Cumulative count of slots denied at admission (telemetry)."""
        with self._lock:
            return self._rejected


def submit_plans(
    shard: "DatasetShard", plans: List[QueryPlan]
) -> "List[asyncio.Future[QueryResult]]":
    """Admit a batch and schedule every plan on the shard's executor.

    The whole batch is admitted atomically — all-or-nothing — so a
    half-admitted request can never wedge the queue.  Raises
    :class:`OverloadedError` when the slots don't fit.  Each returned
    future releases its admission slot and bumps the shard's counters
    from a done-callback, whether or not the caller is still around to
    await it.
    """
    n = len(plans)
    if not shard.admission.try_acquire(n):
        raise OverloadedError(
            f"dataset {shard.name!r} is at its admission limit "
            f"({shard.admission.limit} queries in flight); retry later"
        )
    loop = asyncio.get_running_loop()
    futures: "List[asyncio.Future[QueryResult]]" = []
    for plan in plans:
        try:
            future = loop.run_in_executor(
                shard.executor, execute_plan, plan, shard.cache, False
            )
        except RuntimeError:
            # Executor already shut down (server stopping): give back the
            # slots nothing was scheduled for and surface as overload.
            shard.admission.release(n - len(futures))
            for f in futures:
                f.cancel()
            raise OverloadedError(
                f"dataset {shard.name!r} is shutting down"
            ) from None
        future.add_done_callback(_release_callback(shard, plan))
        futures.append(future)
    return futures


def _release_callback(shard: "DatasetShard", plan: QueryPlan):
    def _done(future: "asyncio.Future[QueryResult]") -> None:
        shard.admission.release(1)
        # The plan key's backend is the registry-resolved name, so the
        # shard's per-backend counters attribute work (and failures) to
        # the backend that actually ran — even when the future itself
        # died before producing a result envelope.
        if not future.cancelled() and future.exception() is None:
            result = future.result()
            shard.record_result(
                result.ok,
                backend=result.key.backend,
                cache_hit=result.cache_hit,
                build_seconds=result.build_seconds,
                query_seconds=result.query_seconds,
            )
        else:
            shard.record_result(False, backend=plan.key.backend)

    return _done
