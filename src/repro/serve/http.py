"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough protocol for the serving front end: request-line + header
parsing with hard size limits, ``Content-Length`` bodies, JSON replies,
and chunked transfer encoding for NDJSON streaming (so a response's
size never has to be known — or buffered — up front).  Every connection
carries exactly one request (``Connection: close``), which keeps the
state machine trivial; the closed-loop bench shows this is nowhere near
the bottleneck at the scales the solvers serve.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "Request",
    "ProtocolError",
    "read_request",
    "send_json",
    "start_chunked",
    "send_chunk",
    "end_chunked",
    "STATUS_REASONS",
]

#: Reason phrases for the statuses the server emits.
STATUS_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024


class ProtocolError(Exception):
    """Malformed or oversized request; carries the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """Decode the body as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` if the peer closed before sending one."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0]

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(400, "chunked request bodies are not supported")
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError:
        raise ProtocolError(400, f"bad Content-Length: {length_header!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"body of {length} bytes exceeds the limit")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(400, "request body shorter than Content-Length") from exc
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def _status_line(status: int) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    return f"HTTP/1.1 {status} {reason}\r\n".encode("latin-1")


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Send a complete JSON response (non-streaming endpoints)."""
    body = (json.dumps(payload) + "\n").encode("utf-8")
    writer.write(_status_line(status))
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
        **(extra_headers or {}),
    }
    for name, value in headers.items():
        writer.write(f"{name}: {value}\r\n".encode("latin-1"))
    writer.write(b"\r\n")
    writer.write(body)
    await writer.drain()


async def start_chunked(
    writer: asyncio.StreamWriter, status: int = 200,
    content_type: str = "application/x-ndjson",
) -> None:
    """Open a chunked response; follow with :func:`send_chunk` calls."""
    writer.write(_status_line(status))
    writer.write(
        (
            f"Content-Type: {content_type}\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
    )
    await writer.drain()


async def send_chunk(writer: asyncio.StreamWriter, payload: Any) -> None:
    """Send one NDJSON line as one HTTP chunk (flushed immediately)."""
    line = (json.dumps(payload) + "\n").encode("utf-8")
    writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
    await writer.drain()


async def end_chunked(writer: asyncio.StreamWriter) -> None:
    """Terminate a chunked response."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()
