"""Tests for the classic interval tree (Section 2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ValidationError
from repro.temporal import IntervalTree

from conftest import random_intervals


def brute_stab(intervals, t):
    return sorted(i for i, (lo, hi) in enumerate(intervals) if lo <= t <= hi)


def brute_overlap(intervals, a, b):
    return sorted(i for i, (lo, hi) in enumerate(intervals) if lo <= b and hi >= a)


class TestStab:
    def test_empty_tree(self):
        tree = IntervalTree([])
        assert tree.stab(0.0) == []
        assert tree.count_stab(0.0) == 0

    def test_single(self):
        tree = IntervalTree([(1.0, 3.0)])
        assert tree.stab(2.0) == [0]
        assert tree.stab(0.5) == []
        assert tree.stab(1.0) == [0]
        assert tree.stab(3.0) == [0]

    def test_rejects_inverted(self):
        with pytest.raises(ValidationError):
            IntervalTree([(3.0, 1.0)])

    @pytest.mark.parametrize("seed", range(5))
    def test_stab_matches_brute(self, seed):
        ivs = random_intervals(80, seed=seed)
        tree = IntervalTree(ivs)
        for t in np.linspace(-5, 80, 40):
            assert sorted(tree.stab(float(t))) == brute_stab(ivs, t)
            assert tree.count_stab(float(t)) == len(brute_stab(ivs, t))

    def test_custom_ids(self):
        tree = IntervalTree([(0, 2), (1, 3)], ids=[10, 20])
        assert sorted(tree.stab(1.5)) == [10, 20]


class TestOverlap:
    @pytest.mark.parametrize("seed", range(5))
    def test_overlap_matches_brute(self, seed):
        ivs = random_intervals(60, seed=seed + 100)
        tree = IntervalTree(ivs)
        rng = np.random.default_rng(seed)
        for _ in range(30):
            a = float(rng.uniform(-5, 80))
            b = a + float(rng.uniform(0, 30))
            assert sorted(tree.report_overlapping(a, b)) == brute_overlap(ivs, a, b)
            assert tree.count_overlapping(a, b) == len(brute_overlap(ivs, a, b))

    def test_inverted_query_is_empty(self):
        tree = IntervalTree([(0, 10)])
        assert tree.report_overlapping(5, 3) == []
        assert tree.count_overlapping(5, 3) == 0

    def test_degenerate_query(self):
        tree = IntervalTree([(0, 10), (12, 15)])
        assert tree.report_overlapping(10, 10) == [0]

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_property(self, seed):
        ivs = random_intervals(25, seed=seed)
        tree = IntervalTree(ivs)
        rng = np.random.default_rng(seed)
        a = float(rng.uniform(-5, 60))
        b = a + float(rng.uniform(0, 20))
        assert sorted(tree.report_overlapping(a, b)) == brute_overlap(ivs, a, b)
