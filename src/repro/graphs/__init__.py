"""Explicit proximity graphs and classic graph classes."""

from .proximity import ProximityGraph, build_proximity_graph
from .classes import (
    as_temporal,
    grid_graph_points,
    ring_graph_points,
    unit_interval_graph_points,
)

__all__ = [
    "ProximityGraph",
    "build_proximity_graph",
    "as_temporal",
    "grid_graph_points",
    "ring_graph_points",
    "unit_interval_graph_points",
]
