"""Cost-weighted rendezvous placement of datasets onto workers.

The router owns dataset placement: every ``POST /datasets`` picks the
worker that will host the dataset's shard, and that choice must be

* **deterministic** — the same dataset name, shape and worker fleet
  must map to the same worker across router restarts, so a restarted
  router (replaying its manifest) rebuilds the exact same layout and
  cache-key locality is preserved;
* **stable under churn** — adding or removing one worker must move as
  few datasets as possible (no modular-hash reshuffle);
* **cost-aware** — a worker advertising a backend that the PR-4
  :class:`~repro.backends.cost.CostModel` prices cheap for this
  dataset shape should attract proportionally more datasets.

Weighted rendezvous (highest-random-weight) hashing gives all three:
each ``(dataset, worker)`` pair hashes to a uniform draw ``u ∈ (0, 1]``
(SHA-256, salt-free — Python's randomized ``hash()`` would break
restart determinism), the draw is stretched by the worker's
:meth:`~repro.backends.cost.CostModel.placement_weight` into the key
``-ln(u) / weight``, and the smallest key wins.  Removing a worker
only re-places the datasets it owned; the weight enters exactly as in
weighted-HRW literature, so long-run dataset share is proportional to
weight.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..backends.cost import CostModel, QueryFeatures
from ..errors import ValidationError

__all__ = [
    "WorkerCandidate",
    "features_from_spec",
    "placement_scores",
    "choose_worker",
]


@dataclass(frozen=True)
class WorkerCandidate:
    """One placeable worker slot.

    ``worker`` is the stable slot id (``worker-0`` …), which outlives
    individual worker processes — restarts keep the slot, so placement
    never moves on a crash.  ``backends`` is the subset of backend
    names the worker advertises (``None`` = everything registered),
    which feeds the cost weight.
    """

    worker: str
    backends: Optional[Tuple[str, ...]] = None


def features_from_spec(spec: Any) -> QueryFeatures:
    """Dataset shape for placement scoring, straight off the wire spec.

    Placement must not materialise the workload (that happens on the
    chosen worker), so the shape is read from the declarative spec's
    own fields — ``n``/``dim``/``metric`` with neutral defaults for
    specs that omit them (e.g. CSV datasets whose size is unknown until
    loaded).  A wrong guess only skews the *weight*, never correctness:
    any worker can serve any dataset.
    """
    if not isinstance(spec, Mapping):
        spec = {}

    def _as_int(key: str, default: int) -> int:
        try:
            return int(spec.get(key, default) or default)
        except (TypeError, ValueError):
            return default

    return QueryFeatures(
        n=_as_int("n", 1),
        dim=_as_int("dim", 2),
        metric=str(spec.get("metric", "l2")),
        n_taus=1,
    )


def _uniform(dataset: str, worker: str) -> float:
    """Deterministic draw in ``(0, 1]`` for one (dataset, worker) pair."""
    digest = hashlib.sha256(f"{dataset}\x00{worker}".encode("utf-8")).digest()
    return (int.from_bytes(digest[:8], "big") + 1) / 2.0**64


def placement_scores(
    dataset: str,
    features: QueryFeatures,
    candidates: Sequence[WorkerCandidate],
    cost_model: CostModel,
) -> Dict[str, float]:
    """Every candidate's rendezvous key (smaller wins) — the audit trail
    behind :func:`choose_worker`, surfaced for tests and ``/stats``."""
    return {
        cand.worker: -math.log(_uniform(dataset, cand.worker))
        / cost_model.placement_weight(features, cand.backends)
        for cand in candidates
    }


def choose_worker(
    dataset: str,
    features: QueryFeatures,
    candidates: Sequence[WorkerCandidate],
    cost_model: CostModel,
) -> str:
    """The worker slot that hosts ``dataset`` (deterministic)."""
    if not candidates:
        raise ValidationError("cannot place a dataset: the worker pool is empty")
    scores = placement_scores(dataset, features, candidates, cost_model)
    # Ties (astronomically unlikely with 64-bit draws, but cheap to
    # pin down) break on the slot id so the choice stays deterministic.
    return min(sorted(scores), key=lambda worker: (scores[worker], worker))
