"""Tests for the dynamic setting (Appendix C, Theorem C.1)."""

import numpy as np
import pytest

from repro import TemporalPointSet, ValidationError
from repro.baselines import triangle_bounds
from repro.core.dynamic import DynamicDurableStructure, DynamicTriangleStream
from repro.errors import StructureError

from conftest import random_tps


class TestStreamEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_stream_matches_offline(self, seed):
        eps = 0.5
        tau = 3.0
        tps = random_tps(n=60, seed=seed)
        stream = DynamicTriangleStream(tps, tau, epsilon=eps)
        recs = stream.run()
        keys = [r.key for r in recs]
        assert len(keys) == len(set(keys)), "stream reported a duplicate"
        must, may = triangle_bounds(tps, tau, eps)
        got = set(keys)
        assert must <= got <= may

    def test_triangles_anchored_at_activation(self):
        tps = random_tps(n=50, seed=9)
        stream = DynamicTriangleStream(tps, 2.0, epsilon=0.5)
        for ev in stream.events():
            if ev.kind == "activate":
                for r in ev.triangles:
                    assert r.anchor == ev.point

    def test_event_ordering(self):
        tps = random_tps(n=40, seed=11)
        times = [ev.time for ev in DynamicTriangleStream(tps, 2.0).events()]
        assert times == sorted(times)

    def test_short_lived_points_never_inserted(self):
        tps = random_tps(n=40, seed=13)
        tau = 6.0
        inserted = {
            ev.point
            for ev in DynamicTriangleStream(tps, tau).events()
            if ev.kind == "activate"
        }
        for p in inserted:
            assert tps.duration(p) >= tau

    def test_invalid_tau(self):
        tps = random_tps(n=10, seed=0)
        with pytest.raises(ValidationError):
            DynamicTriangleStream(tps, 0.0)


class TestStructureMechanics:
    def test_double_insert_rejected(self):
        tps = random_tps(n=10, seed=0)
        st = DynamicDurableStructure(tps)
        st.insert(0)
        with pytest.raises(StructureError):
            st.insert(0)

    def test_delete_requires_alive(self):
        tps = random_tps(n=10, seed=0)
        st = DynamicDurableStructure(tps)
        with pytest.raises(StructureError):
            st.delete(3)

    def test_live_count_tracks(self):
        tps = random_tps(n=10, seed=0)
        st = DynamicDurableStructure(tps)
        st.insert(0)
        st.insert(1)
        assert st.live_count == 2
        st.delete(0)
        assert st.live_count == 1

    def test_insert_reports_cotemporal_cluster(self):
        pts = np.zeros((4, 2))
        tps = TemporalPointSet(pts, [0, 1, 2, 3], [20, 20, 20, 20])
        st = DynamicDurableStructure(tps, epsilon=0.5)
        assert st.insert(0) == []
        assert len(st.insert(1)) == 0  # only a pair so far
        assert len(st.insert(2)) == 1  # first triangle
        assert len(st.insert(3)) == 3  # three new triangles anchored at 3

    def test_deleted_points_do_not_witness(self):
        pts = np.zeros((3, 2))
        tps = TemporalPointSet(pts, [0, 1, 2], [20, 20, 20])
        st = DynamicDurableStructure(tps)
        st.insert(0)
        st.insert(1)
        st.delete(0)
        assert st.insert(2) == []

    def test_compaction_happens(self):
        tps = random_tps(n=40, seed=3)
        st = DynamicDurableStructure(tps)
        order = np.argsort(tps.starts)
        for p in order[:30]:
            st.insert(int(p))
        for p in order[:20]:
            st.delete(int(p))
        assert st.n_full_rebuilds >= 1
        assert st.live_count == 10
