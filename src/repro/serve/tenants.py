"""Tenant identity, weighted shares and per-minute quotas (QoS half).

The serving tiers meter ``POST /query`` per tenant so one hot caller
cannot monopolise a shard and one scrape can answer "who is slow and
who is hogging".  A tenant file (``--api-keys``) maps API keys to
tenants::

    {
      "tenants": [
        {"key": "acme-key-1", "name": "acme", "weight": 3,
         "quota_per_minute": 600},
        {"key": "beta-key-9", "name": "beta", "weight": 1}
      ]
    }

* ``key`` — the ``X-API-Key`` request header value (unique per entry);
* ``name`` — the tenant every metric label and stats block reports;
  several keys may share one name (key rotation);
* ``weight`` — relative admission share.  Each shard's
  :class:`~repro.serve.bridge.AdmissionQueue` grants tenant *t* a
  **static** share of ``max(1, floor(limit × weight_t / Σ weights))``
  concurrently admitted queries.  Static — computed from the
  configured weights, not from who happens to be idle — so a
  saturating tenant can never occupy the whole queue and starve the
  others: everyone else's share stays free by construction;
* ``quota_per_minute`` — optional fixed-window rate quota on admitted
  queries; a breach is a 429 whose ``Retry-After`` is the seconds
  until the window resets.  Omitted = unmetered.

When a tenant file is configured, ``POST /query`` requires a known
``X-API-Key`` (401 otherwise); every other route — health, stats,
metrics, admin — stays open.  Without a tenant file nothing changes:
queries are anonymous and only the global admission limit applies.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..errors import ReproError, ValidationError

__all__ = ["AuthError", "Tenant", "TenantTable", "QUOTA_WINDOW_SECONDS"]

#: Fixed quota window length, seconds.
QUOTA_WINDOW_SECONDS = 60.0


class AuthError(ReproError):
    """Missing or unknown API key on a metered route (HTTP 401)."""


@dataclass(frozen=True)
class Tenant:
    """One tenant-file entry, validated."""

    key: str
    name: str
    weight: float = 1.0
    quota_per_minute: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.key or not isinstance(self.key, str):
            raise ValidationError(f"tenant key must be a non-empty string, got {self.key!r}")
        if not self.name or not isinstance(self.name, str):
            raise ValidationError(f"tenant name must be a non-empty string, got {self.name!r}")
        if not (isinstance(self.weight, (int, float)) and self.weight > 0):
            raise ValidationError(
                f"tenant {self.name!r} weight must be > 0, got {self.weight!r}"
            )
        if self.quota_per_minute is not None and (
            not isinstance(self.quota_per_minute, int) or self.quota_per_minute < 1
        ):
            raise ValidationError(
                f"tenant {self.name!r} quota_per_minute must be a positive "
                f"integer, got {self.quota_per_minute!r}"
            )


class _QuotaWindow:
    """Fixed-window usage for one tenant (monotonic clock)."""

    __slots__ = ("window", "used")

    def __init__(self) -> None:
        self.window = -1
        self.used = 0


class TenantTable:
    """Key → tenant resolution plus quota accounting.

    Thread-safe: resolution reads an immutable dict; quota windows
    update under a lock (the serve path calls from the event loop, the
    quota-remaining metrics callback from the scraping thread).
    """

    def __init__(self, tenants: Iterable[Tenant]) -> None:
        entries = list(tenants)
        if not entries:
            raise ValidationError("tenant table must contain at least one tenant")
        by_key: Dict[str, Tenant] = {}
        quotas: Dict[str, int] = {}
        weights: Dict[str, float] = {}
        for tenant in entries:
            if tenant.key in by_key:
                raise ValidationError(f"duplicate tenant key {tenant.key!r}")
            by_key[tenant.key] = tenant
            prior_weight = weights.get(tenant.name)
            if prior_weight is not None and prior_weight != tenant.weight:
                raise ValidationError(
                    f"tenant {tenant.name!r} has conflicting weights "
                    f"({prior_weight} vs {tenant.weight}) across its keys"
                )
            weights[tenant.name] = tenant.weight
            if tenant.quota_per_minute is not None:
                prior_quota = quotas.get(tenant.name)
                if prior_quota is not None and prior_quota != tenant.quota_per_minute:
                    raise ValidationError(
                        f"tenant {tenant.name!r} has conflicting quotas "
                        f"({prior_quota} vs {tenant.quota_per_minute}) across its keys"
                    )
                quotas[tenant.name] = tenant.quota_per_minute
        self._by_key = by_key
        self._weights = weights
        self._quotas = quotas
        self._lock = threading.Lock()
        self._usage: Dict[str, _QuotaWindow] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: str) -> "TenantTable":
        """Load the JSON tenant file documented in the module docstring."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise ValidationError(f"cannot read tenant file {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ValidationError(f"tenant file {path!r} is not valid JSON: {exc}") from exc
        return cls.from_spec(doc, source=path)

    @classmethod
    def from_spec(
        cls, doc: Union[Mapping[str, Any], List[Any]], source: str = "<spec>"
    ) -> "TenantTable":
        entries = doc.get("tenants") if isinstance(doc, Mapping) else doc
        if not isinstance(entries, list):
            raise ValidationError(
                f"tenant file {source!r} must be a list of entries or "
                "{'tenants': [...]}"
            )
        tenants = []
        for i, entry in enumerate(entries):
            if not isinstance(entry, Mapping):
                raise ValidationError(
                    f"tenant entry #{i} in {source!r} must be an object, got {entry!r}"
                )
            unknown = set(entry) - {"key", "name", "weight", "quota_per_minute"}
            if unknown:
                raise ValidationError(
                    f"tenant entry #{i} in {source!r} has unknown fields {sorted(unknown)!r}"
                )
            try:
                tenants.append(
                    Tenant(
                        key=entry.get("key"),
                        name=entry.get("name"),
                        weight=entry.get("weight", 1.0),
                        quota_per_minute=entry.get("quota_per_minute"),
                    )
                )
            except ValidationError as exc:
                raise ValidationError(f"tenant entry #{i} in {source!r}: {exc}") from exc
        return cls(tenants)

    # ------------------------------------------------------------------
    def resolve(self, api_key: Optional[str]) -> Tenant:
        """The tenant for an ``X-API-Key`` value; raises :class:`AuthError`."""
        if not api_key:
            raise AuthError("missing X-API-Key header (this server meters queries)")
        tenant = self._by_key.get(api_key)
        if tenant is None:
            raise AuthError("unknown API key")
        return tenant

    def weights(self) -> Dict[str, float]:
        """Tenant name → admission weight (feeds the admission queues)."""
        return dict(self._weights)

    def names(self) -> List[str]:
        return sorted(self._weights)

    # ------------------------------------------------------------------
    def check_and_consume(
        self, tenant_name: str, n: int, now: Optional[float] = None
    ) -> Optional[float]:
        """Charge ``n`` queries against the tenant's per-minute quota.

        Returns ``None`` when the charge fits (and commits it), else the
        ``Retry-After`` seconds until the current window resets — the
        charge is *not* committed on a breach, so a rejected burst does
        not eat the tenant's next window.
        """
        quota = self._quotas.get(tenant_name)
        if quota is None:
            return None
        if now is None:
            now = time.monotonic()
        window = int(now // QUOTA_WINDOW_SECONDS)
        with self._lock:
            usage = self._usage.setdefault(tenant_name, _QuotaWindow())
            if usage.window != window:
                usage.window = window
                usage.used = 0
            if usage.used + n > quota:
                return QUOTA_WINDOW_SECONDS - (now % QUOTA_WINDOW_SECONDS)
            usage.used += n
            return None

    def quota_snapshot(self, now: Optional[float] = None) -> Dict[str, Tuple[int, int]]:
        """Tenant name → ``(quota, remaining)`` for metered tenants."""
        if now is None:
            now = time.monotonic()
        window = int(now // QUOTA_WINDOW_SECONDS)
        out: Dict[str, Tuple[int, int]] = {}
        with self._lock:
            for name, quota in self._quotas.items():
                usage = self._usage.get(name)
                used = usage.used if usage is not None and usage.window == window else 0
                out[name] = (quota, max(0, quota - used))
        return out
