"""Keep-alive protocol coverage for the serving front end (ISSUE 3).

Drives the persistent-connection state machine over raw sockets (so
framing is asserted byte-exactly) and ``http.client`` (a real pooling
client): sequential and pipelined requests on one socket, keep-alive
negotiation (HTTP/1.0 vs 1.1, ``Connection: close``), idle-timeout
close, the per-connection request cap, graceful drain on shutdown, and
regressions for the framing bugfixes — duplicate/conflicting
``Content-Length``, ``Content-Length`` + ``Transfer-Encoding``,
reader-bounded oversized heads, monotonic uptime, and cancellation
mid-chunked-stream.
"""

import asyncio
import http.client
import json
import socket
import threading
import time
import types

import pytest

from repro.serve import DatasetRegistry, start_server_thread
from repro.serve.http import MAX_HEADER_BYTES, Request, want_keep_alive
from repro.serve.server import ConnectionState, ServeApp

from conftest import random_tps

SOCIAL_SPEC = {"workload": "social", "n": 80, "seed": 5}


# ----------------------------------------------------------------------
# Raw-socket helpers: exact bytes in, parsed frames out
# ----------------------------------------------------------------------
class RawConnection:
    """A raw TCP client that parses HTTP responses byte-exactly."""

    def __init__(self, handle, timeout=10.0):
        self.sock = socket.create_connection((handle.host, handle.port), timeout=timeout)
        self.buf = b""

    def send_request(self, method, path, headers=(), body=b"", version="HTTP/1.1",
                     content_length=None):
        lines = [f"{method} {path} {version}", "Host: test"]
        if content_length is None and (body or method == "POST"):
            lines.append(f"Content-Length: {len(body)}")
        elif content_length is not None:
            lines.append(f"Content-Length: {content_length}")
        lines.extend(headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        self.sock.sendall(head + body)

    def _fill(self):
        data = self.sock.recv(65536)
        if not data:
            raise ConnectionError("peer closed the connection")
        self.buf += data

    def _read_until(self, marker):
        while marker not in self.buf:
            self._fill()
        out, self.buf = self.buf.split(marker, 1)
        return out

    def _read_n(self, n):
        while len(self.buf) < n:
            self._fill()
        out, self.buf = self.buf[:n], self.buf[n:]
        return out

    def read_response(self):
        """Parse one response: (status, headers, body-bytes)."""
        head = self._read_until(b"\r\n\r\n").decode("latin-1")
        lines = head.split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding") == "chunked":
            body = b""
            while True:
                size = int(self._read_until(b"\r\n"), 16)
                chunk = self._read_n(size + 2)
                assert chunk.endswith(b"\r\n"), f"chunk not CRLF-terminated: {chunk!r}"
                if size == 0:
                    assert chunk == b"\r\n", f"stray bytes after terminator: {chunk!r}"
                    break
                body += chunk[:-2]
        elif "content-length" in headers:
            body = self._read_n(int(headers["content-length"]))
        else:
            # EOF-delimited body (identity framing, HTTP/1.0 streams).
            body = self.buf
            self.buf = b""
            while True:
                data = self.sock.recv(65536)
                if not data:
                    break
                body += data
        return status, headers, body

    def read_json(self):
        status, headers, body = self.read_response()
        return status, headers, json.loads(body)

    def expect_eof(self, timeout=5.0):
        """The server must close without sending any further bytes."""
        assert not self.buf, f"unconsumed bytes before EOF: {self.buf!r}"
        self.sock.settimeout(timeout)
        assert self.sock.recv(4096) == b""

    def close(self):
        self.sock.close()


def pooled_json(conn, method, path, body=None):
    """One request over a shared http.client connection."""
    conn.request(
        method, path,
        body=json.dumps(body) if body is not None else None,
        headers={"Content-Type": "application/json"},
    )
    resp = conn.getresponse()
    return resp.status, dict(resp.getheaders()), resp.read()


@pytest.fixture(scope="module")
def server():
    handle = start_server_thread(queue_limit=8)
    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
    status, _, _ = pooled_json(
        conn, "POST", "/datasets", {"name": "soc", "dataset": SOCIAL_SPEC}
    )
    conn.close()
    assert status == 201
    yield handle
    handle.stop()


# ----------------------------------------------------------------------
# Keep-alive request loop
# ----------------------------------------------------------------------
class TestKeepAlive:
    def test_sequential_requests_on_one_socket(self, server):
        raw = RawConnection(server)
        try:
            for i in range(3):
                raw.send_request("GET", "/health")
                status, headers, doc = raw.read_json()
                assert status == 200 and doc["ok"] is True
                assert headers["connection"] == "keep-alive"
                assert "timeout=" in headers["keep-alive"]
                assert "max=" in headers["keep-alive"]
        finally:
            raw.close()

    def test_pipelined_requests_are_answered_in_order(self, server):
        raw = RawConnection(server)
        try:
            # Two requests in one write: the loop must answer both, in
            # order, with byte-exact framing between them.
            raw.send_request("GET", "/health")
            raw.send_request("GET", "/stats")
            status1, _, doc1 = raw.read_json()
            status2, _, doc2 = raw.read_json()
            assert status1 == 200 and doc1["ok"] is True
            assert status2 == 200 and "shards" in doc2
        finally:
            raw.close()

    def test_interleaved_query_stats_health_on_reused_connection(self, server):
        app = server.app
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            _, _, data = pooled_json(conn, "GET", "/stats")
            before = json.loads(data)["server"]
            status, headers, data = pooled_json(
                conn, "POST", "/query",
                {"dataset": "soc",
                 "queries": [{"kind": "triangles", "taus": [2.0, 3.0]}]},
            )
            assert status == 200
            assert headers["Connection"] == "keep-alive"
            lines = [json.loads(ln) for ln in data.decode().strip().split("\n")]
            assert lines[-1]["type"] == "batch-end" and lines[-1]["ok"] is True
            status, _, _ = pooled_json(conn, "GET", "/health")
            assert status == 200
            status, _, data = pooled_json(conn, "GET", "/stats")
            after = json.loads(data)["server"]
            # Three requests since the baseline, zero new connections.
            assert after["requests_total"] - before["requests_total"] == 3
            assert after["connections"]["opened"] == before["connections"]["opened"]
            assert (
                after["connections"]["keepalive_reuses"]
                > before["connections"]["keepalive_reuses"]
            )
        finally:
            conn.close()

    def test_connection_close_header_is_honoured(self, server):
        raw = RawConnection(server)
        try:
            raw.send_request("GET", "/health", headers=["Connection: close"])
            status, headers, _ = raw.read_json()
            assert status == 200
            assert headers["connection"] == "close"
            assert "keep-alive" not in headers
            raw.expect_eof()
        finally:
            raw.close()

    def test_http10_defaults_to_close(self, server):
        raw = RawConnection(server)
        try:
            raw.send_request("GET", "/health", version="HTTP/1.0")
            status, headers, _ = raw.read_json()
            assert status == 200 and headers["connection"] == "close"
            raw.expect_eof()
        finally:
            raw.close()

    def test_http10_keep_alive_opt_in(self, server):
        raw = RawConnection(server)
        try:
            raw.send_request(
                "GET", "/health", version="HTTP/1.0",
                headers=["Connection: keep-alive"],
            )
            status, headers, _ = raw.read_json()
            assert status == 200 and headers["connection"] == "keep-alive"
            raw.send_request("GET", "/health")  # still open: serve another
            status, _, _ = raw.read_json()
            assert status == 200
        finally:
            raw.close()

    def test_http10_query_stream_is_identity_framed_and_closes(self, server):
        # HTTP/1.0 clients must never be sent chunked framing (RFC 7230
        # §3.3.1): the /query stream is raw NDJSON delimited by
        # connection close for them, even if they asked for keep-alive.
        raw = RawConnection(server)
        try:
            body = json.dumps(
                {"dataset": "soc",
                 "queries": [{"kind": "triangles", "tau": 2.0}],
                 "include_records": False}
            ).encode()
            raw.send_request(
                "POST", "/query", body=body, version="HTTP/1.0",
                headers=["Connection: keep-alive"],
            )
            status, headers, data = raw.read_response()
            assert status == 200 and headers["connection"] == "close"
            assert "transfer-encoding" not in headers
            # The EOF-delimited body is plain NDJSON — every line must
            # parse directly, with no chunk-size framing interleaved.
            lines = [json.loads(ln) for ln in data.decode().strip().split("\n")]
            assert lines[0]["type"] == "batch-start"
            assert lines[-1]["type"] == "batch-end" and lines[-1]["ok"] is True
        finally:
            raw.close()

    def test_want_keep_alive_rules(self):
        assert want_keep_alive(Request("GET", "/")) is True
        assert want_keep_alive(Request("GET", "/", headers={"connection": "close"})) is False
        assert want_keep_alive(
            Request("GET", "/", headers={"connection": "Keep-Alive, Upgrade"})
        ) is True
        assert want_keep_alive(Request("GET", "/", version="HTTP/1.0")) is False
        assert want_keep_alive(
            Request("GET", "/", headers={"connection": "keep-alive"}, version="HTTP/1.0")
        ) is True

    def test_error_responses_keep_the_connection_alive(self, server):
        # Application-level errors (routing, validation) consume the
        # whole request, so the connection stays reusable.
        raw = RawConnection(server)
        try:
            raw.send_request("GET", "/nope")
            status, headers, _ = raw.read_json()
            assert status == 404 and headers["connection"] == "keep-alive"
            body = json.dumps({"dataset": "ghost", "queries": [{"kind": "triangles", "tau": 2.0}]}).encode()
            raw.send_request("POST", "/query", body=body)
            status, headers, _ = raw.read_json()
            assert status == 404 and headers["connection"] == "keep-alive"
            raw.send_request("GET", "/health")
            status, _, doc = raw.read_json()
            assert status == 200 and doc["ok"] is True
        finally:
            raw.close()


class TestConnectionBounds:
    def test_idle_timeout_closes_the_connection(self):
        handle = start_server_thread(idle_timeout=0.3)
        try:
            raw = RawConnection(handle)
            try:
                raw.send_request("GET", "/health")
                status, headers, _ = raw.read_json()
                assert status == 200 and headers["connection"] == "keep-alive"
                t0 = time.monotonic()
                raw.expect_eof(timeout=5.0)  # no request within 0.3s -> close
                assert time.monotonic() - t0 < 4.0
            finally:
                raw.close()
            # A connection that never sends anything is reaped too.
            raw = RawConnection(handle)
            try:
                raw.expect_eof(timeout=5.0)
            finally:
                raw.close()
        finally:
            handle.stop()

    def test_stalled_body_times_out_with_400_not_idle_close(self):
        # The idle timeout must only cover the wait for a request head;
        # a body that stops arriving gets its own bound and an explicit
        # 400, instead of being silently reaped as an idle connection.
        handle = start_server_thread(idle_timeout=30.0)
        handle.app.body_timeout = 0.3
        try:
            raw = RawConnection(handle)
            try:
                raw.send_request("POST", "/query", body=b"{..", content_length=10)
                status, headers, doc = raw.read_json()
                assert status == 400 and "timed out" in doc["error"]
                assert headers["connection"] == "close"
                raw.expect_eof()
            finally:
                raw.close()
        finally:
            handle.stop()

    def test_slowly_arriving_body_is_not_reaped_as_idle(self):
        # A body that keeps making progress past the idle window must
        # still be served: the head wait is the only idle-bounded read.
        handle = start_server_thread(idle_timeout=0.4)
        try:
            raw = RawConnection(handle)
            try:
                body = b'{"unknown": 1}'
                raw.send_request("POST", "/datasets", content_length=len(body))
                for ch in body:  # trickle: ~0.7s total, > idle_timeout
                    raw.sock.sendall(bytes([ch]))
                    time.sleep(0.05)
                status, _, doc = raw.read_json()
                # Answered on the merits (bad register body -> 400 with
                # the route's message), not dropped mid-upload.
                assert status == 400 and "register body" in doc["error"]
            finally:
                raw.close()
        finally:
            handle.stop()

    def test_max_requests_per_connection_cap(self):
        handle = start_server_thread(max_requests_per_connection=2)
        try:
            raw = RawConnection(handle)
            try:
                raw.send_request("GET", "/health")
                status, headers, _ = raw.read_json()
                assert status == 200 and headers["connection"] == "keep-alive"
                assert headers["keep-alive"].endswith("max=1")
                raw.send_request("GET", "/health")
                status, headers, _ = raw.read_json()
                assert status == 200 and headers["connection"] == "close"
                raw.expect_eof()
            finally:
                raw.close()
        finally:
            handle.stop()

    def test_stats_reports_connection_counters(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            _, _, data = pooled_json(conn, "GET", "/stats")
            connections = json.loads(data)["server"]["connections"]
            assert connections["opened"] >= 1
            assert connections["active"] >= 1  # at least this connection
            assert connections["idle_timeout_seconds"] == 30.0
            assert connections["max_requests_per_connection"] == 1000
            assert connections["keepalive_reuses"] >= 0
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestShutdownDrain:
    def test_inflight_stream_finishes_before_shutdown(self, monkeypatch):
        import repro.serve.bridge as bridge_mod
        from repro.engine.executor import execute_plan as real_execute

        def slow_execute(plan, cache, raise_on_error=True, trace=None):
            time.sleep(0.4)
            return real_execute(plan, cache, raise_on_error, trace=trace)

        handle = start_server_thread(queue_limit=8)
        try:
            conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
            status, _, _ = pooled_json(
                conn, "POST", "/datasets",
                {"name": "d", "dataset": {"workload": "uniform", "n": 40}},
            )
            assert status == 201
            monkeypatch.setattr(bridge_mod, "execute_plan", slow_execute)

            outcome = {}

            def issue_query():
                c = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
                try:
                    outcome["status"], _, outcome["data"] = pooled_json(
                        c, "POST", "/query",
                        {"dataset": "d",
                         "queries": [{"kind": "triangles", "tau": 0.5}],
                         "include_records": False},
                    )
                finally:
                    c.close()

            t = threading.Thread(target=issue_query)
            t.start()
            time.sleep(0.15)  # the query is now mid-flight on the executor
            status, _, doc = pooled_json(conn, "POST", "/shutdown")
            assert status == 200 and json.loads(doc)["stopping"] is True
            t.join(10)
            conn.close()

            # The in-flight stream completed: terminal batch-end, ok.
            assert outcome["status"] == 200
            lines = [json.loads(ln) for ln in outcome["data"].decode().strip().split("\n")]
            assert lines[-1]["type"] == "batch-end" and lines[-1]["ok"] is True
            handle._thread.join(10)
            assert not handle._thread.is_alive()
        finally:
            handle.stop()

    def test_shutdown_response_closes_its_own_connection(self):
        handle = start_server_thread()
        try:
            raw = RawConnection(handle)
            try:
                raw.send_request("POST", "/shutdown", body=b"")
                status, headers, _ = raw.read_json()
                assert status == 200 and headers["connection"] == "close"
                raw.expect_eof()
            finally:
                raw.close()
            handle._thread.join(10)
            assert not handle._thread.is_alive()
        finally:
            handle.stop()

    def test_idle_keepalive_connection_is_reaped_on_shutdown(self):
        handle = start_server_thread()  # idle timeout 30s: drain must not wait it out
        try:
            idle = RawConnection(handle)
            try:
                idle.send_request("GET", "/health")
                assert idle.read_json()[0] == 200
                t0 = time.monotonic()
                handle.stop(timeout=10.0)
                assert time.monotonic() - t0 < 5.0  # idle conn cancelled, not awaited
                idle.expect_eof()
            finally:
                idle.close()
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Framing regressions (satellite bugfixes)
# ----------------------------------------------------------------------
class TestFramingRejections:
    def test_duplicate_content_length_is_rejected(self, server):
        raw = RawConnection(server)
        try:
            body = b"{}"
            raw.send_request(
                "POST", "/health", body=body,
                headers=[f"Content-Length: {len(body)}"],  # second copy, same value
            )
            status, headers, doc = raw.read_json()
            assert status == 400 and "Content-Length" in doc["error"]
            assert headers["connection"] == "close"
            raw.expect_eof()
        finally:
            raw.close()

    def test_conflicting_content_length_is_rejected(self, server):
        raw = RawConnection(server)
        try:
            raw.send_request(
                "POST", "/health", body=b"{}", content_length=2,
                headers=["Content-Length: 999"],
            )
            status, headers, doc = raw.read_json()
            assert status == 400 and "Content-Length" in doc["error"]
            assert headers["connection"] == "close"
            raw.expect_eof()
        finally:
            raw.close()

    def test_content_length_with_transfer_encoding_is_rejected(self, server):
        raw = RawConnection(server)
        try:
            raw.send_request(
                "POST", "/query", body=b"{}",
                headers=["Transfer-Encoding: gzip"],
            )
            status, headers, doc = raw.read_json()
            assert status == 400
            assert "Transfer-Encoding" in doc["error"]
            assert headers["connection"] == "close"
            raw.expect_eof()
        finally:
            raw.close()

    def test_non_integer_content_length_is_rejected(self, server):
        for bad in ("+2", "2_0", "-1"):
            raw = RawConnection(server)
            try:
                raw.send_request("POST", "/health", body=b"{}", content_length=bad)
                status, headers, doc = raw.read_json()
                assert status == 400 and "Content-Length" in doc["error"]
                assert headers["connection"] == "close"
            finally:
                raw.close()

    def test_oversized_head_is_bounded_at_the_reader(self, server):
        # 20 KiB of headers with NO terminating blank line: under the
        # old code (asyncio's 64 KiB default limit) the server would
        # buffer silently and wait for more; with limit=MAX_HEADER_BYTES
        # the reader overruns at 16 KiB and answers 413 immediately.
        raw = RawConnection(server)
        try:
            raw.sock.sendall(b"GET /health HTTP/1.1\r\n")
            filler = b"X-Filler: " + b"y" * 120 + b"\r\n"
            for _ in range((20 * 1024) // len(filler)):
                raw.sock.sendall(filler)
            status, headers, doc = raw.read_json()
            assert status == 413 and "head" in doc["error"]
            assert headers["connection"] == "close"
        finally:
            raw.close()

    def test_max_header_bytes_matches_reader_limit(self):
        assert MAX_HEADER_BYTES == 16 * 1024


class TestMonotonicUptime:
    def test_shard_uptime_survives_wall_clock_step(self, monkeypatch):
        import repro.serve.registry as registry_mod

        registry = DatasetRegistry()
        try:
            shard = registry.register("d", random_tps(n=10, seed=0))
            # A wall clock stepped back to the epoch must not produce a
            # negative (or wildly jumped) uptime: only monotonic time
            # may drive it.
            fake_time = types.SimpleNamespace(
                time=lambda: 0.0,
                monotonic=lambda: shard.created_monotonic + 5.0,
            )
            monkeypatch.setattr(registry_mod, "time", fake_time)
            assert shard.stats()["uptime_seconds"] == pytest.approx(5.0)
        finally:
            monkeypatch.undo()
            registry.close()

    def test_server_uptime_survives_wall_clock_step(self, monkeypatch):
        import repro.serve.server as server_mod

        app = ServeApp(registry=DatasetRegistry())
        fake_time = types.SimpleNamespace(
            time=lambda: 0.0,
            monotonic=lambda: app.started_monotonic + 7.0,
            perf_counter=time.perf_counter,
        )
        monkeypatch.setattr(server_mod, "time", fake_time)
        try:
            assert app.stats()["server"]["uptime_seconds"] == pytest.approx(7.0)
        finally:
            monkeypatch.undo()
            app.registry.close()


class TestCancelledMidStream:
    def test_cancellation_closes_transport_and_reraises(self, monkeypatch):
        """A handler cancelled mid-chunked-stream must stop writing,
        mark the connection broken, close the transport, and let the
        cancellation propagate (shutdown depends on it)."""
        import repro.serve.server as server_mod

        class FakeWriter:
            def __init__(self):
                self.chunks = []
                self.closed = False

            def write(self, data):
                assert not self.closed, "write after close (interleaved bytes)"
                self.chunks.append(data)

            async def drain(self):
                pass

            def close(self):
                self.closed = True

            async def wait_closed(self):
                pass

        registry = DatasetRegistry()
        try:
            registry.register("d", random_tps(n=20, seed=1))
            app = ServeApp(registry=registry)

            def never_finishing_submit(shard, plans, tenant=None, **kwargs):
                return [asyncio.get_running_loop().create_future()]

            monkeypatch.setattr(server_mod, "submit_plans", never_finishing_submit)

            async def main():
                writer = FakeWriter()
                state = ConnectionState(keep_alive=True)
                request = Request(
                    method="POST",
                    path="/query",
                    body=json.dumps(
                        {"dataset": "d",
                         "queries": [{"kind": "triangles", "tau": 2.0}]}
                    ).encode(),
                )
                task = asyncio.ensure_future(
                    app._handle_query(request, writer, state)
                )
                await asyncio.sleep(0.05)  # batch-start is on the wire
                writes_before = len(writer.chunks)
                assert writes_before > 0
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                assert task.cancelled()
                assert state.broken is True
                assert writer.closed is True
                assert len(writer.chunks) == writes_before  # nothing after cancel

            asyncio.run(main())
        finally:
            registry.close()
