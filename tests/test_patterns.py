"""Tests for durable cliques, paths and stars (Appendix D.2)."""

import numpy as np
import pytest

from repro import TemporalPointSet, ValidationError
from repro.baselines.brute_force import brute_force_triangle_keys
from repro.baselines.brute_patterns import brute_cliques, brute_paths, brute_stars
from repro.core.patterns import (
    PatternIndex,
    find_durable_cliques,
    find_durable_paths,
    find_durable_stars,
)

from conftest import random_tps


def sandwich(got_keys, must, may, label):
    assert len(got_keys) == len(set(got_keys)), f"duplicate {label}"
    got = set(got_keys)
    missing = must - got
    assert not missing, f"missed exact {label}: {sorted(missing)[:4]}"
    extra = got - may
    assert not extra, f"over-reported {label}: {sorted(extra)[:4]}"


class TestCliques:
    @pytest.mark.parametrize("seed", range(4))
    def test_triangles_as_3_cliques(self, seed):
        eps = 0.5
        tps = random_tps(n=50, seed=seed)
        recs = find_durable_cliques(tps, 3, 2.0, epsilon=eps)
        sandwich(
            [r.key for r in recs],
            brute_force_triangle_keys(tps, 2.0),
            brute_force_triangle_keys(tps, 2.0, threshold=1 + eps + 1e-6),
            "3-cliques",
        )

    @pytest.mark.parametrize("m", [4, 5])
    def test_larger_cliques(self, m):
        eps = 0.5
        tps = random_tps(n=45, seed=5, box=2.5)
        recs = find_durable_cliques(tps, m, 2.0, epsilon=eps)
        sandwich(
            [r.key for r in recs],
            brute_cliques(tps, m, 2.0),
            brute_cliques(tps, m, 2.0, threshold=1 + eps + 1e-6),
            f"{m}-cliques",
        )

    def test_lifespans(self):
        tps = random_tps(n=40, seed=9, box=2.5)
        for r in find_durable_cliques(tps, 4, 2.0):
            assert r.lifespan == tps.pattern_lifespan(r.members)
            assert r.durability >= 2.0

    def test_validation(self):
        tps = random_tps(n=10, seed=0)
        with pytest.raises(ValidationError):
            find_durable_cliques(tps, 1, 1.0)
        with pytest.raises(ValidationError):
            find_durable_cliques(tps, 3, -1.0)
        with pytest.raises(ValidationError):
            PatternIndex(tps, epsilon=3.0)


class TestPaths:
    @pytest.mark.parametrize("seed", range(3))
    def test_3_paths(self, seed):
        eps = 0.5
        tps = random_tps(n=35, seed=seed + 10)
        recs = find_durable_paths(tps, 3, 3.0, epsilon=eps)
        sandwich(
            [r.key for r in recs],
            brute_paths(tps, 3, 3.0),
            brute_paths(tps, 3, 3.0, threshold=1 + eps + 1e-6),
            "3-paths",
        )

    def test_4_paths(self):
        eps = 0.5
        tps = random_tps(n=25, seed=3)
        recs = find_durable_paths(tps, 4, 3.0, epsilon=eps)
        sandwich(
            [r.key for r in recs],
            brute_paths(tps, 4, 3.0),
            brute_paths(tps, 4, 3.0, threshold=1 + eps + 1e-6),
            "4-paths",
        )

    def test_chain_needs_radius_beyond_one(self):
        """A straight chain p0-p1-p2 with |p0-p2| = 2 — the far endpoint
        lies outside B(anchor, 1); regression for the widened query."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        tps = TemporalPointSet(pts, [0, 0, 0], [10, 10, 10])
        recs = find_durable_paths(tps, 3, 5.0, epsilon=0.25)
        keys = {r.key for r in recs}
        assert (0, 1, 2) in keys

    def test_orientation_canonical(self):
        tps = random_tps(n=30, seed=21)
        for r in find_durable_paths(tps, 3, 2.0):
            assert r.members[0] < r.members[-1]


class TestStars:
    @pytest.mark.parametrize("seed", range(3))
    def test_3_stars(self, seed):
        eps = 0.5
        tps = random_tps(n=35, seed=seed + 30)
        recs = find_durable_stars(tps, 3, 3.0, epsilon=eps)
        sandwich(
            [r.key for r in recs],
            brute_stars(tps, 3, 3.0),
            brute_stars(tps, 3, 3.0, threshold=1 + eps + 1e-6),
            "3-stars",
        )

    def test_4_stars(self):
        eps = 0.5
        tps = random_tps(n=28, seed=2, box=3.0)
        recs = find_durable_stars(tps, 4, 2.0, epsilon=eps)
        sandwich(
            [r.key for r in recs],
            brute_stars(tps, 4, 2.0),
            brute_stars(tps, 4, 2.0, threshold=1 + eps + 1e-6),
            "4-stars",
        )

    def test_center_first_convention(self):
        pts = np.array([[0.0, 0.0], [0.9, 0.0], [-0.9, 0.0], [0.0, 0.9]])
        tps = TemporalPointSet(pts, [0] * 4, [10] * 4)
        recs = find_durable_stars(tps, 4, 5.0, epsilon=0.25)
        keys = {r.key for r in recs}
        # Point 0 is the only vertex adjacent to all three others.
        assert (0, 1, 2, 3) in keys

    def test_star_summaries_consistent(self):
        tps = random_tps(n=30, seed=7)
        idx = PatternIndex(tps, epsilon=0.5)
        summaries = idx.star_summaries(3, 3.0)
        full = list(idx.iter_stars(3, 3.0))
        centers_with_stars = {r.members[0] for r in full}
        centers_summarised = {c for c, _ in summaries}
        assert centers_with_stars <= centers_summarised
