"""Query planning: map specs onto executable plans over shared indexes.

``plan_batch`` turns ``(TemporalPointSet, [QuerySpec, …])`` into
:class:`QueryPlan` objects carrying everything the executor needs.
Planning is pure — no index is built here — so a plan can also be
inspected to predict how many distinct builds a batch will trigger
(:func:`distinct_index_keys`).

Dispatch is two-layered:

* the spec's ``kind`` selects a :class:`~repro.engine.templates.PlanTemplate`
  from the template registry (:mod:`repro.engine.templates`) — the four
  legacy index families and the ``pattern-dsl`` compiler are built-in,
  and :func:`~repro.engine.templates.register_template` opens the set;
* inside the built-in templates, backend dispatch goes through the
  backend registry (:mod:`repro.backends`):
  :meth:`~repro.backends.registry.BackendRegistry.resolve` validates
  the kind/backend/metric combination, resolves ``backend="auto"``
  through the cost model (exact ℓ∞ promotion included), and the chosen
  descriptor's hooks emit the cache key and builder.  For every
  pre-existing explicit backend name the emitted
  :class:`~repro.engine.cache.IndexKey` is bit-identical to the
  historical planner's, so caches populated before either registry
  existed stay valid (asserted by ``tests/test_backends.py``).

A plan comes in two shapes, told apart by ``stages``:

* **stage-less** (the legacy kinds): the executor builds/fetches
  ``plan.key`` and calls ``runner(index, tau)``;
* **staged** (``pattern-dsl`` and future composite templates): each
  :class:`PlanStage` names one shared index; the executor acquires all
  of them through the same single-flight cache — so a composite plan's
  sub-indexes are shared with any legacy query that uses them — and
  calls ``runner({stage_name: index, …}, tau)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..backends.registry import BackendRegistry
from ..errors import ValidationError
from ..types import TemporalPointSet
from .cache import IndexKey
from .spec import PATTERN_KINDS, QuerySpec

__all__ = [
    "PlanStage",
    "QueryPlan",
    "plan_query",
    "plan_batch",
    "distinct_index_keys",
    "runner_for",
]


@dataclass(frozen=True)
class PlanStage:
    """One shared index a staged plan depends on."""

    name: str
    key: IndexKey
    builder: Callable[[], Any]


@dataclass(frozen=True)
class QueryPlan:
    """One executable query: spec + shared-index identity + callables.

    The first five fields are the historical positional layout —
    downstream code (and tests) construct plans positionally, so new
    fields append with defaults.  For stage-less plans ``runner`` takes
    ``(index, tau)``; for staged plans it takes
    ``({stage_name: index}, tau)``.
    """

    order: int
    spec: QuerySpec
    key: IndexKey
    builder: Callable[[], Any]
    runner: Callable[[Any, float], list]
    template: str = field(default="")
    stages: Tuple[PlanStage, ...] = field(default=())


def runner_for(spec: QuerySpec) -> Callable[[Any, float], list]:
    """The per-τ report call — kind-specific, backend-agnostic.

    Every backend serving a kind exposes the same query surface
    (``query(tau)``, ``query(tau, kappa)``, or the pattern iterators),
    so runners key on the spec alone and a cached index answers any
    spec that shares its key.
    """
    if spec.kind == "pairs-union":
        kappa = spec.kappa
        return lambda index, tau: index.query(tau, kappa)
    if spec.kind in PATTERN_KINDS:
        m = spec.m
        iter_name = {
            "cliques": "iter_cliques",
            "paths": "iter_paths",
            "stars": "iter_stars",
        }[spec.kind]
        return lambda index, tau: list(getattr(index, iter_name)(m, tau))
    return lambda index, tau: index.query(tau)


#: Historical private name (bench_backends imports it).
_runner_for = runner_for


def plan_query(
    order: int,
    spec: QuerySpec,
    tps: TemporalPointSet,
    registry: Optional[BackendRegistry] = None,
) -> QueryPlan:
    """Resolve one spec against a dataset (validates, never builds).

    Dispatches to the spec's plan template; ``registry`` (defaulting to
    the process-wide backend registry) scopes backend dispatch — and
    any custom backends or recalibrated cost model — to this call.
    """
    # Imported lazily: the template registry imports this module for
    # QueryPlan/PlanStage, so the dependency must not be circular at
    # import time.
    from .templates import get_template

    return get_template(spec.kind).plan(order, spec, tps, registry)


def plan_batch(
    specs: Sequence[QuerySpec],
    tps: TemporalPointSet,
    registry: Optional[BackendRegistry] = None,
) -> List[QueryPlan]:
    """Plan every spec of a batch against one dataset.

    Validation errors carry the batch position so a bad entry in a
    40-query file is easy to locate.
    """
    plans: List[QueryPlan] = []
    for order, spec in enumerate(specs):
        try:
            plans.append(plan_query(order, spec, tps, registry=registry))
        except ValidationError as exc:
            raise ValidationError(f"query #{order}: {exc}") from exc
    return plans


def distinct_index_keys(plans: Sequence[QueryPlan]) -> Tuple[IndexKey, ...]:
    """The distinct indexes a batch will build (in first-use order).

    Staged plans contribute their stage keys — the composite plan key
    of a ``pattern-dsl`` query is a reporting identity, not a build.
    """
    seen: dict = {}
    for plan in plans:
        if plan.stages:
            for stage in plan.stages:
                seen.setdefault(stage.key, None)
        else:
            seen.setdefault(plan.key, None)
    return tuple(seen)
