"""The placement manifest: which worker owns which dataset.

The manifest is the router's single source of truth for ownership.  It
records, per dataset, the owning worker slot and the original
registration payload (the ``POST /datasets`` body), which is exactly
what restart-with-replay needs: when a worker dies, the supervisor
replays every payload the manifest says the dead worker owned onto its
replacement (with ``replace=True``, so replay is idempotent against
half-restored state).

With a ``path`` the manifest also persists itself — one atomic JSON
write per mutation — so a *router* restart can rebuild the whole fleet
layout: at boot every persisted entry is re-placed (deterministic HRW
⇒ same worker for an unchanged fleet) and re-registered.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ValidationError

__all__ = ["ManifestEntry", "PlacementManifest"]


@dataclass(frozen=True)
class ManifestEntry:
    """One placement record: dataset name, owner slot, replayable payload."""

    name: str
    worker: str
    payload: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "worker": self.worker, "payload": self.payload}


class PlacementManifest:
    """Thread-safe name → :class:`ManifestEntry` map, optionally persisted.

    Mutations come from the router's event loop (register/delete) and
    reads from the supervisor thread (replay), hence the lock.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, ManifestEntry] = {}
        self.path = path
        if path is not None and os.path.exists(path):
            self._load(path)

    # ------------------------------------------------------------------
    def record(
        self, name: str, worker: str, payload: Mapping[str, Any]
    ) -> Optional[ManifestEntry]:
        """Record (or move) a placement; returns the entry it displaced.

        ``payload`` is stored without its ``replace`` flag — replay
        always forces ``replace=True`` itself, and a stale ``replace``
        from the original request must not leak into later replays.
        """
        clean = {k: v for k, v in dict(payload).items() if k != "replace"}
        entry = ManifestEntry(name=name, worker=worker, payload=clean)
        with self._lock:
            old = self._entries.get(name)
            self._entries[name] = entry
            self._save_locked()
        return old

    def remove(self, name: str) -> Optional[ManifestEntry]:
        with self._lock:
            old = self._entries.pop(name, None)
            if old is not None:
                self._save_locked()
        return old

    def get(self, name: str) -> Optional[ManifestEntry]:
        with self._lock:
            return self._entries.get(name)

    def owned_by(self, worker: str) -> List[ManifestEntry]:
        """Every entry the given worker slot owns (replay set)."""
        with self._lock:
            return [e for e in self._entries.values() if e.worker == worker]

    def entries(self) -> List[ManifestEntry]:
        with self._lock:
            return list(self._entries.values())

    def placements(self) -> Dict[str, str]:
        """``dataset name -> worker slot`` (the ``/stats`` view)."""
        with self._lock:
            return {name: e.worker for name, e in sorted(self._entries.items())}

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    # ------------------------------------------------------------------
    def _save_locked(self) -> None:
        if self.path is None:
            return
        doc = {"datasets": [e.as_dict() for e in self._entries.values()]}
        # Atomic replace: a crash mid-write must never leave a torn
        # manifest (the file is what a router restart trusts).
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=2)
        os.replace(tmp, self.path)

    def _load(self, path: str) -> None:
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ValidationError(
                f"cannot load placement manifest {path!r}: {exc}"
            ) from exc
        entries = doc.get("datasets") if isinstance(doc, Mapping) else None
        if not isinstance(entries, list):
            raise ValidationError(
                f"placement manifest {path!r} must be "
                "{'datasets': [{'name', 'worker', 'payload'}, ...]}"
            )
        for raw in entries:
            if (
                not isinstance(raw, Mapping)
                or not isinstance(raw.get("name"), str)
                or not isinstance(raw.get("worker"), str)
                or not isinstance(raw.get("payload"), Mapping)
            ):
                raise ValidationError(
                    f"malformed placement manifest entry in {path!r}: {raw!r}"
                )
            self._entries[raw["name"]] = ManifestEntry(
                name=raw["name"],
                worker=raw["worker"],
                payload=dict(raw["payload"]),
            )
