"""Batched query engine with shared-index caching (ISSUE 1 tentpole).

One preprocessing pass over a temporal proximity graph supports many
durable-pattern reports; this package makes that operational:

* :class:`~repro.engine.spec.QuerySpec` — declarative query description
  (kind, τ or τ-sweep, κ, m, ε, metric-backend);
* :class:`~repro.engine.cache.IndexCache` — single-flight shared-index
  cache keyed by ``(family, dataset fingerprint, ε, backend)``;
* :class:`~repro.engine.engine.QueryEngine` — plans batches, shares
  indexes, executes independent queries on a thread pool, and reports
  per-query timing plus cache statistics.

``repro.api``, ``python -m repro batch`` and ``benchmarks/helpers.py``
are all thin layers over this package.
"""

from .cache import CacheOutcome, CacheStats, IndexCache, IndexKey
from .engine import QueryEngine
from .executor import execute_plan, execute_plans
from .planner import QueryPlan, distinct_index_keys, plan_batch, plan_query
from .results import BatchResult, QueryResult, record_to_dict
from .spec import KINDS, QuerySpec

__all__ = [
    "KINDS",
    "QuerySpec",
    "IndexKey",
    "IndexCache",
    "CacheOutcome",
    "CacheStats",
    "QueryPlan",
    "plan_query",
    "plan_batch",
    "distinct_index_keys",
    "execute_plan",
    "execute_plans",
    "QueryEngine",
    "QueryResult",
    "BatchResult",
    "record_to_dict",
]
