#!/usr/bin/env python3
"""Example 1.1 — durable cliques of simultaneously-active forum users.

Users of an online forum are embedded by profile similarity (similar
users are within unit distance).  Each user is active for one session a
day.  A forum administrator wants groups of connected users who are
simultaneously online long enough to interact — durable triangles and
cliques — and wants to *explore* the durability threshold interactively,
which is exactly the incremental setting of Section 4.

Run:  python examples/social_forum.py
"""

from __future__ import annotations

from collections import Counter

from repro import IncrementalTriangleSession, find_durable_cliques
from repro.datasets import social_forum_workload


def main() -> None:
    tps = social_forum_workload(n=400, n_communities=8, seed=7)
    print(f"forum population: {tps.n} users, embedding dim {tps.dim}")

    # --- interactive durability exploration (IncrDurableTriangle) -----
    session = IncrementalTriangleSession(tps, epsilon=0.5)
    print("\nexploring durability thresholds (hours simultaneously online):")
    for tau in (4.0, 3.0, 2.0, 1.0, 0.5):
        delta = session.query(tau)
        total = len(session.current_results())
        print(
            f"  τ = {tau:4.1f}h: +{len(delta):5d} new triangles"
            f" (running total {total})"
        )

    # Which users sit in the most durable triangles? (community cores)
    counts = Counter()
    for record in session.current_results():
        for member in (record.anchor, record.q, record.s):
            counts[member] += 1
    print("\nmost clique-active users:")
    for user, k in counts.most_common(5):
        span = tps.lifespan(user)
        print(
            f"  user {user:>3}: in {k:4d} durable triangles, "
            f"online [{span.start:5.2f}, {span.end:5.2f}]"
        )

    # --- larger groups: durable 4-cliques (Appendix D) ------------------
    tau = 1.0
    cliques = find_durable_cliques(tps, m=4, tau=tau, epsilon=0.5)
    print(f"\nτ = {tau}h 4-cliques: {len(cliques)}")
    for rec in sorted(cliques, key=lambda r: -r.durability)[:3]:
        print(
            f"  users {rec.members} simultaneously online "
            f"{rec.durability:4.2f}h"
        )


if __name__ == "__main__":
    main()
