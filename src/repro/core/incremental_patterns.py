"""Incremental durable-clique reporting — the Appendix D.2 claim.

Appendix D.2 states that the pattern extensions "can also be extended to
handle incremental queries, similarly to τ-durable triangles".  This
module carries that out for ``m``-cliques:

* the *anchored clique* durability spectrum of a point ``p`` is again a
  subset of ``{I⁺_q − I⁻_p}``, so ``ComputeActivation`` binary search
  carries over verbatim with a clique-existence oracle;
* ``DetectClique`` decides whether a multiset of mutually-linked
  canonical balls can host ``m−1`` partners with *at least one* in the
  ``Λ`` band (the not-τ≺-durable witness) from run counts alone;
* ``ReportDeltaClique`` enumerates exactly those member combinations —
  "all Λ∪Λ̄ products minus pure-Λ̄ products", realised with an
  at-least-one-Λ flag threaded through the product expansion;
* the ``|I_p| < τ≺`` branch (DESIGN.md note 2) is handled as for
  triangles: every τ-eligible combination qualifies.

The session reuses the ``S_β`` lazy-heap machinery of
:class:`~repro.core.incremental.IncrementalTriangleSession`.
"""

from __future__ import annotations

import bisect
import heapq
from itertools import combinations
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..structures.durable_ball import DurableBallStructure, SplitBallSubset
from ..types import PatternRecord, TemporalPointSet

__all__ = ["IncrementalCliqueSession"]

_INF = float("inf")
_NEG_INF = float("-inf")


class _CliqueOracle:
    """Per-anchor reporting/detection for m-cliques over ``D'``."""

    def __init__(self, structure: DurableBallStructure, m: int) -> None:
        if m < 3:
            raise ValidationError(f"clique size must be at least 3, got {m!r}")
        self.structure = structure
        self.tps = structure.tps
        self.m = m

    # ------------------------------------------------------------------
    # Shared ball-multiset recursion
    # ------------------------------------------------------------------
    def _ball_context(self, anchor: int, tau: float, tau_prec: float):
        """Split subsets + linkage table restricted to p's ball."""
        subsets = self.structure.query_split(anchor, tau, tau_prec)
        if not subsets:
            return [], []
        k = len(subsets)
        link = [[False] * k for _ in range(k)]
        for i in range(k):
            link[i][i] = True
            for j in range(i + 1, k):
                linked = self.structure.linked(subsets[i].group, subsets[j].group)
                link[i][j] = link[j][i] = linked
        return subsets, link

    def _multisets(
        self,
        subsets: Sequence[SplitBallSubset],
        link: Sequence[Sequence[bool]],
        capacities: Sequence[int],
    ) -> Iterator[List[Tuple[int, int]]]:
        """Mutually-linked ball multisets of total size ``m − 1``.

        Yields ``[(ball index, take count), …]``; ``capacities`` bounds
        the take per ball (Λ + Λ̄ counts).
        """
        need = self.m - 1

        def recurse(pos: int, chosen: List[Tuple[int, int]], left: int):
            if left == 0:
                yield list(chosen)
                return
            for b in range(pos, len(subsets)):
                if capacities[b] == 0:
                    continue
                if any(not link[b][c] for c, _ in chosen):
                    continue
                for take in range(1, min(capacities[b], left) + 1):
                    chosen.append((b, take))
                    yield from recurse(b + 1, chosen, left - take)
                    chosen.pop()

        yield from recurse(0, [], need)

    # ------------------------------------------------------------------
    # Detection (the DetectTriangle analogue)
    # ------------------------------------------------------------------
    def detect(self, anchor: int, tau_lo: float, tau_hi: float) -> bool:
        """Exists an anchored m-clique with durability in ``[τ_lo, τ_hi)``?"""
        duration = self.tps.duration(anchor)
        if duration < tau_lo:
            return False
        if duration < tau_hi:
            # Capped by |I_p|: any τ_lo-eligible linked multiset works.
            subsets, link = self._ball_context(anchor, tau_lo, _INF)
            caps = [s.lam.count + s.lam_bar.count for s in subsets]
            return next(self._multisets(subsets, link, caps), None) is not None
        subsets, link = self._ball_context(anchor, tau_lo, tau_hi)
        caps = [s.lam.count + s.lam_bar.count for s in subsets]
        # Need a linked multiset using at least one Λ member.  A feasible
        # multiset can host one iff it takes from some ball whose Λ band
        # is non-empty (one slot of that take is then drawn from Λ).
        lam_counts = [s.lam.count for s in subsets]
        for multiset in self._multisets(subsets, link, caps):
            if any(lam_counts[b] > 0 for b, _ in multiset):
                return True
        return False

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report_delta(
        self, anchor: int, tau: float, tau_prec: float
    ) -> List[PatternRecord]:
        """Anchored m-cliques that are τ- but not τ≺-durable."""
        tps = self.tps
        duration = tps.duration(anchor)
        if duration < tau:
            return []
        require_lam = duration >= tau_prec
        split_hi = tau_prec if require_lam else _INF
        subsets, link = self._ball_context(anchor, tau, split_hi)
        caps = [s.lam.count + s.lam_bar.count for s in subsets]
        out: List[PatternRecord] = []
        lam_ids = [sorted(s.lam.ids()) for s in subsets]
        bar_ids = [sorted(s.lam_bar.ids()) for s in subsets]
        for multiset in self._multisets(subsets, link, caps):
            out.extend(
                self._expand(anchor, multiset, lam_ids, bar_ids, require_lam)
            )
        return out

    def report_all(self, anchor: int, tau: float) -> List[PatternRecord]:
        """All τ-durable anchored m-cliques (offline, Appendix D.2)."""
        return self.report_delta(anchor, tau, _INF)

    def _expand(
        self,
        anchor: int,
        multiset: Sequence[Tuple[int, int]],
        lam_ids: Sequence[List[int]],
        bar_ids: Sequence[List[int]],
        require_lam: bool,
    ) -> Iterator[PatternRecord]:
        tps = self.tps
        pools = [sorted(lam_ids[b] + bar_ids[b]) for b, _ in multiset]
        lam_sets = [set(lam_ids[b]) for b, _ in multiset]
        takes = [take for _, take in multiset]

        def product(idx: int, acc: List[int], used_lam: bool):
            if idx == len(multiset):
                if require_lam and not used_lam:
                    return
                members = tuple(sorted([anchor, *acc]))
                yield PatternRecord(
                    kind="clique",
                    members=members,
                    lifespan=tps.pattern_lifespan(members),
                )
                return
            for combo in combinations(pools[idx], takes[idx]):
                hit = used_lam or any(x in lam_sets[idx] for x in combo)
                yield from product(idx + 1, acc + list(combo), hit)

        yield from product(0, [], False)


class IncrementalCliqueSession:
    """Online durable ``m``-clique reporting across varying τ.

    The m = 3 case coincides with
    :class:`~repro.core.incremental.IncrementalTriangleSession` (tested);
    larger ``m`` generalises the activation-threshold machinery as
    Appendix D.2 claims is possible.
    """

    def __init__(
        self,
        tps: TemporalPointSet,
        m: int = 3,
        epsilon: float = 0.5,
        backend: str = "auto",
    ) -> None:
        if not 0 < epsilon <= 1:
            raise ValidationError(f"epsilon must lie in (0, 1], got {epsilon!r}")
        self.tps = tps
        self.m = int(m)
        structure = DurableBallStructure(tps, epsilon / 4.0, backend)
        self.oracle = _CliqueOracle(structure, self.m)
        self._sorted_ends = np.sort(tps.ends)
        self._beta: Dict[int, float] = {}
        self._heap: List[Tuple[float, int, float]] = []
        for p in range(tps.n):
            alpha = self._compute_activation(p, _INF)
            if alpha > _NEG_INF:
                self._beta[p] = alpha
                heapq.heappush(self._heap, (-alpha, p, alpha))
        self.max_activation = dict(self._beta)
        self._tau_star = _INF
        self._store: Dict[int, List[PatternRecord]] = {}

    # ------------------------------------------------------------------
    def _compute_activation(self, anchor: int, tau: float) -> float:
        sp = float(self.tps.starts[anchor])
        ep = float(self.tps.ends[anchor])
        ends = self._sorted_ends
        lo_idx = bisect.bisect_right(ends, sp)
        if ep < sp + tau:
            hi_idx = bisect.bisect_right(ends, ep)
        else:
            hi_idx = bisect.bisect_left(ends, sp + tau)
        best = _NEG_INF
        lo, hi = lo_idx, hi_idx - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            cand = float(ends[mid]) - sp
            if self.oracle.detect(anchor, cand, tau):
                best = cand
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    # ------------------------------------------------------------------
    def current_results(self) -> List[PatternRecord]:
        """The maintained clique set for the current τ."""
        out: List[PatternRecord] = []
        for recs in self._store.values():
            out.extend(recs)
        return out

    def query(self, tau: float) -> List[PatternRecord]:
        """Move the threshold; downward moves return the clique delta."""
        if tau <= 0:
            raise ValidationError(f"durability parameter must be positive, got {tau!r}")
        if tau >= self._tau_star:
            self._trim(tau)
            self._tau_star = float(tau)
            return []
        delta: List[PatternRecord] = []
        activated: List[int] = []
        while self._heap and -self._heap[0][0] >= tau:
            _, p, beta = heapq.heappop(self._heap)
            if self._beta.get(p) == beta:
                activated.append(p)
        for p in activated:
            recs = self.oracle.report_delta(p, tau, self._tau_star)
            if recs:
                bucket = self._store.setdefault(p, [])
                bucket.extend(recs)
                bucket.sort(key=lambda r: -r.durability)
                delta.extend(recs)
            beta = self._compute_activation(p, tau)
            self._set_beta(p, beta)
        self._tau_star = float(tau)
        return delta

    def _set_beta(self, p: int, beta: float) -> None:
        if beta > _NEG_INF:
            self._beta[p] = beta
            heapq.heappush(self._heap, (-beta, p, beta))
        else:
            self._beta.pop(p, None)

    def _trim(self, tau: float) -> None:
        for p in list(self._store):
            bucket = self._store[p]
            keep = [r for r in bucket if r.durability >= tau]
            removed = [r.durability for r in bucket if r.durability < tau]
            if removed:
                self._set_beta(p, max(max(removed), self._beta.get(p, _NEG_INF)))
            if keep:
                self._store[p] = keep
            else:
                del self._store[p]
