#!/usr/bin/env python3
"""Appendix C — monitoring durable triangles over a live stream.

Points are not known upfront: they appear at the start of their lifespan
and disappear at its end.  The dynamic structure reports each τ-durable
triangle the moment its anchor has been alive for τ ("maturity"), with
polylogarithmic amortised update cost (Theorem C.1).

The second half drives the same event stream through the *served* path:
a seed prefix is registered on a local serve instance and the remaining
points are replayed as NDJSON batches through
``POST /datasets/<name>/events`` — the epoch bumps per batch, the
triangle index is maintained incrementally across epochs, and the final
served report is checked against both the streamed report (same
must/may bounds) and a direct offline run over the merged point set
(record-set identity).

Run:  python examples/streaming_monitor.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

import numpy as np

from repro import DynamicTriangleStream
from repro.baselines import triangle_bounds
from repro.datasets import benchmark_workload

TAU, EPSILON = 6.0, 0.5
BATCH = 50


def run_stream(tps):
    """The original Appendix C replay: report triangles at maturity."""
    stream = DynamicTriangleStream(tps, TAU, epsilon=EPSILON)
    live = 0
    reported = []
    peak = 0
    for ev in stream.events():
        if ev.kind == "activate":
            live += 1
            peak = max(peak, live)
            if ev.triangles:
                reported.extend(ev.triangles)
                if len(reported) <= 5 or len(ev.triangles) >= 8:
                    print(
                        f"  t = {ev.time:6.2f}: point {ev.point:>3} matured, "
                        f"{len(ev.triangles)} new durable triangle(s)"
                    )
        else:
            live -= 1

    st = stream.structure
    print(
        f"\ntotals: {len(reported)} triangles reported on-line, "
        f"peak live set {peak}, group rebuilds {st.n_group_rebuilds}, "
        f"full compactions {st.n_full_rebuilds}"
    )
    return {r.key for r in reported}


def run_served(tps):
    """The same arrivals through a serve instance's events endpoint.

    The first half of the points is the seed registration; the rest
    arrive as NDJSON event batches.  A query lands between the first
    and second batch so the triangle index exists early and the later
    appends exercise epoch-aware incremental maintenance (the index
    migrates across epochs instead of rebuilding).
    """
    from repro.serve import start_server_thread
    from repro.serve.client import append_events, connect, request

    seed_n = tps.n // 2
    query = {
        "dataset": "stream",
        "queries": [
            {"kind": "triangles", "tau": TAU, "epsilon": EPSILON,
             "backend": "grid"}
        ],
    }

    handle = start_server_thread()
    tmp = tempfile.NamedTemporaryFile(
        mode="w", suffix=".csv", delete=False
    )
    try:
        # Seed prefix as CSV (%.17g round-trips doubles exactly, so the
        # served dataset is bit-identical to tps[:seed_n]).
        rows = np.column_stack(
            [tps.points[:seed_n], tps.starts[:seed_n], tps.ends[:seed_n]]
        )
        np.savetxt(tmp, rows, delimiter=",", fmt="%.17g")
        tmp.close()

        conn = connect(handle.host, handle.port)
        try:
            status, _data = request(
                conn, "POST", "/datasets",
                {"name": "stream", "dataset": {"csv": tmp.name}},
            )
            assert status == 201, status
            print(f"served: registered seed prefix of {seed_n} points")

            report = None
            for lo in range(seed_n, tps.n, BATCH):
                hi = min(lo + BATCH, tps.n)
                batch = "\n".join(
                    json.dumps(
                        {
                            "point": tps.points[i].tolist(),
                            "start": float(tps.starts[i]),
                            "end": float(tps.ends[i]),
                        }
                    )
                    for i in range(lo, hi)
                ).encode()
                status, doc = append_events(conn, "stream", batch)
                assert status == 200, (status, doc)
                report = doc["appended"]
                assert report["rejected"] == 0, report["errors"]
                print(
                    f"served: appended events {lo}..{hi - 1} -> epoch "
                    f"{report['epoch']}, maintained="
                    f"{report['maintained_families'] or '(cold cache)'}"
                )
                if lo == seed_n:
                    # Build the index early: every later append then
                    # maintains it across the epoch bump.
                    status, _data = request(conn, "POST", "/query", query)
                    assert status == 200, status

            status, data = request(conn, "POST", "/query", query)
            assert status == 200, status
            served = set()
            for line in data.decode().strip().split("\n"):
                doc = json.loads(line)
                if doc["type"] == "records":
                    served.update(
                        tuple(sorted(r["ids"])) for r in doc["records"]
                    )

            status, data = request(conn, "GET", "/stats")
            cache = json.loads(data)["shards"]["stream"]["cache"]
            print(
                f"served: epoch {report['epoch']}, "
                f"{len(served)} triangles reported, cache migrations "
                f"{cache['migrated']} / invalidations {cache['invalidated']}"
            )
        finally:
            conn.close()
    finally:
        os.unlink(tmp.name)
        handle.stop()
    return served


def main() -> None:
    tps = benchmark_workload(n=400, density=10.0, seed=11)
    print(f"replaying {tps.n} lifespan events, τ = {TAU}")

    streamed = run_stream(tps)

    # The stream's union equals the offline answer (same guarantee).
    must, may = triangle_bounds(tps, TAU, EPSILON)
    assert must <= streamed <= may
    print(
        f"offline cross-check: |T_τ| = {len(must)} ≤ streamed = "
        f"{len(streamed)} ≤ |T^ε_τ| = {len(may)}  ✓"
    )

    print(f"\nreplaying the same arrivals through a serve instance")
    served = run_served(tps)

    # Served and streamed reports agree: both hold every exact triangle
    # and nothing outside the ε-relaxation (their ε-extras may differ —
    # different decompositions — which is exactly the paper's contract).
    assert must <= served <= may
    print(
        f"served cross-check: |T_τ| = {len(must)} ≤ served = "
        f"{len(served)} ≤ |T^ε_τ| = {len(may)}  ✓"
    )

    # Stronger: append-then-query is record-identical to an offline run
    # over the merged point set with the same backend (the versioned-
    # dataset guarantee — maintenance never changes answers).
    from repro.api import default_engine
    from repro.engine import QuerySpec

    offline = default_engine().run(
        tps, QuerySpec(kind="triangles", taus=TAU, epsilon=EPSILON,
                       backend="grid")
    )
    fresh = {r.key for r in offline.records}
    assert served == fresh, (
        f"served {len(served)} != fresh {len(fresh)}"
    )
    print(
        f"identity cross-check: served report == fresh build over the "
        f"merged point set ({len(fresh)} records)  ✓"
    )


if __name__ == "__main__":
    main()
