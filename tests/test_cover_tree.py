"""Tests for the net hierarchy / cover tree (Appendix A)."""

import numpy as np
import pytest

from repro.covertree import (
    CoverTreeDecomposition,
    build_hierarchy,
    check_invariants,
    greedy_net,
)
from repro.errors import ValidationError
from repro.geometry import get_metric

from conftest import random_tps


class TestGreedyNet:
    @pytest.mark.parametrize("metric_name", ["l2", "l1", "linf"])
    def test_net_properties(self, metric_name):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 10, size=(200, 2))
        m = get_metric(metric_name)
        net, assign = greedy_net(pts, range(len(pts)), 1.0, m)
        # Separation: net points pairwise > 1 apart.
        for i, a in enumerate(net):
            for b in net[i + 1 :]:
                assert m.dist(pts[a], pts[b]) > 1.0
        # Covering: every point assigned within 1.
        for pid, rep in assign.items():
            assert m.dist(pts[pid], pts[rep]) <= 1.0
        # Every id assigned; net ids self-assigned.
        assert set(assign) == set(range(len(pts)))
        for r in net:
            assert assign[r] == r

    def test_general_metric_fallback(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 5, size=(60, 2))
        m = get_metric(lambda x, y: float(np.sqrt(((x - y) ** 2).sum())))
        net_g, assign_g = greedy_net(pts, range(len(pts)), 1.0, m)
        net_f, assign_f = greedy_net(pts, range(len(pts)), 1.0, get_metric("l2"))
        # Net membership is deterministic regardless of the search path;
        # tie-broken assignments may differ but must both be valid covers.
        assert net_g == net_f
        for assign in (assign_g, assign_f):
            for pid, rep in assign.items():
                assert m.dist(pts[pid], pts[rep]) <= 1.0

    def test_empty_ids(self):
        net, assign = greedy_net(np.zeros((0, 2)), [], 1.0, get_metric("l2"))
        assert net == [] and assign == {}


class TestHierarchy:
    @pytest.mark.parametrize("seed", range(3))
    def test_invariants(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 6, size=(120, 2))
        m = get_metric("l2")
        h = build_hierarchy(pts, m, resolution=0.125)
        assert check_invariants(h, pts, m) == []

    def test_levels_shrink(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 6, size=(150, 2))
        h = build_hierarchy(pts, get_metric("l2"), resolution=0.1)
        sizes = [len(lvl.rep_ids) for lvl in h.levels]
        assert sizes[-1] == 1
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValidationError):
            build_hierarchy(np.zeros((3, 2)), get_metric("l2"), resolution=0.0)

    def test_single_point(self):
        h = build_hierarchy(np.array([[1.0, 2.0]]), get_metric("l2"), 0.5)
        assert len(h.bottom.rep_ids) == 1

    def test_duplicate_points(self):
        pts = np.array([[0.0, 0.0]] * 5 + [[3.0, 3.0]] * 5)
        h = build_hierarchy(pts, get_metric("l2"), resolution=0.25)
        groups = h.bottom.children
        sizes = sorted(len(v) for v in groups.values())
        assert sizes == [5, 5]


class TestDecomposition:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("metric_name", ["l2", "linf"])
    def test_candidate_groups_cover_ball(self, seed, metric_name):
        tps = random_tps(n=100, seed=seed, metric=metric_name)
        dec = CoverTreeDecomposition(tps.points, tps.metric, resolution=0.125)
        m = tps.metric
        rng = np.random.default_rng(seed)
        for _ in range(15):
            q = tps.points[int(rng.integers(0, tps.n))]
            radius = float(rng.choice([0.5, 1.0, 2.0]))
            cand = dec.candidate_groups(q, radius)
            covered = set()
            for gi in cand:
                covered.update(dec.groups[gi].member_ids)
            d = m.dists(tps.points, q)
            inside = set(np.nonzero(d <= radius)[0].tolist())
            # Completeness: every point within radius is covered.
            assert inside <= covered
            # Soundness: covered points within radius + 2*resolution.
            for pid in covered:
                assert d[pid] <= radius + 2 * dec.resolution + 1e-6

    def test_groups_partition_points(self):
        tps = random_tps(n=80, seed=5)
        dec = CoverTreeDecomposition(tps.points, tps.metric, resolution=0.25)
        seen = sorted(pid for g in dec.groups for pid in g.member_ids)
        assert seen == list(range(tps.n))
        for g in dec.groups:
            assert all(dec.group_of[p] == g.index for p in g.member_ids)

    def test_group_radius_bound(self):
        tps = random_tps(n=80, seed=6)
        dec = CoverTreeDecomposition(tps.points, tps.metric, resolution=0.25)
        for g in dec.groups:
            assert g.radius_bound <= dec.resolution + 1e-12
            d = tps.metric.dists(tps.points[g.member_ids], g.rep)
            assert float(d.max()) <= g.radius_bound + 1e-9

    def test_linked_groups_symmetricish(self):
        tps = random_tps(n=60, seed=8)
        dec = CoverTreeDecomposition(tps.points, tps.metric, resolution=0.25)
        idxs = [g.index for g in dec.groups]
        for gi in idxs[:5]:
            linked = dec.linked_groups(gi, idxs)
            assert gi in linked  # every group is linked to itself


class TestUniformGridBucketing:
    """The vectorised ``UniformGrid.__init__`` must reproduce the
    historical per-point ``setdefault`` loop exactly: same cell keys in
    the same first-occurrence order, same ascending member lists."""

    @pytest.mark.parametrize("seed", range(4))
    def test_vectorised_cells_match_reference_loop(self, seed):
        from repro.geometry.grid import UniformGrid

        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 300))
        dim = int(rng.integers(1, 4))
        # Quantised coordinates force plenty of cell collisions (and
        # points exactly on cell boundaries).
        pts = np.round(rng.uniform(-4, 4, size=(n, dim)) * 2) / 2
        side = float(rng.choice([0.5, 0.75, 1.0]))
        grid = UniformGrid(pts, side)

        reference = {}
        for pid, c in enumerate(np.floor(pts / side).astype(np.int64)):
            reference.setdefault(tuple(c.tolist()), []).append(pid)

        assert grid._cells == reference
        # Dict equality ignores order; first-occurrence order is load-
        # bearing for greedy-net determinism, so pin it explicitly.
        assert list(grid._cells) == list(reference)

    def test_empty_input(self):
        from repro.geometry.grid import UniformGrid

        grid = UniformGrid(np.zeros((0, 2)), 1.0)
        assert grid._cells == {} and grid.n_cells == 0
