"""Query planning: map specs onto index families and cache keys.

``plan_batch`` turns ``(TemporalPointSet, [QuerySpec, …])`` into
:class:`QueryPlan` objects carrying everything the executor needs: the
:class:`~repro.engine.cache.IndexKey` under which the preprocessing
pass may be shared, a builder closure, and a per-τ runner.  Planning is
pure — no index is built here — so a plan can also be inspected to
predict how many distinct builds a batch will trigger
(:func:`distinct_index_keys`).

Resolution rules (kept bit-identical to the historical ``repro.api``
behaviour, plus the ISSUE 1 bugfix):

* ``triangles`` with ``backend="linf-exact"`` or ``exact=True``
  **requires** the ℓ∞ metric and raises
  :class:`~repro.errors.ValidationError` otherwise (previously the
  mismatch surfaced as a structural :class:`BackendError`, or not at
  all through some call paths);
* ``triangles`` with ``backend="auto"`` on an ℓ∞ input is promoted to
  the exact solver unless ``exact=False``;
* pair and pattern kinds treat ``backend="linf-exact"`` as ``auto``
  (their solvers have no exact ℓ∞ variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple

from ..core.aggregate import SumPairIndex, UnionPairIndex
from ..core.linf import LinfTriangleIndex
from ..core.patterns import PatternIndex
from ..core.triangles import DurableTriangleIndex
from ..errors import ValidationError
from ..geometry.metrics import ChebyshevMetric
from ..structures.durable_ball import resolve_backend
from ..types import TemporalPointSet
from .cache import IndexKey
from .spec import PATTERN_KINDS, QuerySpec

__all__ = ["QueryPlan", "plan_query", "plan_batch", "distinct_index_keys"]


@dataclass(frozen=True)
class QueryPlan:
    """One executable query: spec + shared-index identity + callables."""

    order: int
    spec: QuerySpec
    key: IndexKey
    builder: Callable[[], Any]
    runner: Callable[[Any, float], list]


def _spatial_backend(backend: str) -> str:
    """The spatial backend pair/pattern solvers receive (api parity)."""
    return "auto" if backend == "linf-exact" else backend


def _resolved_spatial(backend: str) -> str:
    """Normalise ``auto`` for cache keys, via the one canonical rule."""
    return resolve_backend(_spatial_backend(backend))


def _wants_exact_triangles(spec: QuerySpec, tps: TemporalPointSet) -> bool:
    if spec.exact is False:
        return False
    if spec.exact is True or spec.backend == "linf-exact":
        if not isinstance(tps.metric, ChebyshevMetric):
            raise ValidationError(
                "the exact triangle backend requires the linf metric, got "
                f"{tps.metric.name!r}; use backend='auto' (or exact=False) "
                "for approximate reporting under this metric"
            )
        return True
    return spec.backend == "auto" and isinstance(tps.metric, ChebyshevMetric)


def plan_query(order: int, spec: QuerySpec, tps: TemporalPointSet) -> QueryPlan:
    """Resolve one spec against a dataset (validates, never builds)."""
    fp = tps.fingerprint()
    if spec.kind == "triangles":
        if _wants_exact_triangles(spec, tps):
            key = IndexKey("linf-triangles", fp, 0.0, "linf-exact")
            builder = lambda: LinfTriangleIndex(tps)  # noqa: E731
        else:
            key = IndexKey(
                "triangles", fp, spec.epsilon, _resolved_spatial(spec.backend)
            )
            builder = lambda: DurableTriangleIndex(  # noqa: E731
                tps, epsilon=spec.epsilon, backend=_spatial_backend(spec.backend)
            )
        runner = lambda index, tau: index.query(tau)  # noqa: E731
    elif spec.kind == "pairs-sum":
        key = IndexKey(
            "pairs-sum",
            fp,
            spec.epsilon,
            _resolved_spatial(spec.backend),
            (spec.sum_backend,),
        )
        builder = lambda: SumPairIndex(  # noqa: E731
            tps,
            epsilon=spec.epsilon,
            backend=_spatial_backend(spec.backend),
            sum_backend=spec.sum_backend,
        )
        runner = lambda index, tau: index.query(tau)  # noqa: E731
    elif spec.kind == "pairs-union":
        key = IndexKey(
            "pairs-union", fp, spec.epsilon, _resolved_spatial(spec.backend)
        )
        builder = lambda: UnionPairIndex(  # noqa: E731
            tps, epsilon=spec.epsilon, backend=_spatial_backend(spec.backend)
        )
        kappa = spec.kappa
        runner = lambda index, tau: index.query(tau, kappa)  # noqa: E731
    elif spec.kind in PATTERN_KINDS:
        key = IndexKey(
            "patterns", fp, spec.epsilon, _resolved_spatial(spec.backend)
        )
        builder = lambda: PatternIndex(  # noqa: E731
            tps, epsilon=spec.epsilon, backend=_spatial_backend(spec.backend)
        )
        m = spec.m
        iter_name = {
            "cliques": "iter_cliques",
            "paths": "iter_paths",
            "stars": "iter_stars",
        }[spec.kind]
        runner = lambda index, tau: list(  # noqa: E731
            getattr(index, iter_name)(m, tau)
        )
    else:  # pragma: no cover - QuerySpec already rejects unknown kinds
        raise ValidationError(f"unknown query kind {spec.kind!r}")
    return QueryPlan(order=order, spec=spec, key=key, builder=builder, runner=runner)


def plan_batch(
    specs: Sequence[QuerySpec], tps: TemporalPointSet
) -> List[QueryPlan]:
    """Plan every spec of a batch against one dataset.

    Validation errors carry the batch position so a bad entry in a
    40-query file is easy to locate.
    """
    plans: List[QueryPlan] = []
    for order, spec in enumerate(specs):
        try:
            plans.append(plan_query(order, spec, tps))
        except ValidationError as exc:
            raise ValidationError(f"query #{order}: {exc}") from exc
    return plans


def distinct_index_keys(plans: Sequence[QueryPlan]) -> Tuple[IndexKey, ...]:
    """The distinct indexes a batch will build (in first-use order)."""
    seen: dict = {}
    for plan in plans:
        seen.setdefault(plan.key, None)
    return tuple(seen)
