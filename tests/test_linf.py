"""Tests for the exact ℓ∞ algorithms (Appendix B, Theorems B.3 & B.4)."""

import numpy as np
import pytest

from repro import TemporalPointSet, ValidationError
from repro.baselines import brute_force_triangle_keys
from repro.baselines.brute_incremental import brute_activation_threshold, brute_delta_keys
from repro.core.incremental import IncrementalTriangleSession
from repro.core.linf import LinfDurableRange, LinfTriangleIndex
from repro.errors import BackendError
from repro.rangetree.range_tree import box_intersect, closed_box

from conftest import random_tps


def linf_tps(n=60, seed=0, dim=2):
    return random_tps(n=n, seed=seed, dim=dim, metric="linf")


class TestRangeStructure:
    def test_requires_linf(self):
        tps = random_tps(n=10, seed=0, metric="l2")
        with pytest.raises(BackendError):
            LinfDurableRange(tps)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_query_matches_brute(self, seed, dim):
        tps = linf_tps(n=50, seed=seed, dim=dim)
        st = LinfDurableRange(tps)
        rng = np.random.default_rng(seed)
        for _ in range(15):
            center = tps.points[int(rng.integers(0, tps.n))]
            half = float(rng.uniform(0.2, 1.5))
            box = closed_box(center - half, center + half)
            anchor = int(rng.integers(0, tps.n))
            key = tps.anchor_key(anchor)
            y = float(tps.starts[anchor]) + float(rng.integers(0, 8))
            got = sorted(st.query_ids(box, key, y))
            want = sorted(
                q
                for q in range(tps.n)
                if np.all(np.abs(tps.points[q] - center) <= half)
                and tps.anchor_key(q) < key
                and tps.ends[q] >= y
            )
            assert got == want
            assert st.has_any(box, key, y) == bool(want)

    def test_box_intersect_openness(self):
        a = [(0.0, False, 2.0, True)]   # [0, 2)
        b = [(2.0, False, 3.0, False)]  # [2, 3]
        assert box_intersect(a, b) is None
        c = [(1.0, False, 3.0, False)]  # [1, 3]
        got = box_intersect(a, c)
        assert got == [(1.0, False, 2.0, True)]

    def test_orthants_partition_unit_ball(self):
        tps = linf_tps(n=30, seed=3)
        st = LinfDurableRange(tps)
        for anchor in range(0, 30, 7):
            cubes = st.orthant_cubes(anchor)
            key = (float("inf"), 1 << 30)  # admit everything temporally
            counts = {}
            for cube in cubes:
                for q in st.query_ids(cube, key, -1e18):
                    counts[q] = counts.get(q, 0) + 1
            d = tps.metric.dists(tps.points, tps.points[anchor])
            inside = set(np.nonzero(d <= 1.0)[0].tolist())
            assert set(counts) == inside, "cubes must cover exactly the unit ball"
            assert all(c == 1 for c in counts.values()), "cubes must be disjoint"


class TestExactTriangles:
    @pytest.mark.parametrize("seed", range(6))
    def test_exactly_t_tau(self, seed):
        tps = linf_tps(n=60, seed=seed)
        idx = LinfTriangleIndex(tps)
        for tau in (1.0, 3.0, 6.0):
            got = [r.key for r in idx.query(tau)]
            assert len(got) == len(set(got)), "duplicates"
            assert set(got) == brute_force_triangle_keys(tps, tau)

    @pytest.mark.parametrize("dim", [1, 3])
    def test_other_dimensions(self, dim):
        tps = linf_tps(n=45, seed=8, dim=dim)
        idx = LinfTriangleIndex(tps)
        got = {r.key for r in idx.query(2.0)}
        assert got == brute_force_triangle_keys(tps, 2.0)

    def test_lifespans_exact(self):
        tps = linf_tps(n=50, seed=4)
        for r in LinfTriangleIndex(tps).query(2.0):
            assert r.lifespan == tps.pattern_lifespan([r.anchor, r.q, r.s])

    def test_invalid_tau(self):
        idx = LinfTriangleIndex(linf_tps(n=10, seed=0))
        with pytest.raises(ValidationError):
            idx.query(-2.0)

    def test_boundary_distances_exact(self):
        # Points at linf distance exactly 1 are connected, 1+eps are not.
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0], [2.001, 0.0]])
        tps = TemporalPointSet(pts, [0] * 4, [10] * 4, metric="linf")
        got = {r.key for r in LinfTriangleIndex(tps).query(1.0)}
        assert got == {(0, 1, 2)}


class TestExactIncremental:
    @pytest.mark.parametrize("seed", range(4))
    def test_deltas_exact(self, seed):
        tps = linf_tps(n=50, seed=seed + 10)
        session = IncrementalTriangleSession(tps, backend="linf-exact")
        prev = float("inf")
        seen = set()
        for tau in (8.0, 5.0, 3.0, 1.0):
            delta = {r.key for r in session.query(tau)}
            want = brute_delta_keys(tps, tau, prev)
            assert delta == want
            assert not (delta & seen)
            seen |= delta
            prev = tau

    def test_mixed_sequence_exact(self):
        tps = linf_tps(n=45, seed=31)
        session = IncrementalTriangleSession(tps, backend="linf-exact")
        for tau in (6.0, 2.0, 9.0, 4.0, 1.0):
            session.query(tau)
            got = {r.key for r in session.current_results()}
            assert got == brute_force_triangle_keys(tps, tau)

    @pytest.mark.parametrize("seed", range(3))
    def test_activation_thresholds_exact(self, seed):
        tps = linf_tps(n=40, seed=seed + 50)
        session = IncrementalTriangleSession(tps, backend="linf-exact")
        for p in range(tps.n):
            got = session.max_activation.get(p, float("-inf"))
            want = brute_activation_threshold(tps, p, float("inf"))
            assert got == want

    def test_epsilon_ignored_for_exact_backend(self):
        tps = linf_tps(n=20, seed=1)
        # epsilon outside (0,1] must not matter for the exact backend.
        session = IncrementalTriangleSession(tps, epsilon=7.0, backend="linf-exact")
        got = {r.key for r in session.query(2.0)}
        assert got == brute_force_triangle_keys(tps, 2.0)
