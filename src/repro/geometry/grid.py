"""Uniform grid hashing for ``ℓ_p`` point sets.

A light spatial hash used to accelerate (i) greedy net construction for
the cover tree (Appendix A requires an ``O(n log n)`` build; grid lookups
keep the per-point work constant under bounded doubling dimension) and
(ii) explicit proximity-graph materialisation in the baselines.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from .metrics import Metric

__all__ = ["UniformGrid"]

Cell = Tuple[int, ...]


class UniformGrid:
    """Hash points of ``R^d`` into cubic cells of a fixed side.

    Parameters
    ----------
    points:
        ``(n, d)`` array.
    side:
        Cell side length (must be positive).
    """

    def __init__(self, points: np.ndarray, side: float) -> None:
        if side <= 0:
            raise ValidationError(f"grid side must be positive, got {side!r}")
        self.points = np.asarray(points, dtype=float)
        if self.points.ndim != 2:
            raise ValidationError("points must be a 2-d array")
        self.side = float(side)
        self.dim = self.points.shape[1]
        # Vectorised bucketing: one lexsort over the integer cell coords
        # replaces the per-point dict loop.  Contents and iteration order
        # are identical to the historical ``setdefault`` loop — members
        # ascend within a cell (lexsort is stable) and cells appear in
        # first-occurrence order (several consumers iterate ``_cells``
        # and depend on that order, e.g. greedy net construction).
        self._cells: Dict[Cell, List[int]] = {}
        coords = np.floor(self.points / self.side).astype(np.int64)
        if len(coords):
            order = np.lexsort(coords.T[::-1])
            sorted_coords = coords[order]
            boundary = (
                np.flatnonzero((sorted_coords[1:] != sorted_coords[:-1]).any(axis=1))
                + 1
            )
            cell_starts = np.concatenate(([0], boundary))
            cell_ends = np.concatenate((boundary, [len(order)]))
            for g in np.argsort(order[cell_starts], kind="stable"):
                lo, hi = cell_starts[g], cell_ends[g]
                key = tuple(sorted_coords[lo].tolist())
                self._cells[key] = order[lo:hi].tolist()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    @property
    def n_cells(self) -> int:
        return len(self._cells)

    def cell_of(self, point: np.ndarray) -> Cell:
        """The cell key containing ``point``."""
        return tuple(np.floor(np.asarray(point, dtype=float) / self.side).astype(np.int64))

    def ids_in_cell(self, cell: Cell) -> Sequence[int]:
        """Point ids stored in a cell (empty when the cell is vacant)."""
        return self._cells.get(cell, ())

    def nonempty_cells(self) -> Iterator[Cell]:
        return iter(self._cells)

    # ------------------------------------------------------------------
    def candidates_within(self, point: np.ndarray, radius: float) -> List[int]:
        """Ids whose cell's bounding box can contain a point within ``radius``.

        This is a superset filter: callers must still verify exact
        distances.  When the cell box spans fewer cells than there are
        non-empty cells we enumerate the box; otherwise we scan the
        non-empty cells, so the cost is ``min(box volume, n_cells)``.
        """
        point = np.asarray(point, dtype=float)
        lo = np.floor((point - radius) / self.side).astype(np.int64)
        hi = np.floor((point + radius) / self.side).astype(np.int64)
        box_cells = int(np.prod(hi - lo + 1))
        out: List[int] = []
        if box_cells <= len(self._cells):
            ranges = [range(int(a), int(b) + 1) for a, b in zip(lo, hi)]
            for cell in product(*ranges):
                ids = self._cells.get(cell)
                if ids:
                    out.extend(ids)
        else:
            for cell, ids in self._cells.items():
                if all(lo[k] <= cell[k] <= hi[k] for k in range(self.dim)):
                    out.extend(ids)
        return out

    def neighbors_within(
        self, point: np.ndarray, radius: float, metric: Metric
    ) -> List[int]:
        """Ids at metric distance ≤ ``radius`` from ``point`` (exact)."""
        cand = self.candidates_within(point, radius)
        if not cand:
            return []
        d = metric.dists(self.points[cand], point)
        return [cand[i] for i in np.nonzero(d <= radius)[0]]

    def pairs_within(self, radius: float, metric: Metric) -> Iterator[Tuple[int, int]]:
        """All unordered pairs ``(i < j)`` at distance ≤ ``radius``.

        Used to materialise explicit proximity graphs in the baselines;
        near-linear for bounded-spread inputs because only neighbouring
        cells are compared.
        """
        reach = int(np.ceil(radius / self.side))
        offsets = [
            off
            for off in product(range(-reach, reach + 1), repeat=self.dim)
        ]
        for cell, ids in self._cells.items():
            for off in offsets:
                other = tuple(c + o for c, o in zip(cell, off))
                if other < cell:
                    continue
                other_ids = self._cells.get(other)
                if not other_ids:
                    continue
                if other == cell:
                    for a_pos, i in enumerate(ids):
                        d = metric.dists(self.points[ids[a_pos + 1 :]], self.points[i])
                        for b_pos in np.nonzero(d <= radius)[0]:
                            j = ids[a_pos + 1 + b_pos]
                            yield (i, j) if i < j else (j, i)
                else:
                    for i in ids:
                        d = metric.dists(self.points[other_ids], self.points[i])
                        for b_pos in np.nonzero(d <= radius)[0]:
                            j = other_ids[b_pos]
                            yield (i, j) if i < j else (j, i)
