"""Tests for the graph -> point-set embedding pipeline."""

import networkx as nx
import numpy as np
import pytest

from repro import TemporalPointSet, ValidationError, find_durable_triangles
from repro.geometry.embedding import embed_graph, landmark_embedding


class TestLandmarkEmbedding:
    def test_shape(self):
        g = nx.random_geometric_graph(60, 0.3, seed=1)
        coords = landmark_embedding(g, dim=3, seed=0)
        assert coords.shape == (60, 3)
        assert np.all(np.isfinite(coords))

    def test_empty_graph_rejected(self):
        with pytest.raises(ValidationError):
            landmark_embedding(nx.Graph())

    def test_path_graph_orders_vertices(self):
        # A long path embeds with endpoints far apart.
        g = nx.path_graph(30)
        coords = landmark_embedding(g, dim=2, n_landmarks=10, seed=0)
        d_far = np.linalg.norm(coords[0] - coords[29])
        d_near = np.linalg.norm(coords[0] - coords[1])
        assert d_far > 3 * d_near

    def test_disconnected_graph_does_not_crash(self):
        g = nx.disjoint_union(nx.path_graph(10), nx.path_graph(10))
        coords = landmark_embedding(g, dim=2, seed=0)
        assert coords.shape == (20, 2)
        assert np.all(np.isfinite(coords))


class TestEmbedGraph:
    def test_scale_normalises_edges(self):
        g = nx.random_geometric_graph(80, 0.25, seed=3)
        pts, scale = embed_graph(g, dim=3, seed=0)
        assert scale > 0
        lens = [
            float(np.linalg.norm(pts[a] - pts[b])) for a, b in g.edges()
        ]
        # By construction, ~90% of embedded edges fall inside the unit ball.
        frac = np.mean([l <= 1.0 + 1e-9 for l in lens])
        assert frac >= 0.85

    def test_end_to_end_triangles_from_graph(self):
        """The paper's pipeline: graph -> embedding -> durable patterns."""
        g = nx.caveman_graph(5, 6)  # five 6-cliques: many triangles
        pts, _ = embed_graph(g, dim=3, seed=1)
        n = len(pts)
        rng = np.random.default_rng(0)
        starts = rng.uniform(0, 10, size=n)
        tps = TemporalPointSet(pts, starts, starts + 20, metric="l2")
        recs = find_durable_triangles(tps, tau=5.0, epsilon=0.5)
        assert len(recs) > 0

    def test_edgeless_graph(self):
        g = nx.empty_graph(10)
        pts, scale = embed_graph(g, dim=2, seed=0)
        assert pts.shape[0] == 10 and scale == pytest.approx(1.0, abs=1e-6)
