"""Assembled multi-level structures: D, D' and friends (Section 2.2)."""

from .decomposition import GEOMETRY_SLACK, CanonicalGroup, SpatialDecomposition
from .durable_ball import (
    BallSubset,
    DurableBallStructure,
    SplitBallSubset,
    make_decomposition,
    resolve_backend,
)

__all__ = [
    "GEOMETRY_SLACK",
    "CanonicalGroup",
    "SpatialDecomposition",
    "BallSubset",
    "DurableBallStructure",
    "SplitBallSubset",
    "make_decomposition",
    "resolve_backend",
]
