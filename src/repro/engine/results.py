"""Result envelopes for engine queries: records + timing + provenance.

Each executed plan yields a :class:`QueryResult` carrying the raw
record objects (:class:`~repro.types.TriangleRecord`,
:class:`~repro.types.PairRecord`, :class:`~repro.types.PatternRecord`)
per durability value, whether the shared index came from cache, and
wall-clock build/query timings.  ``to_dict`` flattens everything into
the JSON shape emitted by ``python -m repro batch``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..types import PairRecord, PatternRecord, TriangleRecord
from .cache import IndexKey
from .spec import QuerySpec

__all__ = ["QueryResult", "BatchResult", "record_to_dict"]


def record_to_dict(record: Any) -> Dict[str, Any]:
    """Serialise one reported pattern record to plain JSON types."""
    # Imported here: the engine package must not hard-depend on the
    # language package at import time.
    from ..lang.records import ComposedRecord

    if isinstance(record, ComposedRecord):
        return {
            "type": "composed",
            "template": record.template,
            "members": list(record.members),
            "components": [record_to_dict(c) for c in record.components],
            "lifespan": [record.lifespan.start, record.lifespan.end],
            "durability": record.durability,
        }
    if isinstance(record, TriangleRecord):
        return {
            "type": "triangle",
            "ids": list(record.ids),
            "lifespan": [record.lifespan.start, record.lifespan.end],
            "durability": record.durability,
        }
    if isinstance(record, PairRecord):
        return {"type": "pair", "p": record.p, "q": record.q, "score": record.score}
    if isinstance(record, PatternRecord):
        return {
            "type": record.kind,
            "members": list(record.members),
            "lifespan": [record.lifespan.start, record.lifespan.end],
            "durability": record.durability,
        }
    raise TypeError(f"cannot serialise record of type {type(record).__name__}")


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one :class:`~repro.engine.spec.QuerySpec`.

    ``error`` is ``None`` for a successful query; a failed query (its
    builder or runner raised and the batch ran with
    ``raise_on_error=False``) carries ``"ExceptionType: message"`` here
    and an empty ``records_by_tau`` — the rest of the batch is
    unaffected.
    """

    spec: QuerySpec
    key: IndexKey
    records_by_tau: Mapping[float, List[Any]]
    cache_hit: bool
    build_seconds: float
    query_seconds: float
    error: Optional[str] = field(default=None)
    #: Per-stage acquisition timings of a staged (``pattern-dsl``) plan;
    #: empty for the legacy stage-less kinds.
    stages: Tuple[Mapping[str, Any], ...] = field(default=())

    @property
    def ok(self) -> bool:
        """Whether this query produced results (no captured failure)."""
        return self.error is None

    @property
    def records(self) -> List[Any]:
        """Records of a single-τ query (flattened across τ for sweeps)."""
        if len(self.records_by_tau) == 1:
            return next(iter(self.records_by_tau.values()))
        out: List[Any] = []
        for recs in self.records_by_tau.values():
            out.extend(recs)
        return out

    @property
    def count(self) -> int:
        return sum(len(r) for r in self.records_by_tau.values())

    def to_dict(self, include_records: bool = True) -> Dict[str, Any]:
        sweeps = []
        for tau, recs in self.records_by_tau.items():
            entry: Dict[str, Any] = {"tau": tau, "count": len(recs)}
            if include_records:
                entry["records"] = [record_to_dict(r) for r in recs]
            sweeps.append(entry)
        out = {
            "spec": self.spec.to_dict(),
            "index": {
                "family": self.key.family,
                "fingerprint": self.key.fingerprint,
                "epsilon": self.key.epsilon,
                "backend": self.key.backend,
            },
            "ok": self.ok,
            "error": self.error,
            "cache_hit": self.cache_hit,
            "build_seconds": self.build_seconds,
            "query_seconds": self.query_seconds,
            "results": sweeps,
        }
        if self.stages:
            out["stages"] = [dict(s) for s in self.stages]
        return out


@dataclass(frozen=True)
class BatchResult:
    """Outcome of :meth:`repro.engine.QueryEngine.run_batch`.

    ``cache_stats`` covers only this batch's cache activity; the
    engine's cumulative figures live on ``engine.stats``.
    """

    results: Tuple[QueryResult, ...]
    wall_seconds: float
    distinct_indexes: int
    cache_stats: Dict[str, Any]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, i: int) -> QueryResult:
        return self.results[i]

    @property
    def n_errors(self) -> int:
        """How many queries of this batch failed (``ok=False``)."""
        return sum(1 for r in self.results if not r.ok)

    @property
    def ok(self) -> bool:
        """Whether every query of this batch succeeded."""
        return self.n_errors == 0

    def to_dict(self, include_records: bool = True) -> Dict[str, Any]:
        return {
            "wall_seconds": self.wall_seconds,
            "distinct_indexes": self.distinct_indexes,
            "ok": self.ok,
            "errors": self.n_errors,
            "cache": self.cache_stats,
            "queries": [r.to_dict(include_records) for r in self.results],
        }
