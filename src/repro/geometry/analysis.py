"""Metric-space diagnostics: spread, doubling dimension, expansion constant.

Section 2.1 of the paper assumes polynomially-bounded spread and constant
doubling dimension; these estimators let users (and experiment E12)
verify those assumptions on a workload.  The doubling dimension and
expansion constant are estimated by sampling, which is the standard
practice the paper cites ([23], [45]).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from .metrics import MetricSpec, get_metric

__all__ = [
    "spread",
    "doubling_dimension_estimate",
    "expansion_constant_estimate",
]


def _as_points(points: np.ndarray) -> np.ndarray:
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or len(pts) == 0:
        raise ValidationError("points must be a non-empty (n, d) array")
    return pts


def spread(points: np.ndarray, metric: MetricSpec = "l2", sample: int = 2048,
           seed: int = 0) -> float:
    """Ratio of max to min pairwise distance (Section 2.1).

    Exact for ``n ≤ sample``; otherwise estimated on a random subsample
    (an under-estimate of the max and an over-estimate of the min, hence
    a lower bound on the true spread).  Coincident points are excluded
    from the minimum so that duplicates do not degenerate the diagnostic
    to infinity.
    """
    pts = _as_points(points)
    m = get_metric(metric)
    if len(pts) < 2:
        return 1.0
    if len(pts) > sample:
        rng = np.random.default_rng(seed)
        pts = pts[rng.choice(len(pts), size=sample, replace=False)]
    dmin = np.inf
    dmax = 0.0
    for i in range(len(pts) - 1):
        d = m.dists(pts[i + 1 :], pts[i])
        positive = d[d > 0]
        if positive.size:
            dmin = min(dmin, float(positive.min()))
        dmax = max(dmax, float(d.max()))
    if not np.isfinite(dmin) or dmin == 0.0:
        return np.inf if dmax > 0 else 1.0
    return dmax / dmin


def doubling_dimension_estimate(
    points: np.ndarray,
    metric: MetricSpec = "l2",
    n_centers: int = 32,
    n_radii: int = 4,
    seed: int = 0,
) -> float:
    """Sampled estimate of the doubling dimension ``ρ``.

    For sampled centers ``p`` and radii ``r``, greedily cover
    ``B(p, r) ∩ P`` with balls of radius ``r/2`` and report
    ``max log2(#cover balls)`` — the empirical analogue of the
    definition in Section 2.1.
    """
    pts = _as_points(points)
    m = get_metric(metric)
    rng = np.random.default_rng(seed)
    n = len(pts)
    centers = rng.choice(n, size=min(n_centers, n), replace=False)
    # Radii spanning the data scale.
    ref = pts[rng.choice(n, size=min(256, n), replace=False)]
    dists_ref = m.dists(ref, pts[centers[0]])
    rmax = float(dists_ref.max()) or 1.0
    radii = [rmax / (2.0**k) for k in range(1, n_radii + 1)]
    worst = 1.0
    for c in centers:
        d_all = m.dists(pts, pts[c])
        for r in radii:
            inside = np.nonzero(d_all <= r)[0]
            if len(inside) <= 1:
                continue
            # Greedy r/2 cover of the ball members.
            uncovered = list(inside)
            count = 0
            while uncovered:
                center = uncovered[0]
                d = m.dists(pts[uncovered], pts[center])
                uncovered = [u for u, dist in zip(uncovered, d) if dist > r / 2.0]
                count += 1
            worst = max(worst, float(count))
    return float(np.log2(worst)) if worst > 1 else 0.0


def expansion_constant_estimate(
    points: np.ndarray,
    metric: MetricSpec = "l2",
    n_centers: int = 32,
    n_radii: int = 4,
    seed: int = 0,
) -> float:
    """Sampled estimate of the expansion constant (footnote 3).

    Reports ``max |B(p, 2r) ∩ P| / |B(p, r) ∩ P|`` over sampled centers
    and radii with non-trivial inner balls.
    """
    pts = _as_points(points)
    m = get_metric(metric)
    rng = np.random.default_rng(seed)
    n = len(pts)
    centers = rng.choice(n, size=min(n_centers, n), replace=False)
    worst = 1.0
    for c in centers:
        d = m.dists(pts, pts[c])
        rmax = float(d.max()) or 1.0
        for k in range(1, n_radii + 1):
            r = rmax / (2.0**k)
            inner = int((d <= r).sum())
            outer = int((d <= 2 * r).sum())
            if inner >= 2:
                worst = max(worst, outer / inner)
    return float(worst)
